"""Context-free grammar representation of TADOC compressed data.

A :class:`Grammar` is a list of :class:`Rule` objects.  Rule 0 is the
root and corresponds to ``R0`` in Figure 1 of the paper: the
concatenation of all files with splitter symbols at file boundaries.

Symbol encoding
---------------
Rule bodies are stored as flat lists of integers:

* a non-negative integer is a *terminal* (a word id or splitter id from
  the :class:`~repro.compression.dictionary.Dictionary`);
* a negative integer is a *rule reference*: rule ``r`` is encoded as
  ``-(r + 1)`` (so rule 0 is ``-1``, rule 1 is ``-2``, ...).

The helpers :func:`make_rule_ref`, :func:`is_rule_ref` and
:func:`rule_ref_id` convert between the two views and are used across
the whole library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = ["Rule", "Grammar", "make_rule_ref", "is_rule_ref", "rule_ref_id"]


def make_rule_ref(rule_id: int) -> int:
    """Encode ``rule_id`` as a (negative) symbol value."""
    if rule_id < 0:
        raise ValueError("rule ids are non-negative")
    return -(rule_id + 1)


def is_rule_ref(symbol: int) -> bool:
    """True if the encoded symbol refers to a rule."""
    return symbol < 0


def rule_ref_id(symbol: int) -> int:
    """Decode a rule-reference symbol back to its rule id."""
    if symbol >= 0:
        raise ValueError(f"symbol {symbol} is a terminal, not a rule reference")
    return -symbol - 1


@dataclass
class Rule:
    """A single grammar rule (a DAG node).

    Attributes
    ----------
    rule_id:
        Dense id; rule 0 is the root.
    symbols:
        The rule body using the encoding described in the module
        docstring.
    """

    rule_id: int
    symbols: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.symbols)

    def terminals(self) -> List[int]:
        """Terminal symbols (word/splitter ids) appearing in the body."""
        return [s for s in self.symbols if not is_rule_ref(s)]

    def subrule_ids(self) -> List[int]:
        """Rule ids referenced by the body, in order, with repetitions."""
        return [rule_ref_id(s) for s in self.symbols if is_rule_ref(s)]

    def subrule_frequencies(self) -> Dict[int, int]:
        """Mapping ``subrule id -> number of occurrences in this body``."""
        freqs: Dict[int, int] = {}
        for symbol in self.symbols:
            if is_rule_ref(symbol):
                child = rule_ref_id(symbol)
                freqs[child] = freqs.get(child, 0) + 1
        return freqs

    def terminal_frequencies(self) -> Dict[int, int]:
        """Mapping ``terminal id -> occurrences in this body``."""
        freqs: Dict[int, int] = {}
        for symbol in self.symbols:
            if not is_rule_ref(symbol):
                freqs[symbol] = freqs.get(symbol, 0) + 1
        return freqs


class Grammar:
    """An ordered collection of rules; rule 0 is the root."""

    ROOT_ID = 0

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules: List[Rule] = list(rules)
        if not self.rules:
            raise ValueError("a grammar needs at least a root rule")
        for expected, rule in enumerate(self.rules):
            if rule.rule_id != expected:
                raise ValueError(
                    f"rule ids must be dense and ordered; found {rule.rule_id} at {expected}"
                )
        self._validate_references()

    def _validate_references(self) -> None:
        for rule in self.rules:
            for symbol in rule.symbols:
                if is_rule_ref(symbol):
                    child = rule_ref_id(symbol)
                    if not 0 <= child < len(self.rules):
                        raise ValueError(
                            f"rule {rule.rule_id} references unknown rule {child}"
                        )
                    if child == rule.rule_id:
                        raise ValueError(f"rule {rule.rule_id} references itself")

    # -- container protocol --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __getitem__(self, rule_id: int) -> Rule:
        return self.rules[rule_id]

    @property
    def root(self) -> Rule:
        return self.rules[self.ROOT_ID]

    # -- analysis -------------------------------------------------------------------
    def total_symbols(self) -> int:
        """Total number of symbols across all rule bodies (compressed size)."""
        return sum(len(rule) for rule in self.rules)

    def expansion_lengths(self) -> List[int]:
        """Number of terminals each rule expands to (memoised bottom-up)."""
        lengths = [0] * len(self.rules)
        for rule_id in self._bottom_up_order():
            total = 0
            for symbol in self.rules[rule_id].symbols:
                if is_rule_ref(symbol):
                    total += lengths[rule_ref_id(symbol)]
                else:
                    total += 1
            lengths[rule_id] = total
        return lengths

    def _bottom_up_order(self) -> List[int]:
        """Rule ids ordered so every rule appears after all rules it references."""
        order: List[int] = []
        state = [0] * len(self.rules)  # 0 unvisited, 1 in progress, 2 done
        for start in range(len(self.rules)):
            if state[start] == 2:
                continue
            stack: List[Tuple[int, int]] = [(start, 0)]
            state[start] = 1
            while stack:
                rule_id, child_index = stack[-1]
                children = self.rules[rule_id].subrule_ids()
                if child_index < len(children):
                    stack[-1] = (rule_id, child_index + 1)
                    child = children[child_index]
                    if state[child] == 0:
                        state[child] = 1
                        stack.append((child, 0))
                    elif state[child] == 1:
                        raise ValueError("grammar contains a cycle")
                else:
                    stack.pop()
                    state[rule_id] = 2
                    order.append(rule_id)
        return order

    def expand_rule(self, rule_id: int) -> List[int]:
        """Fully expand ``rule_id`` into its terminal sequence (iterative DFS)."""
        output: List[int] = []
        stack: List[int] = [make_rule_ref(rule_id)]
        while stack:
            symbol = stack.pop()
            if is_rule_ref(symbol):
                body = self.rules[rule_ref_id(symbol)].symbols
                stack.extend(reversed(body))
            else:
                output.append(symbol)
        return output

    def expand_root(self) -> List[int]:
        """Expand the root rule (the full terminal stream with splitters)."""
        return self.expand_rule(self.ROOT_ID)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grammar):
            return NotImplemented
        return [(r.rule_id, r.symbols) for r in self.rules] == [
            (r.rule_id, r.symbols) for r in other.rules
        ]
