"""DAG view of a TADOC grammar.

The CFG produced by Sequitur can be viewed as a directed acyclic graph
(Figure 1(e)): nodes are rules, and an edge ``parent -> child`` exists
when the parent's body references the child, weighted by how many times
it does.  All TADOC analytics are DAG traversals, and G-TADOC's
fine-grained scheduling, masks and memory-pool sizing are all driven by
the DAG structure, so this module precomputes everything the engines
need: in/out edges, parents, per-rule occurrence weights, topological
layers and summary statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Tuple

from repro.compression.grammar import Grammar

__all__ = ["GrammarDAG", "DagStatistics"]


@dataclass(frozen=True)
class DagStatistics:
    """Summary statistics of a grammar DAG (reported in Table II style)."""

    num_rules: int
    num_edges: int
    total_symbols: int
    num_terminal_symbols: int
    depth: int
    max_rule_length: int
    avg_rule_length: float
    middle_layer_nodes: int


class GrammarDAG:
    """Precomputed adjacency and traversal metadata for a grammar."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        num_rules = len(grammar)
        # child -> list of (parent, multiplicity); parent -> list of (child, multiplicity)
        self.children: List[List[Tuple[int, int]]] = [[] for _ in range(num_rules)]
        self.parents: List[List[Tuple[int, int]]] = [[] for _ in range(num_rules)]
        for rule in grammar:
            for child, count in sorted(rule.subrule_frequencies().items()):
                self.children[rule.rule_id].append((child, count))
                self.parents[child].append((rule.rule_id, count))
        # Number of distinct in/out edges (multiplicities collapsed).
        self.num_in_edges: List[int] = [len(self.parents[r]) for r in range(num_rules)]
        self.num_out_edges: List[int] = [len(self.children[r]) for r in range(num_rules)]
        self._layers: List[List[int]] = self._compute_layers()
        self._weights: List[int] = self._compute_weights()
        self._expansion_lengths = grammar.expansion_lengths()

    # -- structural helpers --------------------------------------------------------
    def _compute_layers(self) -> List[List[int]]:
        """Topological layers from the root (layer 0 = root)."""
        num_rules = len(self.grammar)
        depth = [0] * num_rules
        indegree = list(self.num_in_edges)
        queue = deque(r for r in range(num_rules) if indegree[r] == 0)
        order: List[int] = []
        while queue:
            rule_id = queue.popleft()
            order.append(rule_id)
            for child, _count in self.children[rule_id]:
                depth[child] = max(depth[child], depth[rule_id] + 1)
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if len(order) != num_rules:
            raise ValueError("grammar DAG contains a cycle")
        max_depth = max(depth) if depth else 0
        layers: List[List[int]] = [[] for _ in range(max_depth + 1)]
        for rule_id, rule_depth in enumerate(depth):
            layers[rule_depth].append(rule_id)
        return layers

    def _compute_weights(self) -> List[int]:
        """Occurrence weight of each rule in the full expansion (root = 1)."""
        weights = [0] * len(self.grammar)
        weights[Grammar.ROOT_ID] = 1
        for layer in self._layers:
            for rule_id in layer:
                for child, count in self.children[rule_id]:
                    weights[child] += weights[rule_id] * count
        return weights

    # -- public accessors --------------------------------------------------------------
    @property
    def layers(self) -> List[List[int]]:
        """Topological layers (layer 0 contains the root)."""
        return self._layers

    @property
    def depth(self) -> int:
        """Number of layers in the DAG."""
        return len(self._layers)

    @property
    def weights(self) -> List[int]:
        """``weights[r]`` = number of times rule ``r`` occurs in the expansion."""
        return self._weights

    @property
    def expansion_lengths(self) -> List[int]:
        """``expansion_lengths[r]`` = number of terminals rule ``r`` expands to."""
        return self._expansion_lengths

    def topological_order(self) -> List[int]:
        """Rule ids in root-first topological order."""
        return [rule_id for layer in self._layers for rule_id in layer]

    def bottom_up_order(self) -> List[int]:
        """Rule ids in leaves-first topological order."""
        return list(reversed(self.topological_order()))

    def statistics(self) -> DagStatistics:
        grammar = self.grammar
        lengths = [len(rule) for rule in grammar]
        num_edges = sum(self.num_out_edges)
        terminal_symbols = sum(len(rule.terminals()) for rule in grammar)
        middle = sum(
            1
            for rule in grammar
            if rule.rule_id != Grammar.ROOT_ID and self.num_out_edges[rule.rule_id] > 0
        )
        return DagStatistics(
            num_rules=len(grammar),
            num_edges=num_edges,
            total_symbols=grammar.total_symbols(),
            num_terminal_symbols=terminal_symbols,
            depth=self.depth,
            max_rule_length=max(lengths) if lengths else 0,
            avg_rule_length=(sum(lengths) / len(lengths)) if lengths else 0.0,
            middle_layer_nodes=middle,
        )

    def subrule_frequency_lists(self) -> List[List[Tuple[int, int]]]:
        """Per-rule ``[(child id, multiplicity), ...]`` lists (device layout input)."""
        return [list(self.children[rule_id]) for rule_id in range(len(self.grammar))]

    def parent_lists(self) -> List[List[int]]:
        """Per-rule parent id lists (ignoring multiplicity)."""
        return [[parent for parent, _count in self.parents[rule_id]] for rule_id in range(len(self.grammar))]
