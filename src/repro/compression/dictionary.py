"""Dictionary conversion: words and file splitters to integer ids.

Figure 1(b) of the paper shows TADOC's dictionary conversion step:
every distinct word receives an integer id, and the unique file
splitter symbols inserted between files receive ids as well.  Rules get
ids in the final serialized form (Figure 1(c)); inside this library
rules live in their own id space (see :mod:`repro.compression.grammar`)
and only the serializer flattens everything into one numbering.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["Dictionary"]


class Dictionary:
    """Bidirectional word <-> integer-id mapping with splitter support.

    Ids ``0 .. num_words-1`` are words, ids ``num_words ..
    num_words+num_splitters-1`` are file splitter symbols.  Splitters are
    appended after all words have been registered, which the
    :class:`~repro.compression.compressor.TadocCompressor` guarantees by
    encoding every document before allocating splitters.
    """

    def __init__(self) -> None:
        self._word_to_id: Dict[str, int] = {}
        self._id_to_word: List[str] = []
        self._num_splitters = 0

    # -- word encoding ---------------------------------------------------------
    def encode_word(self, word: str) -> int:
        """Return the id of ``word``, registering it on first sight."""
        if self._num_splitters:
            existing = self._word_to_id.get(word)
            if existing is None:
                raise ValueError(
                    "cannot register new words after splitters have been allocated"
                )
            return existing
        word_id = self._word_to_id.get(word)
        if word_id is None:
            word_id = len(self._id_to_word)
            self._word_to_id[word] = word_id
            self._id_to_word.append(word)
        return word_id

    def encode_tokens(self, tokens: Iterable[str]) -> List[int]:
        """Encode a token stream into word ids."""
        return [self.encode_word(token) for token in tokens]

    def lookup(self, word: str) -> int:
        """Return the id of ``word`` without registering it (KeyError if absent)."""
        return self._word_to_id[word]

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    # -- splitters -------------------------------------------------------------
    def allocate_splitters(self, count: int) -> List[int]:
        """Allocate ``count`` unique splitter ids (one per file boundary)."""
        if count < 0:
            raise ValueError("splitter count must be non-negative")
        if self._num_splitters:
            raise ValueError("splitters already allocated")
        start = len(self._id_to_word)
        self._num_splitters = count
        for index in range(count):
            self._id_to_word.append(f"<spt{index}>")
        return list(range(start, start + count))

    def is_splitter(self, symbol_id: int) -> bool:
        """True if ``symbol_id`` denotes a file splitter."""
        return self.num_words <= symbol_id < self.num_symbols

    # -- decoding ----------------------------------------------------------------
    def decode(self, symbol_id: int) -> str:
        """Return the word (or splitter token) for ``symbol_id``."""
        return self._id_to_word[symbol_id]

    def decode_tokens(self, symbol_ids: Sequence[int]) -> List[str]:
        return [self._id_to_word[symbol_id] for symbol_id in symbol_ids]

    # -- sizes --------------------------------------------------------------------
    @property
    def num_words(self) -> int:
        """Number of distinct words (excluding splitters)."""
        return len(self._id_to_word) - self._num_splitters

    @property
    def num_splitters(self) -> int:
        return self._num_splitters

    @property
    def num_symbols(self) -> int:
        """Total number of terminal symbols (words + splitters)."""
        return len(self._id_to_word)

    # -- (de)serialization helpers -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "words": self._id_to_word[: self.num_words],
            "num_splitters": self._num_splitters,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Dictionary":
        dictionary = cls()
        for word in payload["words"]:  # type: ignore[index]
            dictionary.encode_word(word)
        dictionary.allocate_splitters(int(payload["num_splitters"]))  # type: ignore[arg-type]
        return dictionary

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dictionary):
            return NotImplemented
        return (
            self._id_to_word == other._id_to_word
            and self._num_splitters == other._num_splitters
        )
