"""Sequitur grammar inference.

TADOC "extends Sequitur as its core algorithm" (paper section II-A).
This module implements the classic online Sequitur algorithm
(Nevill-Manning & Witten) over integer token streams.  The algorithm
maintains two invariants while consuming the input one symbol at a
time:

* **digram uniqueness** — no pair of adjacent symbols appears more than
  once in the grammar; a repeated digram is replaced by a rule, and
* **rule utility** — every rule (other than the start rule) is used at
  least twice; a rule that drops to a single use is inlined again.

The output is converted into the immutable
:class:`~repro.compression.grammar.Grammar` representation used by the
rest of the library (rule 0 = root).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.compression.grammar import Grammar, Rule, make_rule_ref

__all__ = ["SequiturEncoder"]


class _SequiturRule:
    """Internal mutable rule: a circular doubly-linked list with a guard node."""

    __slots__ = ("encoder", "number", "reference_count", "guard")

    def __init__(self, encoder: "SequiturEncoder") -> None:
        self.encoder = encoder
        self.number = encoder._next_rule_number()
        self.reference_count = 0
        self.guard = _SequiturSymbol(encoder, rule=self, is_guard=True)
        self.guard.next = self.guard
        self.guard.prev = self.guard

    def first(self) -> "_SequiturSymbol":
        return self.guard.next

    def last(self) -> "_SequiturSymbol":
        return self.guard.prev

    def append_value(self, terminal: Optional[int] = None, rule: Optional["_SequiturRule"] = None) -> None:
        """Append a fresh symbol to the rule body and run the digram check."""
        symbol = _SequiturSymbol(self.encoder, terminal=terminal, rule=rule)
        self.last().insert_after(symbol)
        self.last().prev.check()


class _SequiturSymbol:
    """A node in a rule body: either a terminal or a reference to a rule."""

    __slots__ = ("encoder", "next", "prev", "terminal", "rule", "is_guard")

    def __init__(
        self,
        encoder: "SequiturEncoder",
        terminal: Optional[int] = None,
        rule: Optional[_SequiturRule] = None,
        is_guard: bool = False,
    ) -> None:
        self.encoder = encoder
        self.next: Optional[_SequiturSymbol] = None
        self.prev: Optional[_SequiturSymbol] = None
        self.terminal = terminal
        self.rule = rule
        self.is_guard = is_guard
        if rule is not None and not is_guard:
            rule.reference_count += 1

    # -- value / digram helpers ------------------------------------------------
    @property
    def is_nonterminal(self) -> bool:
        return self.rule is not None and not self.is_guard

    def value(self) -> Hashable:
        """Hashable symbol value used as a digram-index component."""
        if self.is_nonterminal:
            return ("R", self.rule.number)
        return self.terminal

    def digram_key(self) -> Tuple[Hashable, Hashable]:
        return (self.value(), self.next.value())

    # -- linked-list operations ---------------------------------------------------
    def join(self, right: "_SequiturSymbol") -> None:
        """Link ``self -> right`` and keep the digram index consistent."""
        if self.next is not None:
            self.delete_digram()
            # Triple handling (e.g. "a a a"): re-register the digrams that
            # the unlink may have invalidated, as in the reference code.
            if (
                right.prev is not None
                and right.next is not None
                and not right.is_guard
                and not right.next.is_guard
                and right.value() == right.prev.value()
                and right.value() == right.next.value()
            ):
                self.encoder._digrams[(right.value(), right.next.value())] = right
            if (
                self.prev is not None
                and self.next is not None
                and not self.is_guard
                and not self.prev.is_guard
                and self.value() == self.next.value()
                and self.value() == self.prev.value()
            ):
                self.encoder._digrams[(self.prev.value(), self.value())] = self.prev
        self.next = right
        right.prev = self

    def insert_after(self, symbol: "_SequiturSymbol") -> None:
        symbol.join(self.next)
        self.join(symbol)

    def unlink(self) -> None:
        """Remove this symbol from its rule body."""
        self.prev.join(self.next)
        if not self.is_guard:
            self.delete_digram()
            if self.is_nonterminal:
                self.rule.reference_count -= 1

    def delete_digram(self) -> None:
        """Remove the digram starting at this symbol from the index."""
        if self.is_guard or self.next is None or self.next.is_guard:
            return
        key = self.digram_key()
        if self.encoder._digrams.get(key) is self:
            del self.encoder._digrams[key]

    # -- the Sequitur invariants ---------------------------------------------------
    def check(self) -> bool:
        """Enforce digram uniqueness for the digram starting at ``self``.

        Returns ``True`` whenever the digram was already present in the
        index (including the self-match and overlapping cases), matching
        the reference implementation's semantics, which
        :meth:`substitute` relies on to decide whether the follow-up
        digram still needs checking.
        """
        if self.is_guard or self.next is None or self.next.is_guard:
            return False
        key = self.digram_key()
        match = self.encoder._digrams.get(key)
        if match is None:
            self.encoder._digrams[key] = self
            return False
        if match is not self and match.next is not self:
            self._process_match(match)
        return True

    def _process_match(self, match: "_SequiturSymbol") -> None:
        """Replace both occurrences of a repeated digram by a rule."""
        if match.prev.is_guard and match.next.next.is_guard:
            # The earlier occurrence is exactly an existing rule's body.
            rule = match.prev.rule
            self.substitute(rule)
        else:
            rule = _SequiturRule(self.encoder)
            rule.last().insert_after(match._copy_for_rule())
            rule.last().insert_after(match.next._copy_for_rule())
            match.substitute(rule)
            self.substitute(rule)
            # Register the new rule body's single digram last, as in the
            # reference implementation.
            self.encoder._digrams[rule.first().digram_key()] = rule.first()
            self.encoder._rules.append(rule)
        # Rule utility: inline a sub-rule that is now used only once.
        first = rule.first()
        if first.is_nonterminal and first.rule.reference_count == 1:
            first.expand()

    def _copy_for_rule(self) -> "_SequiturSymbol":
        if self.is_nonterminal:
            return _SequiturSymbol(self.encoder, rule=self.rule)
        return _SequiturSymbol(self.encoder, terminal=self.terminal)

    def substitute(self, rule: _SequiturRule) -> None:
        """Replace the digram starting at ``self`` with a reference to ``rule``."""
        prev = self.prev
        prev.next.unlink()
        prev.next.unlink()
        prev.insert_after(_SequiturSymbol(self.encoder, rule=rule))
        if not prev.check():
            prev.next.check()

    def expand(self) -> None:
        """Inline this non-terminal's rule (rule utility enforcement)."""
        left = self.prev
        right = self.next
        body_first = self.rule.first()
        body_last = self.rule.last()
        dead_rule = self.rule
        self.delete_digram()
        left.join(body_first)
        body_last.join(right)
        self.encoder._digrams[(body_last.value(), right.value())] = body_last
        dead_rule.reference_count = 0
        self.encoder._dead_rules.add(dead_rule.number)


class SequiturEncoder:
    """Build a Sequitur grammar from an integer token stream.

    Example
    -------
    >>> grammar = SequiturEncoder().encode([1, 2, 3, 1, 2, 3, 1, 2])
    >>> grammar.expand_root()
    [1, 2, 3, 1, 2, 3, 1, 2]
    """

    def __init__(self) -> None:
        self._digrams: Dict[Tuple[Hashable, Hashable], _SequiturSymbol] = {}
        self._rules: List[_SequiturRule] = []
        self._dead_rules: set = set()
        self._rule_counter = 0
        self._start: Optional[_SequiturRule] = None

    def _next_rule_number(self) -> int:
        number = self._rule_counter
        self._rule_counter += 1
        return number

    # -- public API --------------------------------------------------------------
    def encode(self, tokens: Iterable[int]) -> Grammar:
        """Consume ``tokens`` and return the resulting grammar.

        The encoder is single-use per *stream*: ``encode`` starts the
        stream, so it can only be called once.  Incremental callers use
        :meth:`begin` / :meth:`extend` / :meth:`snapshot` instead and
        may keep extending the same stream after snapshotting.
        """
        self.begin()
        self.extend(tokens)
        return self._build_grammar()

    def begin(self) -> "SequiturEncoder":
        """Start an (initially empty) stream; returns ``self`` for chaining."""
        if self._start is not None:
            raise RuntimeError("SequiturEncoder instances are single-use")
        self._start = _SequiturRule(self)
        return self

    def extend(self, tokens: Iterable[int]) -> None:
        """Append ``tokens`` to the live stream, maintaining both invariants.

        Because Sequitur is an online algorithm, extending a stream
        yields exactly the grammar that encoding the concatenated stream
        in one call would have produced.
        """
        if self._start is None:
            raise RuntimeError("call begin() (or encode()) before extend()")
        for token in tokens:
            if token < 0:
                raise ValueError("input tokens must be non-negative integers")
            self._start.append_value(terminal=int(token))

    def snapshot(self) -> Grammar:
        """An immutable :class:`Grammar` of the stream consumed so far.

        Non-destructive: the encoder stays live and :meth:`extend` may
        keep appending afterwards.
        """
        if self._start is None:
            raise RuntimeError("call begin() (or encode()) before snapshot()")
        return self._build_grammar()

    # -- invariant inspection (used by tests) -----------------------------------------
    def check_digram_uniqueness(self) -> bool:
        """True if no digram occurs twice across all live rule bodies.

        Overlapping occurrences (``a a a`` -> digram ``(a, a)`` at two
        positions sharing the middle symbol) are exempt, exactly as in
        the reference Sequitur implementation, because replacing them
        with a rule would be ambiguous.
        """
        occurrences: Dict[Tuple[Hashable, Hashable], List[Tuple[int, int]]] = {}
        for rule in self._live_rules():
            symbol = rule.first()
            position = 0
            while not symbol.is_guard and not symbol.next.is_guard:
                occurrences.setdefault(symbol.digram_key(), []).append(
                    (rule.number, position)
                )
                symbol = symbol.next
                position += 1
        for places in occurrences.values():
            if len(places) == 1:
                continue
            if len(places) > 2:
                return False
            (rule_a, pos_a), (rule_b, pos_b) = places
            if rule_a != rule_b or abs(pos_a - pos_b) != 1:
                return False
        return True

    def check_rule_utility(self) -> bool:
        """True if every non-start rule is referenced at least twice."""
        return all(rule.reference_count >= 2 for rule in self._live_rules() if rule is not self._start)

    def _live_rules(self) -> List[_SequiturRule]:
        assert self._start is not None
        live = [self._start]
        live.extend(r for r in self._rules if r.number not in self._dead_rules and r.reference_count > 0)
        return live

    # -- conversion to the immutable Grammar -------------------------------------------
    def _build_grammar(self) -> Grammar:
        assert self._start is not None
        # Assign dense ids in discovery (DFS preorder) order starting at the root.
        id_of: Dict[int, int] = {self._start.number: 0}
        ordered: List[_SequiturRule] = [self._start]
        stack: List[_SequiturRule] = [self._start]
        while stack:
            rule = stack.pop()
            symbol = rule.first()
            while not symbol.is_guard:
                if symbol.is_nonterminal and symbol.rule.number not in id_of:
                    id_of[symbol.rule.number] = len(ordered)
                    ordered.append(symbol.rule)
                    stack.append(symbol.rule)
                symbol = symbol.next
        rules: List[Rule] = []
        for dense_id, seq_rule in enumerate(ordered):
            body: List[int] = []
            symbol = seq_rule.first()
            while not symbol.is_guard:
                if symbol.is_nonterminal:
                    body.append(make_rule_ref(id_of[symbol.rule.number]))
                else:
                    body.append(int(symbol.terminal))
                symbol = symbol.next
            rules.append(Rule(rule_id=dense_id, symbols=body))
        return Grammar(rules)
