"""On-disk format for TADOC compressed corpora.

The format is a single JSON document mirroring Figure 1(c) of the
paper: the dictionary, the splitter ids, the file names and the rule
bodies as integer sequences.  A flat numbering view (words, splitters
and rules in one id space, exactly as the paper prints it) is also
provided for interoperability and inspection.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.compression.compressor import CompressedCorpus
from repro.compression.dictionary import Dictionary
from repro.compression.grammar import Grammar, Rule, is_rule_ref, rule_ref_id

__all__ = ["save_compressed", "load_compressed", "to_flat_numbering"]

_FORMAT_VERSION = 1


def to_flat_numbering(compressed: CompressedCorpus) -> Dict[str, object]:
    """Return the compressed data in the paper's flat numbering.

    Words and splitters keep their dictionary ids; rule ``r`` gets id
    ``num_symbols + r``.  Each rule body is then a plain list of
    non-negative integers, as in Figure 1(c).
    """
    offset = compressed.dictionary.num_symbols
    flat_rules: List[List[int]] = []
    for rule in compressed.grammar:
        body = [
            offset + rule_ref_id(symbol) if is_rule_ref(symbol) else symbol
            for symbol in rule.symbols
        ]
        flat_rules.append(body)
    return {
        "rule_id_offset": offset,
        "rules": flat_rules,
    }


def save_compressed(compressed: CompressedCorpus, path: Union[str, Path]) -> Path:
    """Serialize ``compressed`` to ``path`` (JSON)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": compressed.name,
        "file_names": compressed.file_names,
        "splitter_ids": compressed.splitter_ids,
        "original_size_bytes": compressed.original_size_bytes,
        "original_tokens": compressed.original_tokens,
        "dictionary": compressed.dictionary.to_dict(),
        "rules": [rule.symbols for rule in compressed.grammar],
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload), encoding="utf-8")
    return target


def load_compressed(path: Union[str, Path]) -> CompressedCorpus:
    """Load a compressed corpus previously written by :func:`save_compressed`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported compressed format version: {version!r}")
    dictionary = Dictionary.from_dict(payload["dictionary"])
    rules = [Rule(rule_id=i, symbols=list(body)) for i, body in enumerate(payload["rules"])]
    grammar = Grammar(rules)
    return CompressedCorpus(
        name=payload["name"],
        dictionary=dictionary,
        grammar=grammar,
        file_names=payload["file_names"],
        splitter_ids=payload["splitter_ids"],
        original_size_bytes=int(payload["original_size_bytes"]),
        original_tokens=int(payload["original_tokens"]),
    )
