"""End-to-end TADOC compression: corpus -> dictionary + grammar + DAG.

The pipeline follows Figure 1 of the paper:

1. tokenize every document and encode words as integers
   (*dictionary conversion*, Figure 1(b)),
2. concatenate the documents' id streams with unique splitter symbols
   at file boundaries,
3. run Sequitur over the combined stream (*CFG construction*,
   Figure 1(c)/(d)) — splitters occur exactly once, so they always stay
   in the root rule, which keeps file boundaries visible at the root,
4. build the DAG view used by every analytics traversal (Figure 1(e)).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.lockcheck import make_lock
from repro.compression.dag import DagStatistics, GrammarDAG
from repro.compression.dictionary import Dictionary
from repro.compression.grammar import Grammar, Rule, is_rule_ref, rule_ref_id
from repro.compression.sequitur import SequiturEncoder
from repro.data.corpus import Corpus, Document

__all__ = ["CompressedCorpus", "TadocCompressor", "compress_corpus"]

#: Internal splitter ids live in their own high range while the grammar
#: is being built online, because canonical splitter ids (``num_words +
#: k``) are only known once the word registry stops growing.  Sequitur
#: depends on symbol *equality* only, and a splitter occurs exactly once
#: per stream, so relabeling splitters at snapshot time is a bijection
#: on terminals that cannot change the grammar's structure.
_SPLITTER_BASE = 1 << 40


class _OnlineGrammarBuilder:
    """Feed documents one at a time into a single live Sequitur stream.

    The builder owns a mutable word registry (string -> id, in
    first-encounter order — exactly the order the batch compressor
    assigns) and a live :class:`SequiturEncoder`.  ``snapshot()``
    materializes the canonical immutable triple (dictionary, grammar,
    splitter ids) at any point; appending more documents afterwards
    keeps the stream — and therefore every later snapshot — identical
    to what compressing the whole corpus from scratch would produce.
    """

    def __init__(self) -> None:
        self._encoder = SequiturEncoder().begin()
        self._word_ids: Dict[str, int] = {}
        self._words: List[str] = []
        self._num_documents = 0

    @property
    def num_documents(self) -> int:
        return self._num_documents

    def _word_id(self, word: str) -> int:
        word_id = self._word_ids.get(word)
        if word_id is None:
            word_id = len(self._words)
            self._word_ids[word] = word_id
            self._words.append(word)
        return word_id

    def append_document(self, tokens: Sequence[str]) -> None:
        """Extend the live stream with one document (and its splitter)."""
        stream: List[int] = []
        if self._num_documents > 0:
            stream.append(_SPLITTER_BASE + (self._num_documents - 1))
        stream.extend(self._word_id(token) for token in tokens)
        self._encoder.extend(stream)
        self._num_documents += 1

    def snapshot(self) -> Tuple[Dictionary, Grammar, List[int]]:
        """Canonical (dictionary, grammar, splitter_ids) for the stream so far."""
        dictionary = Dictionary()
        for word in self._words:
            dictionary.encode_word(word)
        splitter_ids = dictionary.allocate_splitters(max(0, self._num_documents - 1))
        num_words = len(self._words)
        raw = self._encoder.snapshot()
        rules: List[Rule] = []
        for rule in raw:
            symbols: List[int] = []
            for symbol in rule.symbols:
                if not is_rule_ref(symbol) and symbol >= _SPLITTER_BASE:
                    symbol = num_words + (symbol - _SPLITTER_BASE)
                symbols.append(symbol)
            rules.append(Rule(rule_id=rule.rule_id, symbols=symbols))
        return dictionary, Grammar(rules), splitter_ids


@dataclass(frozen=True)
class CompressionStatistics:
    """Table II style statistics for a compressed corpus."""

    original_size_bytes: int
    original_tokens: int
    num_files: int
    num_rules: int
    vocabulary_size: int
    compressed_symbols: int
    compression_ratio: float
    dag: DagStatistics


class CompressedCorpus:
    """A corpus in TADOC compressed form.

    This is the input object of every analytics engine in the library
    (CPU TADOC, parallel TADOC, distributed TADOC and G-TADOC).
    """

    def __init__(
        self,
        name: str,
        dictionary: Dictionary,
        grammar: Grammar,
        file_names: Sequence[str],
        splitter_ids: Sequence[int],
        original_size_bytes: int,
        original_tokens: int,
        builder: Optional[_OnlineGrammarBuilder] = None,
    ) -> None:
        self.name = name
        self.dictionary = dictionary
        self.grammar = grammar
        self.file_names = list(file_names)
        self.splitter_ids = list(splitter_ids)
        self.original_size_bytes = original_size_bytes
        self.original_tokens = original_tokens
        self.dag = GrammarDAG(grammar)
        self._splitter_set = set(self.splitter_ids)
        self._root_segments = self._compute_root_segments()
        self._fingerprint: Optional[str] = None
        #: Mutation epoch: bumped once per successful mutation call.
        self.version = 0
        self._uid: Optional[str] = None
        self._builder = builder
        #: Recent mutations as ``(resulting version, kind)`` — sessions
        #: consult this to pick the delta path (append) over a rebuild.
        self._mutation_log: List[Tuple[int, str]] = []
        #: Serializes mutations against readers that need a coherent
        #: multi-attribute view (sessions snapshotting a layout, the
        #: serving layer pairing version with fingerprint).
        self.lock = make_lock("corpus", reentrant=True)

    # -- identity ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash identifying this compressed corpus.

        Two corpora with the same files, dictionary and grammar share a
        fingerprint regardless of how (or when) they were built, so the
        value is a safe cache key for anything derived from the
        compressed form — device sessions, query results, serialized
        artifacts.  The display ``name`` does not participate: renaming
        a corpus does not change any query result.  Mutations invalidate
        the memo, so the fingerprint always hashes the *current* epoch's
        content.
        """
        with self.lock:
            if self._fingerprint is None:
                payload = {
                    "file_names": self.file_names,
                    "splitter_ids": self.splitter_ids,
                    "dictionary": self.dictionary.to_dict(),
                    "rules": [rule.symbols for rule in self.grammar],
                }
                canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
                self._fingerprint = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            return self._fingerprint

    @property
    def uid(self) -> str:
        """Stable identity that survives mutations.

        The fingerprint at the corpus's first observation.  Routing
        (shard placement) keys on ``uid`` so a live corpus does not hop
        shards every time it is appended to; caches key on the
        per-epoch :meth:`fingerprint`.  For a corpus that is never
        mutated, ``uid == fingerprint()``.
        """
        with self.lock:
            if self._uid is None:
                self._uid = self.fingerprint()
            return self._uid

    # -- mutation ------------------------------------------------------------------
    def _normalize_documents(
        self,
        documents: Union[Corpus, Mapping[str, Union[str, Sequence[str]]], Iterable[Document]],
    ) -> List[Document]:
        if isinstance(documents, Corpus):
            return list(documents)
        if isinstance(documents, Mapping):
            normalized: List[Document] = []
            for doc_name, content in documents.items():
                if isinstance(content, str):
                    normalized.append(Document(doc_name, content))
                else:
                    normalized.append(Document.from_tokens(doc_name, content))
            return normalized
        out = list(documents)
        for document in out:
            if not isinstance(document, Document):
                raise TypeError("expected Document instances, a Corpus, or a mapping")
        return out

    def _ensure_builder(self) -> _OnlineGrammarBuilder:
        """The live builder, replaying current content if none is attached.

        Corpora that came out of :class:`TadocCompressor` carry their
        builder; deserialized or hand-built ones reconstruct an
        equivalent live stream from their own decompression (which is
        canonical because Sequitur is online and deterministic).
        """
        if self._builder is None:
            builder = _OnlineGrammarBuilder()
            for index in range(len(self.file_names)):
                builder.append_document(self.expand_file_tokens(index))
            self._builder = builder
        return self._builder

    def _adopt_snapshot(
        self,
        builder: _OnlineGrammarBuilder,
        file_names: Sequence[str],
        original_size_bytes: int,
        original_tokens: int,
        kind: str,
    ) -> None:
        """Swap in a new epoch's content and invalidate every memo."""
        dictionary, grammar, splitter_ids = builder.snapshot()
        with self.lock:
            self._builder = builder
            self.dictionary = dictionary
            self.grammar = grammar
            self.file_names = list(file_names)
            self.splitter_ids = list(splitter_ids)
            self.original_size_bytes = original_size_bytes
            self.original_tokens = original_tokens
            self.dag = GrammarDAG(grammar)
            self._splitter_set = set(self.splitter_ids)
            self._root_segments = self._compute_root_segments()
            self._fingerprint = None
            self.version += 1
            self._mutation_log.append((self.version, kind))
            del self._mutation_log[:-64]

    def mutations_since(self, version: int) -> Optional[List[str]]:
        """Mutation kinds applied after ``version``, oldest first.

        ``None`` when ``version`` predates the retained log window (the
        caller must assume the worst and rebuild).
        """
        with self.lock:
            if version >= self.version:
                return []
            kinds = [k for v, k in self._mutation_log if v > version]
            if len(kinds) != self.version - version:
                return None
            return kinds

    # -- replica maintenance -------------------------------------------------------
    def adopt_epoch(
        self,
        *,
        dictionary: Dictionary,
        grammar: Grammar,
        file_names: Sequence[str],
        splitter_ids: Sequence[int],
        original_size_bytes: int,
        original_tokens: int,
    ) -> None:
        """Replace this corpus's entire content in place (replica refresh).

        The object keeps its identity — serving cores rekey warm
        sessions by corpus *object* identity when they observe a new
        epoch, so a shard worker must hold exactly one corpus object per
        uid and refresh it through this method rather than rebuilding.
        The live builder is dropped; a later incremental append lazily
        replays the adopted content through :meth:`_ensure_builder`.
        """
        with self.lock:
            self._builder = None
            self.dictionary = dictionary
            self.grammar = grammar
            self.file_names = list(file_names)
            self.splitter_ids = list(splitter_ids)
            self.original_size_bytes = original_size_bytes
            self.original_tokens = original_tokens
            self.dag = GrammarDAG(grammar)
            self._splitter_set = set(self.splitter_ids)
            self._root_segments = self._compute_root_segments()
            self._fingerprint = None
            self.version += 1
            self._mutation_log.append((self.version, "rebuild"))
            del self._mutation_log[:-64]

    def align_replica(
        self, *, uid: str, version: int, fingerprint: Optional[str] = None
    ) -> None:
        """Stamp this replica with its primary's identity.

        A replica built from a shipped snapshot (or advanced by a
        shipped delta) has the primary's *content* but its own local
        ``uid``/``version`` bookkeeping; this re-stamps both so routing
        identity and the epoch protocol line up across the process
        boundary.  When the primary's version jumped further than the
        local mutation count (several primary mutations shipped as one),
        the newest log entry is re-stamped too — ``mutations_since`` then
        reports the gap honestly and epoch observers fall back to a
        rebuild instead of trusting a wrong delta.  ``fingerprint`` is a
        content tripwire: a mismatch means the replica diverged from its
        primary and raises instead of serving silently wrong answers.
        """
        with self.lock:
            if fingerprint is not None and self.fingerprint() != fingerprint:
                raise ValueError(
                    "replica content diverged from its primary: fingerprint "
                    f"{self.fingerprint()[:12]} != expected {fingerprint[:12]}"
                )
            if version < self.version:
                raise ValueError(
                    f"replica version cannot move backwards ({self.version} -> {version})"
                )
            if (
                version != self.version
                and self._mutation_log
                and self._mutation_log[-1][0] == self.version
            ):
                self._mutation_log[-1] = (version, self._mutation_log[-1][1])
            self.version = version
            self._uid = uid

    def append_files(
        self,
        documents: Union[Corpus, Mapping[str, Union[str, Sequence[str]]], Iterable[Document]],
    ) -> None:
        """Append new files, extending the grammar incrementally in place.

        Appends ride the online Sequitur path: the live encoder consumes
        the new documents' tokens (plus one fresh splitter per file
        boundary), so no existing content is re-encoded.  The result is
        bit-identical — grammar, dictionary, splitter ids, fingerprint —
        to compressing the extended corpus from scratch.
        """
        new_documents = self._normalize_documents(documents)
        if not new_documents:
            return
        with self.lock:
            names = set(self.file_names)
            for document in new_documents:
                if document.name in names:
                    raise ValueError(f"file {document.name!r} already exists in corpus")
                names.add(document.name)
            # uid must capture the pre-mutation identity before content moves.
            _ = self.uid
            builder = self._ensure_builder()
            for document in new_documents:
                builder.append_document(document.tokens)
            self._adopt_snapshot(
                builder,
                self.file_names + [document.name for document in new_documents],
                self.original_size_bytes + sum(d.size_bytes for d in new_documents),
                self.original_tokens + sum(d.num_tokens for d in new_documents),
                kind="append",
            )

    def replace_file(
        self, name: str, content: Union[str, Sequence[str], Document]
    ) -> None:
        """Replace one file's content, rewriting only its root segment's sources.

        Sequitur's invariants are global (a digram freed inside the
        replaced file can merge with content anywhere else), so the
        canonical grammar is re-derived by replaying the kept files'
        token streams through a fresh live builder — still no raw-text
        re-tokenization, and the replay *is* the new live stream, so
        later appends stay incremental.
        """
        if isinstance(content, Document):
            document = Document(name, content.text)
            document._tokens = content._tokens
        elif isinstance(content, str):
            document = Document(name, content)
        else:
            document = Document.from_tokens(name, content)
        with self.lock:
            if name not in self.file_names:
                raise KeyError(name)
            index = self.file_names.index(name)
            _ = self.uid
            self._rebuild_with(
                {index: document}, removed=frozenset()
            )

    def remove_file(self, name: str) -> None:
        """Remove one file; the dictionary and grammar drop orphaned content.

        The grammar is re-derived from the kept files (rules whose only
        references lived in the removed file disappear — refcount GC
        falls out of the replay), keeping every invariant the scratch
        compressor guarantees.
        """
        with self.lock:
            if name not in self.file_names:
                raise KeyError(name)
            if len(self.file_names) == 1:
                raise ValueError("cannot remove the last file of a corpus")
            index = self.file_names.index(name)
            _ = self.uid
            self._rebuild_with({}, removed=frozenset({index}))

    def _rebuild_with(
        self, replacements: Mapping[int, Document], removed: frozenset
    ) -> None:
        """Replay kept + replacement token streams through a fresh builder."""
        builder = _OnlineGrammarBuilder()
        kept_names: List[str] = []
        total_tokens = 0
        total_bytes = 0
        for index, file_name in enumerate(self.file_names):
            if index in removed:
                continue
            if index in replacements:
                document = replacements[index]
                tokens = document.tokens
                size = document.size_bytes
            else:
                tokens = self.expand_file_tokens(index)
                size = len(" ".join(tokens).encode("utf-8"))
            builder.append_document(tokens)
            kept_names.append(file_name)
            total_tokens += len(tokens)
            total_bytes += size
        self._adopt_snapshot(builder, kept_names, total_bytes, total_tokens, kind="rebuild")

    # -- file segmentation -------------------------------------------------------
    def _compute_root_segments(self) -> List[Tuple[int, int]]:
        """Half-open symbol ranges of the root body belonging to each file.

        Splitters occur exactly once in the input so Sequitur can never
        fold them into a sub-rule; they are guaranteed to sit in the
        root body, which this method also verifies.
        """
        root_symbols = self.grammar.root.symbols
        boundaries: List[int] = []
        for position, symbol in enumerate(root_symbols):
            if not is_rule_ref(symbol) and symbol in self._splitter_set:
                boundaries.append(position)
        if len(boundaries) != len(self.file_names) - 1 and len(self.file_names) > 0:
            raise ValueError(
                "splitter symbols missing from the root rule; "
                f"expected {len(self.file_names) - 1}, found {len(boundaries)}"
            )
        segments: List[Tuple[int, int]] = []
        start = 0
        for boundary in boundaries:
            segments.append((start, boundary))
            start = boundary + 1
        segments.append((start, len(root_symbols)))
        return segments

    @property
    def root_file_segments(self) -> List[Tuple[int, int]]:
        """Per-file half-open ranges ``(start, end)`` into the root body."""
        return list(self._root_segments)

    def is_splitter(self, symbol: int) -> bool:
        """True if the (terminal) symbol id is a file splitter."""
        return symbol in self._splitter_set

    # -- decompression -------------------------------------------------------------
    def expand_file_tokens(self, file_index: int) -> List[str]:
        """Fully expand one file back to its word tokens (verification path)."""
        start, end = self._root_segments[file_index]
        ids: List[int] = []
        for symbol in self.grammar.root.symbols[start:end]:
            if is_rule_ref(symbol):
                ids.extend(self.grammar.expand_rule(rule_ref_id(symbol)))
            else:
                ids.append(symbol)
        return self.dictionary.decode_tokens(ids)

    def decompress(self) -> Corpus:
        """Reconstruct the original corpus (used to verify losslessness)."""
        documents = [
            Document.from_tokens(name, self.expand_file_tokens(index))
            for index, name in enumerate(self.file_names)
        ]
        return Corpus(documents, name=self.name)

    # -- statistics ------------------------------------------------------------------
    def statistics(self) -> CompressionStatistics:
        compressed_symbols = self.grammar.total_symbols()
        ratio = (
            self.original_tokens / compressed_symbols if compressed_symbols else 0.0
        )
        return CompressionStatistics(
            original_size_bytes=self.original_size_bytes,
            original_tokens=self.original_tokens,
            num_files=len(self.file_names),
            num_rules=len(self.grammar),
            vocabulary_size=self.dictionary.num_words,
            compressed_symbols=compressed_symbols,
            compression_ratio=ratio,
            dag=self.dag.statistics(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompressedCorpus(name={self.name!r}, files={len(self.file_names)}, "
            f"rules={len(self.grammar)}, vocab={self.dictionary.num_words})"
        )


class TadocCompressor:
    """Compress a :class:`~repro.data.corpus.Corpus` into TADOC form."""

    def compress(self, corpus: Corpus) -> CompressedCorpus:
        builder = _OnlineGrammarBuilder()
        for document in corpus:
            builder.append_document(document.tokens)
        dictionary, grammar, splitter_ids = builder.snapshot()
        return CompressedCorpus(
            name=corpus.name,
            dictionary=dictionary,
            grammar=grammar,
            file_names=corpus.file_names,
            splitter_ids=splitter_ids,
            original_size_bytes=corpus.size_bytes,
            original_tokens=corpus.num_tokens,
            builder=builder,
        )


def compress_corpus(corpus: Corpus) -> CompressedCorpus:
    """Convenience wrapper: ``TadocCompressor().compress(corpus)``."""
    return TadocCompressor().compress(corpus)
