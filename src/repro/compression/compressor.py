"""End-to-end TADOC compression: corpus -> dictionary + grammar + DAG.

The pipeline follows Figure 1 of the paper:

1. tokenize every document and encode words as integers
   (*dictionary conversion*, Figure 1(b)),
2. concatenate the documents' id streams with unique splitter symbols
   at file boundaries,
3. run Sequitur over the combined stream (*CFG construction*,
   Figure 1(c)/(d)) — splitters occur exactly once, so they always stay
   in the root rule, which keeps file boundaries visible at the root,
4. build the DAG view used by every analytics traversal (Figure 1(e)).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compression.dag import DagStatistics, GrammarDAG
from repro.compression.dictionary import Dictionary
from repro.compression.grammar import Grammar, is_rule_ref, rule_ref_id
from repro.compression.sequitur import SequiturEncoder
from repro.data.corpus import Corpus, Document

__all__ = ["CompressedCorpus", "TadocCompressor", "compress_corpus"]


@dataclass(frozen=True)
class CompressionStatistics:
    """Table II style statistics for a compressed corpus."""

    original_size_bytes: int
    original_tokens: int
    num_files: int
    num_rules: int
    vocabulary_size: int
    compressed_symbols: int
    compression_ratio: float
    dag: DagStatistics


class CompressedCorpus:
    """A corpus in TADOC compressed form.

    This is the input object of every analytics engine in the library
    (CPU TADOC, parallel TADOC, distributed TADOC and G-TADOC).
    """

    def __init__(
        self,
        name: str,
        dictionary: Dictionary,
        grammar: Grammar,
        file_names: Sequence[str],
        splitter_ids: Sequence[int],
        original_size_bytes: int,
        original_tokens: int,
    ) -> None:
        self.name = name
        self.dictionary = dictionary
        self.grammar = grammar
        self.file_names = list(file_names)
        self.splitter_ids = list(splitter_ids)
        self.original_size_bytes = original_size_bytes
        self.original_tokens = original_tokens
        self.dag = GrammarDAG(grammar)
        self._splitter_set = set(self.splitter_ids)
        self._root_segments = self._compute_root_segments()
        self._fingerprint: Optional[str] = None

    # -- identity ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash identifying this compressed corpus.

        Two corpora with the same files, dictionary and grammar share a
        fingerprint regardless of how (or when) they were built, so the
        value is a safe cache key for anything derived from the
        compressed form — device sessions, query results, serialized
        artifacts.  The display ``name`` does not participate: renaming
        a corpus does not change any query result.
        """
        if self._fingerprint is None:
            payload = {
                "file_names": self.file_names,
                "splitter_ids": self.splitter_ids,
                "dictionary": self.dictionary.to_dict(),
                "rules": [rule.symbols for rule in self.grammar],
            }
            canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            self._fingerprint = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        return self._fingerprint

    # -- file segmentation -------------------------------------------------------
    def _compute_root_segments(self) -> List[Tuple[int, int]]:
        """Half-open symbol ranges of the root body belonging to each file.

        Splitters occur exactly once in the input so Sequitur can never
        fold them into a sub-rule; they are guaranteed to sit in the
        root body, which this method also verifies.
        """
        root_symbols = self.grammar.root.symbols
        boundaries: List[int] = []
        for position, symbol in enumerate(root_symbols):
            if not is_rule_ref(symbol) and symbol in self._splitter_set:
                boundaries.append(position)
        if len(boundaries) != len(self.file_names) - 1 and len(self.file_names) > 0:
            raise ValueError(
                "splitter symbols missing from the root rule; "
                f"expected {len(self.file_names) - 1}, found {len(boundaries)}"
            )
        segments: List[Tuple[int, int]] = []
        start = 0
        for boundary in boundaries:
            segments.append((start, boundary))
            start = boundary + 1
        segments.append((start, len(root_symbols)))
        return segments

    @property
    def root_file_segments(self) -> List[Tuple[int, int]]:
        """Per-file half-open ranges ``(start, end)`` into the root body."""
        return list(self._root_segments)

    def is_splitter(self, symbol: int) -> bool:
        """True if the (terminal) symbol id is a file splitter."""
        return symbol in self._splitter_set

    # -- decompression -------------------------------------------------------------
    def expand_file_tokens(self, file_index: int) -> List[str]:
        """Fully expand one file back to its word tokens (verification path)."""
        start, end = self._root_segments[file_index]
        ids: List[int] = []
        for symbol in self.grammar.root.symbols[start:end]:
            if is_rule_ref(symbol):
                ids.extend(self.grammar.expand_rule(rule_ref_id(symbol)))
            else:
                ids.append(symbol)
        return self.dictionary.decode_tokens(ids)

    def decompress(self) -> Corpus:
        """Reconstruct the original corpus (used to verify losslessness)."""
        documents = [
            Document.from_tokens(name, self.expand_file_tokens(index))
            for index, name in enumerate(self.file_names)
        ]
        return Corpus(documents, name=self.name)

    # -- statistics ------------------------------------------------------------------
    def statistics(self) -> CompressionStatistics:
        compressed_symbols = self.grammar.total_symbols()
        ratio = (
            self.original_tokens / compressed_symbols if compressed_symbols else 0.0
        )
        return CompressionStatistics(
            original_size_bytes=self.original_size_bytes,
            original_tokens=self.original_tokens,
            num_files=len(self.file_names),
            num_rules=len(self.grammar),
            vocabulary_size=self.dictionary.num_words,
            compressed_symbols=compressed_symbols,
            compression_ratio=ratio,
            dag=self.dag.statistics(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompressedCorpus(name={self.name!r}, files={len(self.file_names)}, "
            f"rules={len(self.grammar)}, vocab={self.dictionary.num_words})"
        )


class TadocCompressor:
    """Compress a :class:`~repro.data.corpus.Corpus` into TADOC form."""

    def compress(self, corpus: Corpus) -> CompressedCorpus:
        dictionary = Dictionary()
        encoded_files: List[List[int]] = [
            dictionary.encode_tokens(document.tokens) for document in corpus
        ]
        splitter_ids = dictionary.allocate_splitters(max(0, len(corpus) - 1))
        stream: List[int] = []
        for index, encoded in enumerate(encoded_files):
            if index > 0:
                stream.append(splitter_ids[index - 1])
            stream.extend(encoded)
        grammar = SequiturEncoder().encode(stream)
        return CompressedCorpus(
            name=corpus.name,
            dictionary=dictionary,
            grammar=grammar,
            file_names=corpus.file_names,
            splitter_ids=splitter_ids,
            original_size_bytes=corpus.size_bytes,
            original_tokens=corpus.num_tokens,
        )


def compress_corpus(corpus: Corpus) -> CompressedCorpus:
    """Convenience wrapper: ``TadocCompressor().compress(corpus)``."""
    return TadocCompressor().compress(corpus)
