"""TADOC compression substrate.

This package implements the compression side of TADOC as described in
section II-A of the paper (and in the earlier TADOC papers it builds
on):

* dictionary conversion — words and file splitters become integers
  (:mod:`repro.compression.dictionary`),
* Sequitur grammar inference — the token stream becomes a context-free
  grammar whose repeated substrings are shared rules
  (:mod:`repro.compression.sequitur`),
* the grammar / rule representation and symbol encoding
  (:mod:`repro.compression.grammar`),
* the rule DAG used by all analytics traversals
  (:mod:`repro.compression.dag`),
* the end-to-end compressor and the :class:`CompressedCorpus` container
  (:mod:`repro.compression.compressor`), and
* a numeric on-disk format mirroring Figure 1(c)
  (:mod:`repro.compression.serializer`).
"""

from repro.compression.dictionary import Dictionary
from repro.compression.grammar import (
    Grammar,
    Rule,
    is_rule_ref,
    make_rule_ref,
    rule_ref_id,
)
from repro.compression.sequitur import SequiturEncoder
from repro.compression.dag import GrammarDAG, DagStatistics
from repro.compression.compressor import CompressedCorpus, TadocCompressor, compress_corpus
from repro.compression.serializer import load_compressed, save_compressed

__all__ = [
    "Dictionary",
    "Grammar",
    "Rule",
    "is_rule_ref",
    "make_rule_ref",
    "rule_ref_id",
    "SequiturEncoder",
    "GrammarDAG",
    "DagStatistics",
    "CompressedCorpus",
    "TadocCompressor",
    "compress_corpus",
    "load_compressed",
    "save_compressed",
]
