"""Hardware specifications for the Table I devices.

All numbers are public data-sheet values for the devices the paper
lists in Table I.  The cost models in :mod:`repro.perf.cost_model`
derive throughputs from these specs; nothing else in the library
hard-codes hardware numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "GTX_1080",
    "TESLA_V100",
    "RTX_2080_TI",
    "I7_7700K",
    "E5_2670",
    "I9_9900K",
    "E5_2676_V3",
]


@dataclass(frozen=True)
class GPUSpec:
    """An Nvidia GPU as seen by the analytical cost model."""

    name: str
    micro_architecture: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    memory_gb: float
    memory_type: str
    memory_bandwidth_gb_s: float
    warp_size: int = 32
    #: Sustained global-atomic throughput (operations per second).
    atomic_throughput_gops: float = 4.0
    #: Fixed cost of launching one kernel (host + driver + device), seconds.
    kernel_launch_overhead_s: float = 5e-6
    #: PCIe transfer bandwidth for host<->device copies.
    pcie_bandwidth_gb_s: float = 12.0
    #: Fraction of peak issue rate that irregular, data-dependent code
    #: (pointer chasing over rules, hash probing) typically sustains.
    achievable_efficiency: float = 0.22
    #: Fraction of peak memory bandwidth sustained by scattered accesses.
    memory_efficiency: float = 0.55

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def peak_gops(self) -> float:
        """Peak scalar-operation throughput in Gop/s (one op per core per cycle)."""
        return self.total_cores * self.clock_ghz

    @property
    def warp_issue_rate_gwarps(self) -> float:
        """Warp-instructions per second (in G/s) across the whole device."""
        return self.num_sms * (self.cores_per_sm / self.warp_size) * self.clock_ghz


@dataclass(frozen=True)
class CPUSpec:
    """A CPU as seen by the analytical cost model."""

    name: str
    cores: int
    threads: int
    clock_ghz: float
    memory_bandwidth_gb_s: float
    #: Effective scalar instructions per cycle for pointer-heavy analytics code.
    effective_ipc: float = 1.4
    #: Fraction of peak memory bandwidth sustained by a single thread.
    single_thread_bandwidth_fraction: float = 0.45
    #: Efficiency of multi-threaded scaling for the coarse-grained TADOC.
    parallel_efficiency: float = 0.7

    @property
    def single_thread_gops(self) -> float:
        """Sustained scalar throughput of one thread in Gop/s."""
        return self.clock_ghz * self.effective_ipc

    @property
    def peak_gops(self) -> float:
        """Whole-socket sustained scalar throughput in Gop/s."""
        return self.cores * self.single_thread_gops


# --------------------------------------------------------------------------------------
# Table I GPUs
# --------------------------------------------------------------------------------------

GTX_1080 = GPUSpec(
    name="GeForce GTX 1080",
    micro_architecture="Pascal",
    num_sms=20,
    cores_per_sm=128,
    clock_ghz=1.733,
    memory_gb=8.0,
    memory_type="GDDR5X",
    memory_bandwidth_gb_s=320.0,
    atomic_throughput_gops=4.0,
)

TESLA_V100 = GPUSpec(
    name="Tesla V100",
    micro_architecture="Volta",
    num_sms=80,
    cores_per_sm=64,
    clock_ghz=1.530,
    memory_gb=16.0,
    memory_type="HBM2",
    memory_bandwidth_gb_s=900.0,
    atomic_throughput_gops=8.0,
)

RTX_2080_TI = GPUSpec(
    name="GeForce RTX 2080 Ti",
    micro_architecture="Turing",
    num_sms=68,
    cores_per_sm=64,
    clock_ghz=1.545,
    memory_gb=11.0,
    memory_type="GDDR6",
    memory_bandwidth_gb_s=616.0,
    atomic_throughput_gops=6.0,
)


# --------------------------------------------------------------------------------------
# Table I CPUs
# --------------------------------------------------------------------------------------

I7_7700K = CPUSpec(
    name="Intel Core i7-7700K",
    cores=4,
    threads=8,
    clock_ghz=4.2,
    memory_bandwidth_gb_s=38.4,
)

E5_2670 = CPUSpec(
    name="Intel Xeon E5-2670",
    cores=8,
    threads=16,
    clock_ghz=2.6,
    memory_bandwidth_gb_s=51.2,
)

I9_9900K = CPUSpec(
    name="Intel Core i9-9900K",
    cores=8,
    threads=16,
    clock_ghz=3.6,
    memory_bandwidth_gb_s=41.6,
)

E5_2676_V3 = CPUSpec(
    name="Intel Xeon E5-2676 v3",
    cores=12,
    threads=24,
    clock_ghz=2.4,
    memory_bandwidth_gb_s=68.0,
)
