"""Work counters shared by every engine.

Engines do not time themselves; they *count* the work they perform.
Two counter families exist:

* :class:`CostCounter` — a flat counter used by the CPU-side engines
  (sequential TADOC, coarse-grained parallel TADOC, cluster TADOC) and
  by host-side control code of G-TADOC.
* :class:`KernelStats` — per-kernel-launch counters produced by the GPU
  simulator; a GPU run is a :class:`GpuRunRecord`, i.e. an ordered list
  of kernel launches plus host-side overhead.

:class:`PhaseTiming` carries the modelled seconds of the two TADOC
phases (initialization and DAG traversal) once a cost model has priced
the counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

__all__ = ["CostCounter", "KernelStats", "GpuRunRecord", "PhaseTiming"]


@dataclass
class CostCounter:
    """Abstract work performed by a (CPU-side) computation."""

    compute_ops: float = 0.0
    memory_bytes: float = 0.0
    branch_ops: float = 0.0
    hash_ops: float = 0.0
    network_bytes: float = 0.0
    network_messages: float = 0.0

    # -- mutation helpers -------------------------------------------------------
    def charge(
        self,
        compute_ops: float = 0.0,
        memory_bytes: float = 0.0,
        branch_ops: float = 0.0,
        hash_ops: float = 0.0,
    ) -> None:
        """Add work to the counter (the common inner-loop call)."""
        self.compute_ops += compute_ops
        self.memory_bytes += memory_bytes
        self.branch_ops += branch_ops
        self.hash_ops += hash_ops

    def charge_network(self, bytes_sent: float, messages: float = 1.0) -> None:
        self.network_bytes += bytes_sent
        self.network_messages += messages

    def merge(self, other: "CostCounter") -> None:
        """Accumulate another counter into this one."""
        self.compute_ops += other.compute_ops
        self.memory_bytes += other.memory_bytes
        self.branch_ops += other.branch_ops
        self.hash_ops += other.hash_ops
        self.network_bytes += other.network_bytes
        self.network_messages += other.network_messages

    def scaled(self, factor: float) -> "CostCounter":
        """Return a copy with every field multiplied by ``factor``."""
        return CostCounter(
            compute_ops=self.compute_ops * factor,
            memory_bytes=self.memory_bytes * factor,
            branch_ops=self.branch_ops * factor,
            hash_ops=self.hash_ops * factor,
            network_bytes=self.network_bytes * factor,
            network_messages=self.network_messages * factor,
        )

    def copy(self) -> "CostCounter":
        return replace(self)

    @property
    def total_ops(self) -> float:
        """All scalar operations (compute + branches + hashing)."""
        return self.compute_ops + self.branch_ops + self.hash_ops

    def __add__(self, other: "CostCounter") -> "CostCounter":
        result = self.copy()
        result.merge(other)
        return result


@dataclass
class KernelStats:
    """Work performed by one simulated GPU kernel launch."""

    name: str
    num_threads: int = 0
    num_warps: int = 0
    #: Sum over warps of the *maximum* per-thread operation count — the
    #: SIMT lock-step execution cost (divergence shows up here).
    warp_serial_ops: float = 0.0
    #: Sum of per-thread operation counts (useful for divergence ratios).
    total_thread_ops: float = 0.0
    memory_bytes: float = 0.0
    shared_memory_bytes: float = 0.0
    atomic_ops: float = 0.0
    #: Extra serialised atomic operations caused by address conflicts.
    atomic_conflicts: float = 0.0

    @property
    def divergence_ratio(self) -> float:
        """warp-serial work / ideal work; 1.0 means perfectly balanced warps."""
        ideal = self.total_thread_ops / 32.0 if self.total_thread_ops else 0.0
        if ideal == 0.0:
            return 1.0
        return self.warp_serial_ops / ideal if self.warp_serial_ops else 1.0

    def scaled(self, factor: float) -> "KernelStats":
        """Scale the data-dependent fields (thread/warp counts included)."""
        return KernelStats(
            name=self.name,
            num_threads=int(self.num_threads * factor),
            num_warps=max(1, int(self.num_warps * factor)),
            warp_serial_ops=self.warp_serial_ops * factor,
            total_thread_ops=self.total_thread_ops * factor,
            memory_bytes=self.memory_bytes * factor,
            shared_memory_bytes=self.shared_memory_bytes * factor,
            atomic_ops=self.atomic_ops * factor,
            atomic_conflicts=self.atomic_conflicts * factor,
        )


@dataclass
class GpuRunRecord:
    """All kernel launches of one G-TADOC phase plus host-side control work."""

    kernels: List[KernelStats] = field(default_factory=list)
    host_counter: CostCounter = field(default_factory=CostCounter)
    #: Host <-> device transfers (PCIe), charged only when the dataset does
    #: not fit in GPU memory (see section VI-A "Methodology").
    pcie_bytes: float = 0.0

    def add_kernel(self, stats: KernelStats) -> None:
        self.kernels.append(stats)

    def merge(self, other: "GpuRunRecord") -> None:
        self.kernels.extend(other.kernels)
        self.host_counter.merge(other.host_counter)
        self.pcie_bytes += other.pcie_bytes

    @property
    def num_launches(self) -> int:
        return len(self.kernels)

    @property
    def total_ops(self) -> float:
        """All simulated scalar ops: kernel thread ops plus host control."""
        return (
            sum(kernel.total_thread_ops for kernel in self.kernels)
            + self.host_counter.total_ops
        )

    @property
    def total_atomic_conflicts(self) -> float:
        return sum(kernel.atomic_conflicts for kernel in self.kernels)

    @property
    def total_warp_serial_ops(self) -> float:
        return sum(kernel.warp_serial_ops for kernel in self.kernels)


@dataclass
class PhaseTiming:
    """Modelled seconds of the two TADOC execution phases."""

    initialization: float = 0.0
    traversal: float = 0.0

    @property
    def total(self) -> float:
        return self.initialization + self.traversal

    def speedup_over(self, baseline: "PhaseTiming") -> Dict[str, float]:
        """Per-phase and total speedups of ``self`` relative to ``baseline``."""

        def ratio(base: float, ours: float) -> float:
            if ours <= 0.0:
                return float("inf") if base > 0.0 else 1.0
            return base / ours

        return {
            "initialization": ratio(baseline.initialization, self.initialization),
            "traversal": ratio(baseline.traversal, self.traversal),
            "total": ratio(baseline.total, self.total),
        }
