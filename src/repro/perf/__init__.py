"""Performance-modelling substrate.

The paper's evaluation runs on three CUDA GPUs and a 10-node cluster
(Table I).  Offline we have neither, so every engine in this library is
*functionally executed* in Python while counting the abstract work it
performs (scalar operations, memory traffic, atomics, warp-serialised
work, network traffic).  This package turns those counts into modelled
seconds using analytical cost models parameterised by the public
hardware specifications of the Table I devices.

Nothing here measures wall-clock time; see DESIGN.md section 2 for why
this substitution preserves the paper's performance *shape*.
"""

from repro.perf.counters import CostCounter, KernelStats, GpuRunRecord, PhaseTiming
from repro.perf.specs import CPUSpec, GPUSpec
from repro.perf.platforms import (
    CLUSTER_PLATFORM,
    PASCAL,
    PLATFORMS,
    TURING,
    VOLTA,
    Platform,
    get_platform,
    list_platforms,
)
from repro.perf.cost_model import CpuCostModel, GpuCostModel, ClusterCostModel
from repro.perf.extrapolation import extrapolate_counter, extrapolate_gpu_record

__all__ = [
    "CostCounter",
    "KernelStats",
    "GpuRunRecord",
    "PhaseTiming",
    "CPUSpec",
    "GPUSpec",
    "Platform",
    "PASCAL",
    "VOLTA",
    "TURING",
    "CLUSTER_PLATFORM",
    "PLATFORMS",
    "get_platform",
    "list_platforms",
    "CpuCostModel",
    "GpuCostModel",
    "ClusterCostModel",
    "extrapolate_counter",
    "extrapolate_gpu_record",
]
