"""Analytical cost models: work counters -> modelled seconds.

Three models exist, one per execution substrate:

* :class:`CpuCostModel` — sequential or multi-threaded CPU execution,
  used for the TADOC baselines (a simple roofline: the slower of the
  compute rate and the memory system bounds the time).
* :class:`GpuCostModel` — prices a :class:`~repro.perf.counters.GpuRunRecord`
  kernel by kernel: warp-serial work over the device's warp issue rate,
  memory traffic over sustained bandwidth, atomics over atomic
  throughput (conflicts serialise), plus a fixed launch overhead per
  kernel and optional PCIe transfer time.
* :class:`ClusterCostModel` — coarse-grained distributed execution:
  per-node CPU time for its partition plus a network shuffle term.

All models are deliberately first-order; the goal is reproducing the
paper's performance *shape* (who wins and by roughly what factor), not
absolute microsecond accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.perf.counters import CostCounter, GpuRunRecord, KernelStats
from repro.perf.specs import CPUSpec, GPUSpec

__all__ = ["CpuCostModel", "GpuCostModel", "ClusterCostModel"]

_BYTES_PER_GB = 1e9
_HASH_OP_WEIGHT = 3.0  # a hash probe/update costs ~3 simple ALU ops


@dataclass
class CpuCostModel:
    """Roofline-style cost model for CPU execution.

    Besides the compute/bandwidth roofline, hash-table operations carry a
    random-access latency term: TADOC's tables at paper scale are far
    larger than the last-level cache, so every probe is effectively a
    DRAM round trip that a single CPU thread cannot hide — the paper's
    core argument for why a throughput-oriented GPU wins on this
    workload.
    """

    spec: CPUSpec
    threads: int = 1
    #: Extra fixed cost per task invocation (allocation, setup), seconds.
    task_overhead_s: float = 1e-4
    #: Effective DRAM round-trip cost of one hash probe/update on tables
    #: that exceed the last-level cache.
    random_access_latency_s: float = 35e-9

    def _effective_gops(self) -> float:
        if self.threads <= 1:
            return self.spec.single_thread_gops
        usable = min(self.threads, self.spec.threads)
        return self.spec.single_thread_gops * usable * self.spec.parallel_efficiency

    def _effective_bandwidth(self) -> float:
        if self.threads <= 1:
            return (
                self.spec.memory_bandwidth_gb_s
                * self.spec.single_thread_bandwidth_fraction
            )
        return self.spec.memory_bandwidth_gb_s * 0.8

    def _latency_concurrency(self) -> float:
        """How many outstanding random accesses the configuration overlaps."""
        if self.threads <= 1:
            return 1.0
        usable = min(self.threads, self.spec.threads)
        return max(1.0, usable * self.spec.parallel_efficiency)

    def time_seconds(self, counter: CostCounter) -> float:
        """Model the execution time of the counted work."""
        ops = counter.compute_ops + counter.branch_ops + _HASH_OP_WEIGHT * counter.hash_ops
        compute_time = ops / (self._effective_gops() * 1e9)
        memory_time = counter.memory_bytes / (self._effective_bandwidth() * _BYTES_PER_GB)
        latency_time = (
            counter.hash_ops * self.random_access_latency_s / self._latency_concurrency()
        )
        return max(compute_time, memory_time) + latency_time + self.task_overhead_s


@dataclass
class GpuCostModel:
    """Cost model for simulated GPU kernel launches."""

    spec: GPUSpec
    #: Host-side loop overhead per kernel launch round-trip (cudaMemcpy of
    #: the stop flag, Python-side control), seconds.
    host_sync_overhead_s: float = 8e-6

    # -- per-kernel pricing -----------------------------------------------------------
    def kernel_time_seconds(self, stats: KernelStats) -> float:
        """Model one kernel launch."""
        issue_rate = self.spec.warp_issue_rate_gwarps * 1e9 * self.spec.achievable_efficiency
        compute_time = stats.warp_serial_ops / issue_rate if issue_rate else 0.0
        bandwidth = (
            self.spec.memory_bandwidth_gb_s * _BYTES_PER_GB * self.spec.memory_efficiency
        )
        memory_time = stats.memory_bytes / bandwidth if bandwidth else 0.0
        atomic_rate = self.spec.atomic_throughput_gops * 1e9
        atomic_time = (
            (stats.atomic_ops + 2.0 * stats.atomic_conflicts) / atomic_rate
            if atomic_rate
            else 0.0
        )
        busy_time = max(compute_time, memory_time, atomic_time)
        return busy_time + self.spec.kernel_launch_overhead_s

    # -- whole-run pricing --------------------------------------------------------------
    def time_seconds(self, record: GpuRunRecord, host_model: Optional[CpuCostModel] = None) -> float:
        """Model a whole phase: kernels + host control + PCIe transfers."""
        kernel_time = sum(self.kernel_time_seconds(kernel) for kernel in record.kernels)
        sync_time = self.host_sync_overhead_s * record.num_launches
        pcie_time = record.pcie_bytes / (self.spec.pcie_bandwidth_gb_s * _BYTES_PER_GB)
        host_time = 0.0
        if host_model is not None:
            host_time = host_model.time_seconds(record.host_counter) - host_model.task_overhead_s
            host_time = max(host_time, 0.0)
        return kernel_time + sync_time + pcie_time + host_time


@dataclass
class ClusterCostModel:
    """Cost model for the coarse-grained distributed TADOC baseline."""

    node_spec: CPUSpec
    num_nodes: int = 10
    threads_per_node: int = 12
    network_bandwidth_gb_s: float = 1.25
    network_latency_s: float = 200e-6
    #: Framework (job scheduling, task dispatch) overhead per stage, seconds.
    framework_overhead_s: float = 0.5

    def node_model(self) -> CpuCostModel:
        return CpuCostModel(self.node_spec, threads=self.threads_per_node)

    def time_seconds(
        self,
        per_node_counters: Iterable[CostCounter],
        shuffle_counter: Optional[CostCounter] = None,
        num_stages: int = 2,
    ) -> float:
        """Model a distributed run.

        ``per_node_counters`` holds one counter per node partition; the
        slowest node bounds the compute stage (the classic straggler
        effect).  ``shuffle_counter`` describes the merge stage's network
        traffic.
        """
        node_model = self.node_model()
        counters: List[CostCounter] = list(per_node_counters)
        compute_time = max(
            (node_model.time_seconds(counter) for counter in counters), default=0.0
        )
        network_time = 0.0
        if shuffle_counter is not None:
            network_time = shuffle_counter.network_bytes / (
                self.network_bandwidth_gb_s * _BYTES_PER_GB
            )
            network_time += shuffle_counter.network_messages * self.network_latency_s
        return compute_time + network_time + self.framework_overhead_s * num_stages
