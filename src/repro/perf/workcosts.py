"""Shared unit-work constants.

Both the CPU baselines and the G-TADOC GPU kernels charge their work in
the same abstract units so that the modelled comparison between them is
apples-to-apples: processing one grammar symbol, probing a hash table
or visiting a DAG edge costs the same number of abstract operations on
either side; only the *execution model* (sequential CPU, coarse-grained
threads, massively parallel SIMT with atomics) differs.
"""

from __future__ import annotations

__all__ = [
    "SYMBOL_VISIT_OPS",
    "SYMBOL_VISIT_BYTES",
    "HASH_UPDATE_OPS",
    "HASH_UPDATE_BYTES",
    "EDGE_VISIT_OPS",
    "EDGE_VISIT_BYTES",
    "WEIGHT_UPDATE_OPS",
    "MASK_CHECK_OPS",
    "TOKEN_SCAN_OPS",
    "TOKEN_SCAN_BYTES",
    "SORT_OPS_PER_KEY",
    "RESULT_ENTRY_BYTES",
]

#: Reading and dispatching on one symbol of a rule body.
SYMBOL_VISIT_OPS = 4.0
SYMBOL_VISIT_BYTES = 8.0

#: One hash-table probe-and-update (local or global word table).
HASH_UPDATE_OPS = 10.0
HASH_UPDATE_BYTES = 24.0

#: Following one DAG edge (reading a (sub-rule, frequency) pair).
EDGE_VISIT_OPS = 6.0
EDGE_VISIT_BYTES = 16.0

#: Updating a propagated weight (plain or atomic add).
WEIGHT_UPDATE_OPS = 2.0

#: Checking or setting a readiness mask.
MASK_CHECK_OPS = 1.0

#: Scanning one token of uncompressed text (tokenize + hash).
TOKEN_SCAN_OPS = 12.0
TOKEN_SCAN_BYTES = 12.0

#: Comparison-sort cost per key per log-factor.
SORT_OPS_PER_KEY = 4.0

#: Size of one (key, value) result entry when shipped over a network.
RESULT_ENTRY_BYTES = 12.0
