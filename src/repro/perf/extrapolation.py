"""Paper-scale extrapolation of measured work counters.

The synthetic dataset analogues are two to three orders of magnitude
smaller than the corpora in Table II (see DESIGN.md section 2).  Work
counts measured on the analogues are therefore extrapolated to paper
scale before pricing: every *data-proportional* field is multiplied by
the ratio of the paper dataset's rule count to the analogue's rule
count, while *structure-proportional* quantities (number of kernel
launches = DAG depth, number of traversal iterations) are left as
measured because they grow logarithmically with data size.

This keeps fixed overheads (kernel launches, host synchronisation,
framework overheads) honest while placing the data-dependent work at a
realistic magnitude, which is what the paper's speedup shape depends
on.
"""

from __future__ import annotations

from repro.perf.counters import CostCounter, GpuRunRecord

__all__ = ["extrapolate_counter", "extrapolate_gpu_record", "dataset_scale_factor"]


def dataset_scale_factor(paper_rules: int, measured_rules: int) -> float:
    """Factor by which measured work is scaled up to paper scale."""
    if measured_rules <= 0:
        raise ValueError("measured_rules must be positive")
    return max(1.0, paper_rules / measured_rules)


def extrapolate_counter(counter: CostCounter, factor: float) -> CostCounter:
    """Scale the data-proportional fields of a CPU counter by ``factor``.

    The number of network *messages* is structural (one shuffle message
    per partition regardless of data volume), so it is left as measured;
    only the bytes they carry scale.
    """
    if factor < 1.0:
        raise ValueError("extrapolation factor must be >= 1.0")
    scaled = counter.scaled(factor)
    scaled.network_messages = counter.network_messages
    return scaled


def extrapolate_gpu_record(record: GpuRunRecord, factor: float) -> GpuRunRecord:
    """Scale a GPU run record to paper scale.

    Per-kernel data-dependent work scales by ``factor``; the *number* of
    kernel launches is left as measured (DAG depth grows slowly with
    data volume).
    """
    if factor < 1.0:
        raise ValueError("extrapolation factor must be >= 1.0")
    scaled = GpuRunRecord(
        kernels=[kernel.scaled(factor) for kernel in record.kernels],
        host_counter=record.host_counter.scaled(factor),
        pcie_bytes=record.pcie_bytes * factor,
    )
    return scaled
