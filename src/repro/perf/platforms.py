"""The evaluation platforms of Table I.

Three GPU platforms (Pascal, Volta, Turing) each pair a GPU with a host
CPU; the fourth platform is the 10-node Amazon EC2 Spark cluster used
as the TADOC baseline for the largest dataset (C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.perf.specs import (
    CPUSpec,
    E5_2670,
    E5_2676_V3,
    GPUSpec,
    GTX_1080,
    I7_7700K,
    I9_9900K,
    RTX_2080_TI,
    TESLA_V100,
)

__all__ = [
    "Platform",
    "PASCAL",
    "VOLTA",
    "TURING",
    "CLUSTER_PLATFORM",
    "PLATFORMS",
    "get_platform",
    "list_platforms",
]


@dataclass(frozen=True)
class Platform:
    """One evaluation platform from Table I."""

    key: str
    description: str
    gpu: Optional[GPUSpec]
    cpu: CPUSpec
    os_name: str
    compiler: str
    #: Number of machines (1 for the GPU servers, 10 for the EC2 cluster).
    num_nodes: int = 1
    #: Inter-node network bandwidth for the cluster platform (GB/s).
    network_bandwidth_gb_s: float = 1.25
    #: Per-message network latency for the cluster platform (seconds).
    network_latency_s: float = 200e-6

    @property
    def has_gpu(self) -> bool:
        return self.gpu is not None

    def summary_row(self) -> Dict[str, str]:
        """Row used when printing the Table I reproduction."""
        return {
            "Platform": self.key,
            "GPU": self.gpu.name if self.gpu else "NULL",
            "GPU Memory": self.gpu.memory_type if self.gpu else "DDR3",
            "CPU": self.cpu.name,
            "OS": self.os_name,
            "Compiler": self.compiler,
            "Nodes": str(self.num_nodes),
        }


PASCAL = Platform(
    key="Pascal",
    description="GeForce GTX 1080 server",
    gpu=GTX_1080,
    cpu=I7_7700K,
    os_name="Ubuntu 16.04.4",
    compiler="CUDA 8",
)

VOLTA = Platform(
    key="Volta",
    description="Tesla V100 server",
    gpu=TESLA_V100,
    cpu=E5_2670,
    os_name="Ubuntu 16.04.4",
    compiler="CUDA 10.1",
)

TURING = Platform(
    key="Turing",
    description="GeForce RTX 2080 Ti server",
    gpu=RTX_2080_TI,
    cpu=I9_9900K,
    os_name="Ubuntu 18.04.5",
    compiler="CUDA 11.0",
)

CLUSTER_PLATFORM = Platform(
    key="10-node cluster",
    description="10-node Amazon EC2 Spark cluster",
    gpu=None,
    cpu=E5_2676_V3,
    os_name="Ubuntu 16.04.1",
    compiler="GCC 5.4.0",
    num_nodes=10,
)

PLATFORMS: Dict[str, Platform] = {
    platform.key: platform for platform in (PASCAL, VOLTA, TURING, CLUSTER_PLATFORM)
}


def list_platforms(gpu_only: bool = False) -> List[Platform]:
    """Return platforms in Table I order, optionally only the GPU ones."""
    platforms = [PASCAL, VOLTA, TURING, CLUSTER_PLATFORM]
    if gpu_only:
        platforms = [platform for platform in platforms if platform.has_gpu]
    return platforms


def get_platform(key: str) -> Platform:
    """Look up a platform by its Table I key (case-insensitive)."""
    for platform_key, platform in PLATFORMS.items():
        if platform_key.lower() == key.lower():
            return platform
    raise KeyError(f"unknown platform {key!r}; expected one of {list(PLATFORMS)}")
