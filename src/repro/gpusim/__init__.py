"""Functional SIMT GPU execution-model simulator.

This package stands in for the CUDA runtime and devices that the paper
uses.  Kernels are plain Python callables with the signature
``kernel(tid, ctx)``; :class:`GPUDevice.launch` executes them for every
thread id, grouping threads into 32-wide warps and recording the work
they perform:

* per-thread scalar operations (aggregated per warp as the *maximum*
  over the warp, modelling SIMT lock-step execution and divergence),
* global-memory traffic,
* atomic operations and address conflicts (conflicting atomics
  serialise),
* kernel launch counts.

The recorded :class:`~repro.perf.counters.KernelStats` are later priced
by :class:`~repro.perf.cost_model.GpuCostModel` for a concrete device
from Table I.  Functional results are exact — the simulator actually
executes the kernels — only the timing is modelled.

The package also provides the G-TADOC device-side data structures from
section IV-C of the paper: the self-managed memory pool and the
thread-safe hash table with lock / entry / key / value / next buffers
(Figure 5).
"""

from repro.gpusim.context import ThreadContext
from repro.gpusim.device import GPUDevice, KernelLaunch
from repro.gpusim.memory_pool import MemoryPool, PoolAllocation
from repro.gpusim.hashtable import DeviceHashTable

__all__ = [
    "ThreadContext",
    "GPUDevice",
    "KernelLaunch",
    "MemoryPool",
    "PoolAllocation",
    "DeviceHashTable",
]
