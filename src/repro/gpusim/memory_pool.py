"""G-TADOC's self-managed GPU memory pool (paper section IV-C).

Dynamic per-thread allocation is expensive on GPUs and the amount of
memory each rule needs is only known at runtime, so G-TADOC sizes every
rule's requirement during the initialization phase and then carves all
buffers out of one large pre-allocated pool.  This module reproduces
that design: a single backing store with bump-pointer allocation,
per-allocation bookkeeping, and explicit reset between runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["PoolAllocation", "MemoryPool"]


@dataclass(frozen=True)
class PoolAllocation:
    """A slice of the pool handed out to one owner (usually one rule)."""

    owner: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


class MemoryPool:
    """Bump-pointer allocator over a single backing array.

    Parameters
    ----------
    capacity:
        Pool capacity in 8-byte words.
    alignment:
        Allocation alignment in words (defaults to 4, i.e. 32 bytes,
        which keeps warp accesses coalesced).
    """

    WORD_BYTES = 8

    def __init__(self, capacity: int, alignment: int = 4) -> None:
        if capacity <= 0:
            raise ValueError("pool capacity must be positive")
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        self.capacity = int(capacity)
        self.alignment = int(alignment)
        self.storage = np.zeros(self.capacity, dtype=np.int64)
        self._cursor = 0
        self._allocations: List[PoolAllocation] = []
        self._by_owner: Dict[str, PoolAllocation] = {}

    # -- allocation --------------------------------------------------------------------
    def _aligned(self, value: int) -> int:
        remainder = value % self.alignment
        return value if remainder == 0 else value + (self.alignment - remainder)

    def allocate(self, owner: str, size: int) -> PoolAllocation:
        """Allocate ``size`` words for ``owner``; raises when exhausted."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        if owner in self._by_owner:
            raise ValueError(f"owner {owner!r} already holds an allocation")
        start = self._aligned(self._cursor)
        end = start + size
        if end > self.capacity:
            raise MemoryError(
                f"memory pool exhausted: need {end} words, capacity {self.capacity}"
            )
        allocation = PoolAllocation(owner=owner, offset=start, size=size)
        self._cursor = end
        self._allocations.append(allocation)
        self._by_owner[owner] = allocation
        return allocation

    def allocate_many(self, sizes: Dict[str, int]) -> Dict[str, PoolAllocation]:
        """Allocate several owners at once (initialization-phase bulk sizing)."""
        return {owner: self.allocate(owner, size) for owner, size in sizes.items()}

    def reserve(self, extra_words: int) -> None:
        """Grow the pool by ``extra_words`` without disturbing allocations.

        The pool is self-maintained: when a new per-query requirement is
        sized (e.g. head/tail buffers for a sequence length the pool was
        not originally provisioned for), the backing store is extended
        in one step — the pool equivalent of the initialization-phase
        bulk sizing, rather than per-thread dynamic allocation.

        Growing replaces the backing array (existing contents are
        copied), so any :meth:`view` handed out *before* the reserve is
        detached from the pool: writes through it no longer reach
        :attr:`storage`.  Re-request views after reserving.
        """
        if extra_words < 0:
            raise ValueError("reserve size must be non-negative")
        if extra_words == 0:
            return
        self.capacity += int(extra_words)
        self.storage = np.concatenate(
            [self.storage, np.zeros(int(extra_words), dtype=np.int64)]
        )

    # -- access --------------------------------------------------------------------------
    def view(self, allocation: PoolAllocation) -> np.ndarray:
        """A writable view of an allocation's words.

        Valid until the next :meth:`reserve` (which replaces the backing
        array); re-request the view after growing the pool.
        """
        return self.storage[allocation.offset : allocation.end]

    def owner_view(self, owner: str) -> np.ndarray:
        return self.view(self._by_owner[owner])

    def allocation_of(self, owner: str) -> Optional[PoolAllocation]:
        return self._by_owner.get(owner)

    # -- bookkeeping ----------------------------------------------------------------------
    @property
    def used_words(self) -> int:
        return self._cursor

    @property
    def free_words(self) -> int:
        return self.capacity - self._cursor

    @property
    def allocations(self) -> List[PoolAllocation]:
        return list(self._allocations)

    @property
    def used_bytes(self) -> int:
        return self._cursor * self.WORD_BYTES

    def reset(self) -> None:
        """Release every allocation and zero the backing store."""
        self.storage.fill(0)
        self._cursor = 0
        self._allocations.clear()
        self._by_owner.clear()

    def check_no_overlap(self) -> bool:
        """Verify that no two allocations overlap (tested invariant)."""
        ordered = sorted(self._allocations, key=lambda allocation: allocation.offset)
        for previous, current in zip(ordered, ordered[1:]):
            if previous.end > current.offset:
                return False
        return True
