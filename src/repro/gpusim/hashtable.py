"""Thread-safe GPU hash table (paper Figure 5).

The table is an open hash with separate chaining laid out in five flat
buffers, exactly as the paper draws it:

* ``locks``   — one lock per bucket (1 = locked, 0 = unlocked),
* ``entries`` — per-bucket head index into the node arrays (-1 = empty),
* ``keys`` / ``values`` — node payload,
* ``next``    — per-node chain link (-1 = end of chain).

Threads insert with :meth:`insert_add`; an existing key is updated with
an atomic add, a new key takes the bucket lock, re-checks for the key
(another thread may have inserted it while we waited), claims a node
slot and links it at the chain position.  The simulator executes
threads sequentially so correctness is structural, but every probe,
atomic and lock acquisition is charged to the calling thread's context
so the contention *cost* shows up in the modelled time.

Private (per-thread) tables can be created with ``use_locks=False``; as
the paper notes, a table owned by one thread does not need its lock
buffer.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.gpusim.context import ThreadContext

__all__ = ["DeviceHashTable"]

_EMPTY = -1


class DeviceHashTable:
    """Fixed-capacity chained hash table over flat device buffers."""

    def __init__(self, num_buckets: int, capacity: int, use_locks: bool = True) -> None:
        if num_buckets <= 0 or capacity <= 0:
            raise ValueError("num_buckets and capacity must be positive")
        self.num_buckets = int(num_buckets)
        self.capacity = int(capacity)
        self.use_locks = use_locks
        self.locks = np.zeros(self.num_buckets, dtype=np.int8)
        self.entries = np.full(self.num_buckets, _EMPTY, dtype=np.int64)
        self.keys = np.zeros(self.capacity, dtype=np.int64)
        self.values = np.zeros(self.capacity, dtype=np.int64)
        self.next = np.full(self.capacity, _EMPTY, dtype=np.int64)
        self._node_cursor = 0
        #: Number of times a thread found a bucket lock already taken.
        self.lock_contention_events = 0

    # -- hashing -------------------------------------------------------------------------
    def _bucket_of(self, key: int) -> int:
        # Knuth multiplicative hashing keeps buckets well spread for the
        # dense word ids TADOC produces.
        return int((key * 2654435761) % self.num_buckets)

    # -- device-side operations -------------------------------------------------------------
    def insert_add(self, key: int, value: int, ctx: Optional[ThreadContext] = None) -> None:
        """Add ``value`` to the entry for ``key``, inserting it if missing."""

        def charge(ops: float = 0.0, memory_bytes: float = 0.0) -> None:
            if ctx is not None:
                ctx.charge(ops=ops, memory_bytes=memory_bytes)

        bucket = self._bucket_of(key)
        charge(ops=2.0, memory_bytes=8.0)
        # First pass: look for the key without taking the lock.
        node = int(self.entries[bucket])
        while node != _EMPTY:
            charge(ops=2.0, memory_bytes=16.0)
            if int(self.keys[node]) == key:
                if ctx is not None:
                    ctx.atomic_add(self.values, node, value)
                else:
                    self.values[node] += value
                return
            node = int(self.next[node])
        # Key absent: take the bucket lock (charged as an atomic CAS).
        if self.use_locks:
            if ctx is not None:
                swapped, _old = ctx.atomic_cas(self.locks, bucket, 0, 1)
                if not swapped:
                    # Another thread holds the lock; on a real GPU the thread
                    # retries in the next round.  The simulator can proceed
                    # immediately but records the contention event.
                    self.lock_contention_events += 1
                self.locks[bucket] = 1
            else:
                self.locks[bucket] = 1
        try:
            # Re-check under the lock: the key may have appeared meanwhile.
            node = int(self.entries[bucket])
            last = _EMPTY
            while node != _EMPTY:
                charge(ops=2.0, memory_bytes=16.0)
                if int(self.keys[node]) == key:
                    if ctx is not None:
                        ctx.atomic_add(self.values, node, value)
                    else:
                        self.values[node] += value
                    return
                last = node
                node = int(self.next[node])
            # Claim a node slot and link it.
            if self._node_cursor >= self.capacity:
                raise MemoryError("DeviceHashTable capacity exhausted")
            slot = self._node_cursor
            self._node_cursor += 1
            self.keys[slot] = key
            self.values[slot] = value
            self.next[slot] = _EMPTY
            charge(ops=4.0, memory_bytes=32.0)
            if last == _EMPTY:
                self.entries[bucket] = slot
            else:
                self.next[last] = slot
        finally:
            if self.use_locks:
                self.locks[bucket] = 0
                charge(ops=1.0, memory_bytes=1.0)

    def lookup(self, key: int, ctx: Optional[ThreadContext] = None) -> Optional[int]:
        """Return the value stored for ``key`` or ``None``."""
        bucket = self._bucket_of(key)
        node = int(self.entries[bucket])
        while node != _EMPTY:
            if ctx is not None:
                ctx.charge(ops=2.0, memory_bytes=16.0)
            if int(self.keys[node]) == key:
                return int(self.values[node])
            node = int(self.next[node])
        return None

    # -- host-side extraction ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._node_cursor

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all stored ``(key, value)`` pairs."""
        for slot in range(self._node_cursor):
            yield int(self.keys[slot]), int(self.values[slot])

    def to_dict(self) -> Dict[int, int]:
        return dict(self.items())

    @classmethod
    def sized_for(cls, expected_keys: int, use_locks: bool = True) -> "DeviceHashTable":
        """Create a table with comfortable headroom for ``expected_keys``."""
        expected = max(1, int(expected_keys))
        return cls(
            num_buckets=max(8, expected * 2),
            capacity=max(8, int(expected * 1.5) + 8),
            use_locks=use_locks,
        )
