"""Per-thread execution context for simulated GPU kernels.

A kernel receives one :class:`ThreadContext` per thread id.  The
context is how kernels report the work they perform; it also funnels
atomic operations through the launch-level conflict tracker so that
contended addresses are charged as serialised work, mirroring how
global atomics behave on real GPUs.
"""

from __future__ import annotations

from typing import Dict, Hashable, MutableSequence, Tuple

__all__ = ["ThreadContext"]


class ThreadContext:
    """Work accounting handle passed to every simulated GPU thread."""

    __slots__ = (
        "tid",
        "ops",
        "memory_bytes",
        "shared_bytes",
        "atomic_ops",
        "_conflict_tracker",
    )

    def __init__(self, tid: int, conflict_tracker: Dict[Hashable, int]) -> None:
        self.tid = tid
        self.ops = 0.0
        self.memory_bytes = 0.0
        self.shared_bytes = 0.0
        self.atomic_ops = 0.0
        self._conflict_tracker = conflict_tracker

    # -- plain work ------------------------------------------------------------------
    def charge(self, ops: float = 0.0, memory_bytes: float = 0.0, shared_bytes: float = 0.0) -> None:
        """Record scalar operations and memory traffic performed by this thread."""
        self.ops += ops
        self.memory_bytes += memory_bytes
        self.shared_bytes += shared_bytes

    # -- atomics ----------------------------------------------------------------------
    def _record_atomic(self, address: Hashable) -> None:
        self.atomic_ops += 1.0
        self.ops += 1.0
        self.memory_bytes += 8.0
        self._conflict_tracker[address] = self._conflict_tracker.get(address, 0) + 1

    def atomic_add(self, array: MutableSequence, index: int, value, space: str = "global"):
        """``atomicAdd(&array[index], value)`` — returns the old value."""
        old = array[index]
        array[index] = old + value
        self._record_atomic((space, id(array), index))
        return old

    def atomic_max(self, array: MutableSequence, index: int, value) -> None:
        """``atomicMax(&array[index], value)``."""
        if value > array[index]:
            array[index] = value
        self._record_atomic(("global", id(array), index))

    def atomic_cas(self, array: MutableSequence, index: int, expected, desired) -> Tuple[bool, object]:
        """``atomicCAS``: returns ``(swapped, old value)``."""
        old = array[index]
        swapped = old == expected
        if swapped:
            array[index] = desired
        self._record_atomic(("global", id(array), index))
        return swapped, old
