"""Simulated GPU device: kernel launch, warp grouping, work recording.

The device executes kernels functionally (every thread really runs, so
results are exact) and records their work as
:class:`~repro.perf.counters.KernelStats`.  The SIMT execution model is
captured by aggregating per-thread operation counts into per-warp
maxima: a warp is only as fast as its slowest thread, which is exactly
the workload-imbalance effect the paper's fine-grained scheduler is
designed to mitigate (section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from repro.gpusim.context import ThreadContext
from repro.perf.counters import GpuRunRecord, KernelStats
from repro.perf.specs import GPUSpec

__all__ = ["GPUDevice", "KernelLaunch"]

KernelFunction = Callable[[int, ThreadContext], None]


@dataclass
class KernelLaunch:
    """Outcome of one simulated kernel launch."""

    stats: KernelStats

    @property
    def name(self) -> str:
        return self.stats.name


class GPUDevice:
    """A simulated CUDA device.

    Parameters
    ----------
    spec:
        Hardware spec used only for the warp size here; pricing happens
        later in :class:`~repro.perf.cost_model.GpuCostModel`, so one
        functional run can be priced under several device models.
    record:
        Optional :class:`GpuRunRecord` that every launch appends to; the
        engine swaps records between phases.
    """

    def __init__(self, spec: Optional[GPUSpec] = None, record: Optional[GpuRunRecord] = None) -> None:
        self.spec = spec
        self.warp_size = spec.warp_size if spec is not None else 32
        self.record = record if record is not None else GpuRunRecord()
        self.launch_history: list = []

    # -- record management -----------------------------------------------------------
    def set_record(self, record: GpuRunRecord) -> None:
        """Redirect subsequent launches into ``record`` (phase switching)."""
        self.record = record

    # -- kernel launch ------------------------------------------------------------------
    def launch(
        self,
        name: str,
        kernel: KernelFunction,
        num_threads: int,
        memory_bytes_per_thread: float = 0.0,
    ) -> KernelLaunch:
        """Execute ``kernel`` for thread ids ``0 .. num_threads-1``.

        ``memory_bytes_per_thread`` charges a flat per-thread global
        memory cost (parameter loads) in addition to whatever the kernel
        itself charges through its context.
        """
        if num_threads <= 0:
            raise ValueError("a kernel launch needs at least one thread")
        conflict_tracker: Dict[Hashable, int] = {}
        warp_serial_ops = 0.0
        total_thread_ops = 0.0
        memory_bytes = 0.0
        shared_bytes = 0.0
        atomic_ops = 0.0
        warp_max = 0.0
        for tid in range(num_threads):
            ctx = ThreadContext(tid, conflict_tracker)
            if memory_bytes_per_thread:
                ctx.charge(memory_bytes=memory_bytes_per_thread)
            kernel(tid, ctx)
            total_thread_ops += ctx.ops
            memory_bytes += ctx.memory_bytes
            shared_bytes += ctx.shared_bytes
            atomic_ops += ctx.atomic_ops
            if ctx.ops > warp_max:
                warp_max = ctx.ops
            if (tid + 1) % self.warp_size == 0:
                warp_serial_ops += warp_max
                warp_max = 0.0
        if num_threads % self.warp_size != 0:
            warp_serial_ops += warp_max
        num_warps = (num_threads + self.warp_size - 1) // self.warp_size
        atomic_conflicts = float(
            sum(count - 1 for count in conflict_tracker.values() if count > 1)
        )
        stats = KernelStats(
            name=name,
            num_threads=num_threads,
            num_warps=num_warps,
            warp_serial_ops=warp_serial_ops,
            total_thread_ops=total_thread_ops,
            memory_bytes=memory_bytes,
            shared_memory_bytes=shared_bytes,
            atomic_ops=atomic_ops,
            atomic_conflicts=atomic_conflicts,
        )
        self.record.add_kernel(stats)
        launch = KernelLaunch(stats=stats)
        self.launch_history.append(launch)
        return launch

    # -- host <-> device transfers ----------------------------------------------------------
    def transfer_to_device(self, num_bytes: float) -> None:
        """Charge a host-to-device (PCIe) transfer to the current record."""
        self.record.pcie_bytes += float(num_bytes)

    def transfer_to_host(self, num_bytes: float) -> None:
        """Charge a device-to-host (PCIe) transfer to the current record."""
        self.record.pcie_bytes += float(num_bytes)
