"""Simulated GPU device: kernel launch, warp grouping, work recording.

The device executes kernels functionally (every thread really runs, so
results are exact) and records their work as
:class:`~repro.perf.counters.KernelStats`.  The SIMT execution model is
captured by aggregating per-thread operation counts into per-warp
maxima: a warp is only as fast as its slowest thread, which is exactly
the workload-imbalance effect the paper's fine-grained scheduler is
designed to mitigate (section IV-B).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

import numpy as np

from repro.gpusim.context import ThreadContext
from repro.perf.counters import GpuRunRecord, KernelStats
from repro.perf.specs import GPUSpec

__all__ = ["GPUDevice", "KernelLaunch", "DEFAULT_HISTORY_LIMIT"]

KernelFunction = Callable[[int, ThreadContext], None]

#: Default bound on :attr:`GPUDevice.launch_history`.  A long-lived serving
#: session launches kernels indefinitely; the history is a diagnostic ring
#: buffer, not an accounting structure (that is :class:`GpuRunRecord`), so
#: only the most recent launches are kept.  Pass ``history_limit=None`` for
#: an unbounded history.
DEFAULT_HISTORY_LIMIT = 256


@dataclass
class KernelLaunch:
    """Outcome of one simulated kernel launch."""

    stats: KernelStats

    @property
    def name(self) -> str:
        return self.stats.name


class GPUDevice:
    """A simulated CUDA device.

    Parameters
    ----------
    spec:
        Hardware spec used only for the warp size here; pricing happens
        later in :class:`~repro.perf.cost_model.GpuCostModel`, so one
        functional run can be priced under several device models.
    record:
        Optional :class:`GpuRunRecord` that every launch appends to; the
        engine swaps records between phases.
    kernel_mode:
        ``"scalar"`` runs kernels thread by thread through
        :meth:`launch`; ``"vector"`` tells kernel implementations to use
        :meth:`launch_bulk` with numpy per-thread work vectors instead.
        Both modes produce bit-identical results and :class:`KernelStats`.
    history_limit:
        Bound on :attr:`launch_history` (``None`` = unbounded).
    """

    def __init__(
        self,
        spec: Optional[GPUSpec] = None,
        record: Optional[GpuRunRecord] = None,
        kernel_mode: str = "scalar",
        history_limit: Optional[int] = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        if kernel_mode not in ("scalar", "vector"):
            raise ValueError(f"unknown kernel_mode: {kernel_mode!r}")
        self.spec = spec
        self.warp_size = spec.warp_size if spec is not None else 32
        self.record = record if record is not None else GpuRunRecord()
        self.kernel_mode = kernel_mode
        self.launch_history: "deque[KernelLaunch]" = deque(maxlen=history_limit)

    # -- record management -----------------------------------------------------------
    def set_record(self, record: GpuRunRecord) -> None:
        """Redirect subsequent launches into ``record`` (phase switching)."""
        self.record = record

    # -- kernel launch ------------------------------------------------------------------
    def launch(
        self,
        name: str,
        kernel: KernelFunction,
        num_threads: int,
        memory_bytes_per_thread: float = 0.0,
    ) -> KernelLaunch:
        """Execute ``kernel`` for thread ids ``0 .. num_threads-1``.

        ``memory_bytes_per_thread`` charges a flat per-thread global
        memory cost (parameter loads) in addition to whatever the kernel
        itself charges through its context.
        """
        if num_threads <= 0:
            raise ValueError("a kernel launch needs at least one thread")
        conflict_tracker: Dict[Hashable, int] = {}
        warp_serial_ops = 0.0
        total_thread_ops = 0.0
        memory_bytes = 0.0
        shared_bytes = 0.0
        atomic_ops = 0.0
        warp_max = 0.0
        for tid in range(num_threads):
            ctx = ThreadContext(tid, conflict_tracker)
            if memory_bytes_per_thread:
                ctx.charge(memory_bytes=memory_bytes_per_thread)
            kernel(tid, ctx)
            total_thread_ops += ctx.ops
            memory_bytes += ctx.memory_bytes
            shared_bytes += ctx.shared_bytes
            atomic_ops += ctx.atomic_ops
            if ctx.ops > warp_max:
                warp_max = ctx.ops
            if (tid + 1) % self.warp_size == 0:
                warp_serial_ops += warp_max
                warp_max = 0.0
        if num_threads % self.warp_size != 0:
            warp_serial_ops += warp_max
        num_warps = (num_threads + self.warp_size - 1) // self.warp_size
        atomic_conflicts = float(
            sum(count - 1 for count in conflict_tracker.values() if count > 1)
        )
        stats = KernelStats(
            name=name,
            num_threads=num_threads,
            num_warps=num_warps,
            warp_serial_ops=warp_serial_ops,
            total_thread_ops=total_thread_ops,
            memory_bytes=memory_bytes,
            shared_memory_bytes=shared_bytes,
            atomic_ops=atomic_ops,
            atomic_conflicts=atomic_conflicts,
        )
        self.record.add_kernel(stats)
        launch = KernelLaunch(stats=stats)
        self.launch_history.append(launch)
        return launch

    def launch_bulk(
        self,
        name: str,
        num_threads: int,
        thread_ops: Optional[np.ndarray] = None,
        thread_memory_bytes: Optional[np.ndarray] = None,
        thread_shared_bytes: Optional[np.ndarray] = None,
        thread_atomic_ops: Optional[np.ndarray] = None,
        atomic_conflicts: float = 0.0,
        memory_bytes_per_thread: float = 0.0,
    ) -> KernelLaunch:
        """Record a kernel launch from per-thread work vectors (bulk kernels).

        The vectorized kernel implementations compute their results with
        numpy array operations and report per-thread work as float64
        vectors of length ``num_threads``.  This method aggregates them
        into the exact :class:`KernelStats` the scalar :meth:`launch`
        loop would produce: per-warp serial ops are the per-warp maxima
        of ``thread_ops`` (pad to a warp multiple, reshape into warp
        blocks, max, sum), totals are plain sums.  All charged quantities
        are integer-valued floats, so numpy summation is exact and
        order-independent — the stats match the scalar path bit for bit.
        """
        if num_threads <= 0:
            raise ValueError("a kernel launch needs at least one thread")
        ops = self._as_thread_vector(thread_ops, num_threads)
        memory = self._as_thread_vector(thread_memory_bytes, num_threads)
        shared = self._as_thread_vector(thread_shared_bytes, num_threads)
        atomics = self._as_thread_vector(thread_atomic_ops, num_threads)
        pad = (-num_threads) % self.warp_size
        if pad:
            padded = np.concatenate([ops, np.zeros(pad, dtype=np.float64)])
        else:
            padded = ops
        warp_serial_ops = float(padded.reshape(-1, self.warp_size).max(axis=1).sum())
        memory_total = float(memory.sum())
        if memory_bytes_per_thread:
            memory_total += float(memory_bytes_per_thread) * num_threads
        stats = KernelStats(
            name=name,
            num_threads=num_threads,
            num_warps=(num_threads + self.warp_size - 1) // self.warp_size,
            warp_serial_ops=warp_serial_ops,
            total_thread_ops=float(ops.sum()),
            memory_bytes=memory_total,
            shared_memory_bytes=float(shared.sum()),
            atomic_ops=float(atomics.sum()),
            atomic_conflicts=float(atomic_conflicts),
        )
        self.record.add_kernel(stats)
        launch = KernelLaunch(stats=stats)
        self.launch_history.append(launch)
        return launch

    def launch_modelled(
        self,
        name: str,
        num_threads: int,
        *,
        warp_serial_ops: float,
        total_thread_ops: float,
        memory_bytes: float = 0.0,
        shared_memory_bytes: float = 0.0,
        atomic_ops: float = 0.0,
        atomic_conflicts: float = 0.0,
    ) -> KernelLaunch:
        """Record an analytically-modelled kernel launch.

        Baselines that price work from closed-form volume models (the
        uncompressed GPU comparator derives ops from token counts rather
        than executing per-thread kernels) still must go through the
        device so the launch lands in :attr:`record` and
        :attr:`launch_history` like every simulated kernel.  The caller
        supplies the aggregate counters directly; the device only derives
        the warp count and does the recording.
        """
        if num_threads <= 0:
            raise ValueError("a kernel launch needs at least one thread")
        stats = KernelStats(
            name=name,
            num_threads=num_threads,
            num_warps=(num_threads + self.warp_size - 1) // self.warp_size,
            warp_serial_ops=float(warp_serial_ops),
            total_thread_ops=float(total_thread_ops),
            memory_bytes=float(memory_bytes),
            shared_memory_bytes=float(shared_memory_bytes),
            atomic_ops=float(atomic_ops),
            atomic_conflicts=float(atomic_conflicts),
        )
        self.record.add_kernel(stats)
        launch = KernelLaunch(stats=stats)
        self.launch_history.append(launch)
        return launch

    @staticmethod
    def _as_thread_vector(vector: Optional[np.ndarray], num_threads: int) -> np.ndarray:
        if vector is None:
            return np.zeros(num_threads, dtype=np.float64)
        out = np.asarray(vector, dtype=np.float64)
        if out.shape != (num_threads,):
            raise ValueError(
                f"per-thread vector has shape {out.shape}, expected ({num_threads},)"
            )
        return out

    # -- host <-> device transfers ----------------------------------------------------------
    def transfer_to_device(self, num_bytes: float) -> None:
        """Charge a host-to-device (PCIe) transfer to the current record."""
        self.record.pcie_bytes += float(num_bytes)

    def transfer_to_host(self, num_bytes: float) -> None:
        """Charge a device-to-host (PCIe) transfer to the current record."""
        self.record.pcie_bytes += float(num_bytes)
