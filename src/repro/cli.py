"""Command-line interface.

Four sub-commands cover the CompressDirect-style workflow:

``gtadoc compress``
    Compress a directory of text files (or a generated dataset
    analogue) into the TADOC format.
``gtadoc run``
    Run one or more of the six analytics tasks on a compressed corpus
    with the G-TADOC engine and print the top results.  Passing several
    tasks (or ``--task all``) runs them as one batch that charges the
    initialization phase once.
``gtadoc info``
    Print Table II style statistics of a compressed corpus.
``gtadoc bench``
    Run the Figure 9 speedup grid for selected datasets/platforms and
    print the resulting table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analytics.base import Task
from repro.bench.experiment import ExperimentConfig, ExperimentRunner
from repro.bench.tables import format_table
from repro.compression.serializer import load_compressed, save_compressed
from repro.compression.compressor import compress_corpus
from repro.core.engine import GTadoc, GTadocConfig
from repro.data.generators import generate_dataset, list_datasets
from repro.data.loaders import load_corpus_dir
from repro.perf.platforms import get_platform, list_platforms

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gtadoc",
        description="G-TADOC: GPU-based text analytics directly on compressed data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compress = subparsers.add_parser("compress", help="compress text files into TADOC form")
    source = compress.add_mutually_exclusive_group(required=True)
    source.add_argument("--input-dir", help="directory of .txt files to compress")
    source.add_argument(
        "--dataset", choices=list_datasets(), help="generate and compress a dataset analogue"
    )
    compress.add_argument("--scale", type=float, default=0.25, help="dataset analogue scale")
    compress.add_argument("--output", required=True, help="output .json path")

    run = subparsers.add_parser("run", help="run analytics task(s) on compressed data")
    run.add_argument("--compressed", required=True, help="path written by 'gtadoc compress'")
    run.add_argument(
        "--task",
        required=True,
        help=(
            "task name, a comma-separated list, or 'all'; multiple tasks run "
            "as one batch that pays initialization once "
            f"(tasks: {', '.join(task.value for task in Task)})"
        ),
    )
    run.add_argument("--traversal", choices=["top_down", "bottom_up"], default=None)
    run.add_argument("--top", type=int, default=10, help="number of result entries to print")

    info = subparsers.add_parser("info", help="print statistics of a compressed corpus")
    info.add_argument("--compressed", required=True)

    bench = subparsers.add_parser("bench", help="print the Figure 9 speedup grid")
    bench.add_argument("--datasets", default="A,B,D", help="comma-separated dataset keys")
    bench.add_argument("--platform", default="Pascal", help="Table I platform key")
    bench.add_argument("--scale", type=float, default=0.15, help="dataset analogue scale")

    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    if args.input_dir:
        corpus = load_corpus_dir(args.input_dir)
    else:
        corpus = generate_dataset(args.dataset, scale=args.scale)
    compressed = compress_corpus(corpus)
    path = save_compressed(compressed, args.output)
    stats = compressed.statistics()
    print(f"compressed {stats.num_files} files / {stats.original_tokens} tokens")
    print(f"rules: {stats.num_rules}   vocabulary: {stats.vocabulary_size}")
    print(f"compression ratio (tokens/symbols): {stats.compression_ratio:.2f}")
    print(f"written to {path}")
    return 0


def _format_result_preview(task: Task, result, top: int) -> List[str]:
    lines: List[str] = []
    if task is Task.SORT:
        for word, count in result[:top]:
            lines.append(f"{word}\t{count}")
    elif task is Task.SEQUENCE_COUNT:
        ordered = sorted(result.items(), key=lambda item: (-item[1], item[0]))[:top]
        for key, count in ordered:
            lines.append(f"{' '.join(key)}\t{count}")
    elif task is Task.WORD_COUNT:
        ordered = sorted(result.items(), key=lambda item: (-item[1], item[0]))[:top]
        for word, count in ordered:
            lines.append(f"{word}\t{count}")
    else:
        for key in list(result)[:top]:
            lines.append(f"{key}\t{result[key]}")
    return lines


def _parse_tasks(raw: str) -> List[Task]:
    """Parse ``--task``: one name, a comma-separated list, or ``all``.

    Duplicates collapse to one entry (keeping first-seen order), so a
    repeated single task still takes the single-run path.
    """
    names = [name.strip() for name in raw.split(",") if name.strip()]
    if not names:
        raise ValueError("no task given")
    wants_all = False
    tasks: List[Task] = []
    for name in names:
        if name.lower() == "all":
            wants_all = True
        else:
            tasks.append(Task.from_name(name))
    if wants_all:
        return Task.all()
    return list(dict.fromkeys(tasks))


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        tasks = _parse_tasks(args.task)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    compressed = load_compressed(args.compressed)
    traversal = None
    if args.traversal:
        from repro.core.strategy import TraversalStrategy

        traversal = TraversalStrategy(args.traversal)
    engine = GTadoc(compressed, config=GTadocConfig())

    if len(tasks) == 1:
        task = tasks[0]
        outcome = engine.run(task, traversal=traversal)
        print(f"task: {task.value}   traversal: {outcome.strategy.value}")
        print(f"kernel launches: {outcome.total_kernel_launches}")
        print(f"memory pool: {outcome.memory_pool_bytes} bytes")
        print("top results:")
        for line in _format_result_preview(task, outcome.result, args.top):
            print(f"  {line}")
        return 0

    batch = engine.run_batch(tasks, traversal=traversal)
    print(f"batch: {len(batch)} tasks, initialization charged once")
    print(
        f"shared kernel launches: {batch.shared_kernel_launches} "
        f"(init {batch.init_record.num_launches}, "
        f"shared state {batch.shared_record.num_launches})"
    )
    print(f"total kernel launches: {batch.total_kernel_launches}")
    print(f"memory pool: {batch.memory_pool_bytes} bytes")
    for task, outcome in batch.items():
        print(
            f"\ntask: {task.value}   traversal: {outcome.strategy.value}   "
            f"marginal launches: {outcome.total_kernel_launches}"
        )
        print("top results:")
        for line in _format_result_preview(task, outcome.result, args.top):
            print(f"  {line}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    compressed = load_compressed(args.compressed)
    stats = compressed.statistics()
    rows = [
        ("files", stats.num_files),
        ("original tokens", stats.original_tokens),
        ("original bytes", stats.original_size_bytes),
        ("rules", stats.num_rules),
        ("vocabulary", stats.vocabulary_size),
        ("compressed symbols", stats.compressed_symbols),
        ("compression ratio", f"{stats.compression_ratio:.2f}"),
        ("DAG depth", stats.dag.depth),
        ("DAG edges", stats.dag.num_edges),
    ]
    print(format_table(["statistic", "value"], rows, title=f"Compressed corpus: {compressed.name}"))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    platform = get_platform(args.platform)
    if not platform.has_gpu:
        print("the bench command needs a GPU platform (Pascal, Volta or Turing)", file=sys.stderr)
        return 2
    datasets = [key.strip().upper() for key in args.datasets.split(",") if key.strip()]
    runner = ExperimentRunner(ExperimentConfig(dataset_scale=args.scale))
    rows = runner.speedup_grid(datasets=datasets, platforms=[platform])
    table_rows = [
        (
            row.dataset,
            row.task,
            f"{row.gtadoc.total * 1000:.2f} ms",
            f"{row.tadoc.total * 1000:.2f} ms",
            f"{row.speedup_total:.1f}x",
        )
        for row in rows
    ]
    print(
        format_table(
            ["dataset", "task", "G-TADOC", "TADOC baseline", "speedup"],
            table_rows,
            title=f"Figure 9 style speedups on {platform.key}",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``gtadoc`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compress": _cmd_compress,
        "run": _cmd_run,
        "info": _cmd_info,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
