"""Command-line interface.

Four sub-commands cover the CompressDirect-style workflow:

``gtadoc compress``
    Compress a directory of text files (or a generated dataset
    analogue) into the TADOC format.
``gtadoc run``
    Run one or more of the six analytics tasks on a compressed corpus
    and print the top results.  Queries go through the unified query
    API (:mod:`repro.api`): ``--backend`` picks any registered engine
    (default: the G-TADOC engine) and ``--sequence-length`` sets the
    per-query window for sequence count.  Passing several tasks (or
    ``--task all``) runs them as one batch; backends that amortize
    charge the initialization phase once.
``gtadoc relational``
    Run one SELECT-style relational query (filter / group-by /
    aggregate over per-file rows) directly on a compressed corpus,
    through any registered backend.
``gtadoc info``
    Print Table II style statistics of a compressed corpus.
``gtadoc bench``
    Run the Figure 9 speedup grid for selected datasets/platforms and
    print the resulting table.
``gtadoc serve-bench``
    Replay a synthetic mixed-query request trace through the serving
    layer (:mod:`repro.serve`) — thread-based by default, or through
    the asyncio front end with ``--async`` — and report kernel launches
    per query, result-cache hit rate and coalescing statistics against
    serial per-query execution.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from repro.analytics.base import Task
from repro.api import Query, RunOutcome, available_backends, open_backend
from repro.bench.experiment import ExperimentConfig, ExperimentRunner
from repro.bench.tables import format_table
from repro.compression.serializer import load_compressed, save_compressed
from repro.compression.compressor import compress_corpus
from repro.data.generators import generate_dataset, list_datasets
from repro.data.loaders import load_corpus_dir
from repro.perf.platforms import get_platform

__all__ = ["main", "build_parser"]


def _nonnegative_ms(text: str) -> float:
    """argparse type: a finite millisecond value that must not be negative."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}") from None
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(f"must be finite and non-negative (got {value})")
    return value


def _positive_int(text: str) -> int:
    """argparse type: an integer that must be >= 1 (rejected at parse time)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer (got {value})")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gtadoc",
        description="G-TADOC: GPU-based text analytics directly on compressed data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compress = subparsers.add_parser("compress", help="compress text files into TADOC form")
    source = compress.add_mutually_exclusive_group(required=True)
    source.add_argument("--input-dir", help="directory of .txt files to compress")
    source.add_argument(
        "--dataset", choices=list_datasets(), help="generate and compress a dataset analogue"
    )
    compress.add_argument("--scale", type=float, default=0.25, help="dataset analogue scale")
    compress.add_argument("--output", required=True, help="output .json path")

    run = subparsers.add_parser("run", help="run analytics task(s) on compressed data")
    run.add_argument("--compressed", required=True, help="path written by 'gtadoc compress'")
    run.add_argument(
        "--task",
        required=True,
        help=(
            "task name, a comma-separated list, or 'all'; multiple tasks run "
            "as one batch that pays initialization once "
            f"(tasks: {', '.join(task.value for task in Task)})"
        ),
    )
    run.add_argument("--traversal", choices=["top_down", "bottom_up"], default=None)
    run.add_argument("--top", type=int, default=10, help="number of result entries to print")
    run.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="gtadoc",
        help="analytics engine to serve the query (default: gtadoc)",
    )
    run.add_argument(
        "--sequence-length",
        type=int,
        default=None,
        help="per-query word-window length for sequence count",
    )

    relational = subparsers.add_parser(
        "relational",
        help="run a SELECT-style filter/group-by/aggregate query on compressed data",
    )
    relational.add_argument(
        "--compressed", required=True, help="path written by 'gtadoc compress'"
    )
    relational.add_argument(
        "--delimiter",
        default=None,
        help="delimiter token for column-addressed schemas (omit for keyed schemas)",
    )
    relational.add_argument(
        "--field",
        action="append",
        required=True,
        metavar="NAME:TYPE:LOCATOR",
        help=(
            "schema field as name:type:locator — the locator is a column index "
            "with --delimiter, else the key token whose follower is the value "
            "(types: str, int, float); repeatable"
        ),
    )
    relational.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="FIELD:OP:VALUE",
        help="ANDed predicate term (ops: eq, ne, lt, le, gt, ge); repeatable",
    )
    relational.add_argument("--group-by", default=None, help="field to group rows by")
    relational.add_argument(
        "--agg",
        action="append",
        default=[],
        metavar="OP[:FIELD]",
        help="aggregate column, e.g. count or avg:age (default: count); repeatable",
    )
    relational.add_argument(
        "--order-by", default=None, help="aggregate label to order groups by (descending)"
    )
    relational.add_argument(
        "--top-k", type=_positive_int, default=None, help="keep only the first k groups"
    )
    relational.add_argument(
        "--files", default=None, help="comma-separated file names to restrict the query to"
    )
    relational.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="gtadoc",
        help="analytics engine to serve the query (default: gtadoc)",
    )

    info = subparsers.add_parser("info", help="print statistics of a compressed corpus")
    info.add_argument("--compressed", required=True)

    lint = subparsers.add_parser(
        "lint", help="run the repo-specific static analysis rules (repro.analysis)"
    )
    lint.add_argument(
        "--root",
        default=None,
        help="source root to scan (directory containing the 'repro' package); "
        "defaults to the installed package's own source tree",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable); default is every registered rule",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )

    bench = subparsers.add_parser("bench", help="print the Figure 9 speedup grid")
    bench.add_argument("--datasets", default="A,B,D", help="comma-separated dataset keys")
    bench.add_argument("--platform", default="Pascal", help="Table I platform key")
    bench.add_argument("--scale", type=float, default=0.15, help="dataset analogue scale")

    serve = subparsers.add_parser(
        "serve-bench", help="replay a synthetic request trace through the serving layer"
    )
    serve_source = serve.add_mutually_exclusive_group(required=True)
    serve_source.add_argument("--compressed", help="path written by 'gtadoc compress'")
    serve_source.add_argument(
        "--dataset", choices=list_datasets(), help="generate and compress a dataset analogue"
    )
    serve.add_argument("--scale", type=float, default=0.1, help="dataset analogue scale")
    serve.add_argument("--requests", type=int, default=64, help="trace length")
    serve.add_argument("--threads", type=int, default=8, help="concurrent worker threads")
    serve.add_argument("--seed", type=int, default=17, help="trace randomness seed")
    serve.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="replay through the asyncio front end (event-driven coalescing windows)",
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=32,
        help="max in-flight requests for --async replays",
    )
    serve.add_argument(
        "--coalesce-window-ms",
        type=_nonnegative_ms,
        default=2.0,
        help="how long a micro-batch leader waits for compatible queries",
    )
    serve.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help=(
            "replay through a fingerprint-routed shard pool of this many shards "
            "(combine with --async to drive it from one event loop)"
        ),
    )
    serve.add_argument(
        "--replicas",
        type=_positive_int,
        default=2,
        help="shards a hot corpus fans out across in a --shards replay",
    )
    serve.add_argument(
        "--processes",
        action="store_true",
        help=(
            "run each shard's serving core in its own worker process "
            "(crash-isolated, corpora shipped over a framed pipe; "
            "requires --shards)"
        ),
    )
    serve.add_argument(
        "--max-sessions", type=int, default=4, help="bound on resident device sessions"
    )
    serve.add_argument(
        "--no-serial-baseline",
        action="store_true",
        help="skip the serial per-query comparison replay (faster)",
    )
    serve.add_argument(
        "--relational-fraction",
        type=float,
        default=0.0,
        help="fraction of fresh trace requests that are relational queries",
    )

    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    if args.input_dir:
        corpus = load_corpus_dir(args.input_dir)
    else:
        corpus = generate_dataset(args.dataset, scale=args.scale)
    compressed = compress_corpus(corpus)
    path = save_compressed(compressed, args.output)
    stats = compressed.statistics()
    print(f"compressed {stats.num_files} files / {stats.original_tokens} tokens")
    print(f"rules: {stats.num_rules}   vocabulary: {stats.vocabulary_size}")
    print(f"compression ratio (tokens/symbols): {stats.compression_ratio:.2f}")
    print(f"written to {path}")
    return 0


def _format_result_preview(task: Task, result, top: int) -> List[str]:
    lines: List[str] = []
    if task is Task.SORT:
        for word, count in result[:top]:
            lines.append(f"{word}\t{count}")
    elif task is Task.SEQUENCE_COUNT:
        ordered = sorted(result.items(), key=lambda item: (-item[1], item[0]))[:top]
        for key, count in ordered:
            lines.append(f"{' '.join(key)}\t{count}")
    elif task is Task.WORD_COUNT:
        ordered = sorted(result.items(), key=lambda item: (-item[1], item[0]))[:top]
        for word, count in ordered:
            lines.append(f"{word}\t{count}")
    else:
        for key in list(result)[:top]:
            lines.append(f"{key}\t{result[key]}")
    return lines


def _parse_tasks(raw: str) -> List[Task]:
    """Parse ``--task``: one name, a comma-separated list, or ``all``.

    Duplicates collapse to one entry (keeping first-seen order), so a
    repeated single task still takes the single-run path.
    """
    names = [name.strip() for name in raw.split(",") if name.strip()]
    if not names:
        raise ValueError("no task given")
    wants_all = False
    tasks: List[Task] = []
    for name in names:
        if name.lower() == "all":
            wants_all = True
        else:
            task = Task.from_name(name)
            if task is Task.RELATIONAL:
                raise ValueError(
                    "relational queries need a schema; use the 'gtadoc relational' subcommand"
                )
            tasks.append(task)
    if wants_all:
        return Task.all()
    return list(dict.fromkeys(tasks))


def _describe_engine(outcome: RunOutcome) -> str:
    strategy = outcome.details.get("strategy")
    if strategy:
        return f"task: {outcome.task.value}   traversal: {strategy}"
    return f"task: {outcome.task.value}   backend: {outcome.backend}"


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        tasks = _parse_tasks(args.task)
        if args.top <= 0:
            raise ValueError(f"--top must be a positive integer (got {args.top})")
        if args.sequence_length is not None and args.sequence_length < 1:
            raise ValueError(
                f"--sequence-length must be a positive integer (got {args.sequence_length})"
            )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    compressed = load_compressed(args.compressed)
    backend = open_backend(args.backend, compressed)
    if args.traversal and not backend.capabilities().supports_traversal_choice:
        print(
            f"error: backend {args.backend!r} does not support --traversal",
            file=sys.stderr,
        )
        return 2
    queries = [
        Query(task=task, sequence_length=args.sequence_length, traversal=args.traversal)
        for task in tasks
    ]

    if len(queries) == 1:
        outcome = backend.run(queries[0])
        print(_describe_engine(outcome))
        print(f"kernel launches: {outcome.kernel_launches}")
        print(f"modelled ops: {outcome.ops:.0f}")
        if "memory_pool_bytes" in outcome.details:
            print(f"memory pool: {outcome.details['memory_pool_bytes']} bytes")
        print("top results:")
        for line in _format_result_preview(outcome.task, outcome.result, args.top):
            print(f"  {line}")
        return 0

    outcomes = backend.run_batch(queries)
    shared_launches = sum(outcome.perf.initialization.kernel_launches for outcome in outcomes)
    total_launches = sum(outcome.kernel_launches for outcome in outcomes)
    if backend.capabilities().amortizes_batches:
        print(f"batch: {len(outcomes)} tasks, initialization charged once")
        print(f"shared kernel launches: {shared_launches}")
    else:
        print(f"batch: {len(outcomes)} tasks on backend {backend.name}")
    print(f"total kernel launches: {total_launches}")
    pool_bytes = outcomes[-1].details.get("memory_pool_bytes")
    if pool_bytes is not None:
        print(f"memory pool: {pool_bytes} bytes")
    for outcome in outcomes:
        print(
            f"\n{_describe_engine(outcome)}   "
            f"marginal launches: {outcome.perf.traversal.kernel_launches}"
        )
        print("top results:")
        for line in _format_result_preview(outcome.task, outcome.result, args.top):
            print(f"  {line}")
    return 0


def _parse_relational_spec(args: argparse.Namespace):
    """Build a :class:`RelationalQuery` from the subcommand's arguments.

    Spec-level validation (unknown fields, bad ops, non-numeric sums)
    stays in :mod:`repro.relational.spec`; this only translates the
    ``name:type:locator`` / ``field:op:value`` / ``op[:field]`` argument
    grammar and coerces predicate values to their field's type.
    """
    from repro.relational.spec import (
        Aggregate,
        Condition,
        FieldSpec,
        RelationalQuery,
        RowSchema,
    )

    fields = []
    for raw in args.field:
        parts = raw.split(":", 2)
        if len(parts) != 3:
            raise ValueError(f"--field must look like name:type:locator (got {raw!r})")
        name, field_type, locator = parts
        if args.delimiter is not None:
            try:
                column = int(locator)
            except ValueError:
                raise ValueError(
                    f"--field {name!r}: with --delimiter the locator is a column index "
                    f"(got {locator!r})"
                ) from None
            fields.append(FieldSpec(name, field_type, column=column))
        else:
            fields.append(FieldSpec(name, field_type, key=locator))
    schema = RowSchema(fields=tuple(fields), delimiter=args.delimiter)

    coerce = {"str": str, "int": int, "float": float}
    predicate = []
    for raw in args.where:
        parts = raw.split(":", 2)
        if len(parts) != 3:
            raise ValueError(f"--where must look like field:op:value (got {raw!r})")
        field_name, op, value = parts
        spec = schema.field(field_name)  # raises KeyError on unknown fields
        try:
            typed = coerce[spec.type](value)
        except ValueError:
            raise ValueError(
                f"--where {raw!r}: value {value!r} is not a valid {spec.type}"
            ) from None
        predicate.append(Condition(field_name, op, typed))

    aggregates = []
    for raw in args.agg or ["count"]:
        op, _, agg_field = raw.partition(":")
        aggregates.append(Aggregate(op, agg_field or None))

    return RelationalQuery(
        schema=schema,
        predicate=tuple(predicate),
        group_by=args.group_by,
        aggregates=tuple(aggregates),
        order_by=args.order_by,
    )


def _cmd_relational(args: argparse.Namespace) -> int:
    try:
        spec = _parse_relational_spec(args)
        files = None
        if args.files:
            files = tuple(name.strip() for name in args.files.split(",") if name.strip())
        query = Query(
            task=Task.RELATIONAL,
            top_k=args.top_k,
            files=files,
            extras={"relational": spec},
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    compressed = load_compressed(args.compressed)
    backend = open_backend(args.backend, compressed)
    outcome = backend.run(query)
    print(f"query: {spec.describe()}   backend: {outcome.backend}")
    print(f"kernel launches: {outcome.kernel_launches}")
    print(f"modelled ops: {outcome.ops:.0f}")
    header = "\t".join(("group", *spec.aggregate_labels))
    print(f"groups: {len(outcome.result)}")
    print(f"  {header}")
    for group, values in outcome.result:
        cells = "\t".join("null" if value is None else str(value) for value in values)
        print(f"  {group}\t{cells}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    compressed = load_compressed(args.compressed)
    stats = compressed.statistics()
    rows = [
        ("files", stats.num_files),
        ("original tokens", stats.original_tokens),
        ("original bytes", stats.original_size_bytes),
        ("rules", stats.num_rules),
        ("vocabulary", stats.vocabulary_size),
        ("compressed symbols", stats.compressed_symbols),
        ("compression ratio", f"{stats.compression_ratio:.2f}"),
        ("DAG depth", stats.dag.depth),
        ("DAG edges", stats.dag.num_edges),
    ]
    print(format_table(["statistic", "value"], rows, title=f"Compressed corpus: {compressed.name}"))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.lint import registered_rules, run_lint

    if args.list_rules:
        for name, description in registered_rules():
            print(f"{name}: {description}")
        return 0
    root = Path(args.root) if args.root else None
    findings = run_lint(root, rules=args.rules)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: no findings", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    platform = get_platform(args.platform)
    if not platform.has_gpu:
        print("the bench command needs a GPU platform (Pascal, Volta or Turing)", file=sys.stderr)
        return 2
    datasets = [key.strip().upper() for key in args.datasets.split(",") if key.strip()]
    runner = ExperimentRunner(ExperimentConfig(dataset_scale=args.scale))
    rows = runner.speedup_grid(datasets=datasets, platforms=[platform])
    table_rows = [
        (
            row.dataset,
            row.task,
            f"{row.gtadoc.total * 1000:.2f} ms",
            f"{row.tadoc.total * 1000:.2f} ms",
            f"{row.speedup_total:.1f}x",
        )
        for row in rows
    ]
    print(
        format_table(
            ["dataset", "task", "G-TADOC", "TADOC baseline", "speedup"],
            table_rows,
            title=f"Figure 9 style speedups on {platform.key}",
        )
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve import (
        ServiceConfig,
        TraceConfig,
        replay_trace,
        replay_trace_async,
        replay_trace_sharded,
        synthesize_trace,
    )

    try:
        if args.requests < 1:
            raise ValueError(f"--requests must be a positive integer (got {args.requests})")
        if args.threads < 1:
            raise ValueError(f"--threads must be a positive integer (got {args.threads})")
        if args.concurrency < 1:
            raise ValueError(f"--concurrency must be a positive integer (got {args.concurrency})")
        if not 0.0 <= args.relational_fraction <= 1.0:
            raise ValueError(
                f"--relational-fraction must be within [0, 1] (got {args.relational_fraction})"
            )
        service_config = ServiceConfig(
            max_sessions=args.max_sessions,
            coalesce_window=args.coalesce_window_ms / 1000.0,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.compressed:
        compressed = load_compressed(args.compressed)
    else:
        compressed = compress_corpus(generate_dataset(args.dataset, scale=args.scale))
    trace = synthesize_trace(
        compressed.file_names,
        TraceConfig(
            num_requests=args.requests,
            seed=args.seed,
            relational_fraction=args.relational_fraction,
        ),
    )
    if args.processes and not args.shards:
        print("error: --processes requires --shards", file=sys.stderr)
        return 2
    if args.shards:
        report = replay_trace_sharded(
            compressed,
            trace,
            num_shards=args.shards,
            replicas=args.replicas,
            num_threads=args.threads,
            service_config=service_config,
            serial_baseline=not args.no_serial_baseline,
            use_async=args.use_async,
            concurrency=args.concurrency,
            transport="process" if args.processes else None,
        )
        concurrency_row = (
            "max in-flight requests" if args.use_async else "worker threads",
            report.num_threads,
        )
    elif args.use_async:
        report = replay_trace_async(
            compressed,
            trace,
            concurrency=args.concurrency,
            service_config=service_config,
            serial_baseline=not args.no_serial_baseline,
        )
        concurrency_row = ("max in-flight requests", report.num_threads)
    else:
        report = replay_trace(
            compressed,
            trace,
            num_threads=args.threads,
            service_config=service_config,
            serial_baseline=not args.no_serial_baseline,
        )
        concurrency_row = ("worker threads", report.num_threads)
    stats = report.stats
    hit_rate = (
        stats.result_cache_hit_rate if args.shards else stats.result_cache.hit_rate
    )
    rows = [
        ("requests", report.num_requests),
        ("replay mode", report.mode),
        concurrency_row,
        ("engine micro-batches", stats.micro_batches),
        ("mean batch size", f"{stats.mean_batch_size:.2f}"),
        ("coalesced queries", stats.coalesced_queries),
        ("result-cache hit rate", f"{hit_rate * 100:.1f}%"),
        ("served kernel launches", stats.kernel_launches),
        ("served launches/query", f"{report.served_launches_per_query:.2f}"),
    ]
    if report.elapsed_seconds is not None:
        rows.append(("served wall-clock", f"{report.elapsed_seconds:.3f} s"))
        if report.requests_per_second is not None:
            rows.append(("served requests/s", f"{report.requests_per_second:.1f}"))
    if args.shards:
        rows.extend(
            [
                ("shards", report.num_shards),
                ("queries per shard", "/".join(str(n) for n in stats.routed_queries)),
                ("sessions per shard", "/".join(str(n) for n in stats.resident_sessions)),
                ("replica promotions", stats.replica_promotions),
                ("replica demotions", stats.replica_demotions),
                ("placement network", f"{stats.network_seconds * 1000:.3f} ms"),
                ("shard transport", report.transport),
            ]
        )
        if stats.wire_messages:
            rows.extend(
                [
                    ("wire messages", f"{stats.wire_messages:.0f}"),
                    ("wire bytes", f"{stats.wire_bytes:.0f}"),
                    ("wire network", f"{stats.wire_seconds * 1000:.3f} ms"),
                ]
            )
        if stats.shard_failures:
            rows.append(
                (
                    "shard failures",
                    f"{stats.shard_failures} ({stats.replaced_shards} replaced)",
                )
            )
    if report.serial_launches is not None:
        rows.extend(
            [
                ("serial kernel launches", report.serial_launches),
                ("serial launches/query", f"{report.serial_launches_per_query:.2f}"),
                ("launch reduction", f"{report.launch_reduction * 100:.1f}%"),
                ("results match serial", "yes" if report.results_match else "NO"),
            ]
        )
        if report.serial_elapsed_seconds is not None:
            rows.append(("serial wall-clock", f"{report.serial_elapsed_seconds:.3f} s"))
        if report.wall_clock_speedup is not None:
            rows.append(("wall-clock speedup", f"{report.wall_clock_speedup:.1f}x"))
    print(
        format_table(
            ["statistic", "value"],
            rows,
            title=f"Serving replay: {compressed.name} ({len(compressed.file_names)} files)",
        )
    )
    if report.results_match is False:
        print("error: served results diverged from serial execution", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``gtadoc`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compress": _cmd_compress,
        "run": _cmd_run,
        "relational": _cmd_relational,
        "info": _cmd_info,
        "lint": _cmd_lint,
        "bench": _cmd_bench,
        "serve-bench": _cmd_serve_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
