"""Coarse-grained cluster execution model.

A :class:`ClusterSimulator` assigns work partitions to nodes round-robin
and accounts for the shuffle of partial results back to the driver.
The *functional* work of a partition is supplied by the caller (the
distributed TADOC baseline runs a real sequential TADOC engine per
partition); the simulator's job is bookkeeping: which node ran what,
how much each node computed, and how many bytes crossed the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.perf.counters import CostCounter
from repro.perf.specs import CPUSpec, E5_2676_V3
from repro.perf import workcosts as wc

__all__ = ["ClusterSpec", "NodeExecution", "ClusterSimulator"]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster (defaults mirror Table I's EC2 cluster)."""

    num_nodes: int = 10
    node_cpu: CPUSpec = E5_2676_V3
    threads_per_node: int = 12
    network_bandwidth_gb_s: float = 1.25
    network_latency_s: float = 200e-6


@dataclass
class NodeExecution:
    """Work executed by one node."""

    node_index: int
    partition_indices: List[int] = field(default_factory=list)
    counter: CostCounter = field(default_factory=CostCounter)


class ClusterSimulator:
    """Round-robin partition placement plus shuffle accounting."""

    def __init__(self, spec: ClusterSpec) -> None:
        if spec.num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.spec = spec

    def assign_partitions(self, num_partitions: int) -> Dict[int, List[int]]:
        """Round-robin mapping ``node index -> partition indices``."""
        assignment: Dict[int, List[int]] = {node: [] for node in range(self.spec.num_nodes)}
        for partition in range(num_partitions):
            assignment[partition % self.spec.num_nodes].append(partition)
        return assignment

    def execute(
        self,
        partition_counters: Sequence[CostCounter],
        result_entries_per_partition: Sequence[int],
        *,
        include_empty_nodes: bool = True,
    ) -> List[NodeExecution]:
        """Place partitions on nodes and attribute their work and shuffle traffic.

        A partition sends its partial result to the driver only when it
        actually produced entries: empty partitions charge neither bytes
        nor a network message (there is nothing to shuffle), so phases
        whose partitions return nothing — initialization, filtered
        queries with empty partitions — do not inflate the latency term
        of the cost model with phantom messages.

        When there are fewer partitions than nodes, the idle nodes
        still appear in the returned list (empty ``partition_indices``,
        zero counters) so callers can report per-node utilisation
        against the full cluster; pass ``include_empty_nodes=False`` to
        list only the nodes that executed work — e.g. when reusing this
        accounting for per-query placement cost, where idle devices are
        not part of the transaction.
        """
        if len(partition_counters) != len(result_entries_per_partition):
            raise ValueError("counters and result sizes must align")
        assignment = self.assign_partitions(len(partition_counters))
        executions: List[NodeExecution] = []
        for node_index, partitions in assignment.items():
            if not partitions and not include_empty_nodes:
                continue
            execution = NodeExecution(node_index=node_index, partition_indices=partitions)
            for partition in partitions:
                execution.counter.merge(partition_counters[partition])
                entries = result_entries_per_partition[partition]
                if entries > 0:
                    execution.counter.charge_network(
                        bytes_sent=wc.RESULT_ENTRY_BYTES * entries, messages=1.0
                    )
            executions.append(execution)
        return executions

    def shuffle_counter(self, executions: Sequence[NodeExecution]) -> CostCounter:
        """Aggregate network traffic of the merge/shuffle stage."""
        shuffle = CostCounter()
        for execution in executions:
            shuffle.charge_network(
                bytes_sent=execution.counter.network_bytes,
                messages=execution.counter.network_messages,
            )
        return shuffle
