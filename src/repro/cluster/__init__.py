"""Distributed-cluster simulation substrate.

The paper's baseline for the 50 GB dataset C is TADOC running on a
10-node Amazon EC2 Spark cluster (Table I).  This package provides the
coarse-grained distributed execution model that baseline needs: file
partitions are assigned to nodes, every node processes its partition
independently (that is exactly TADOC's coarse-grained parallelism), and
partial results are shuffled over the network to a merger.
"""

from repro.cluster.simulator import ClusterSpec, ClusterSimulator, NodeExecution

__all__ = ["ClusterSpec", "ClusterSimulator", "NodeExecution"]
