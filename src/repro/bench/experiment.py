"""Experiment runner: every engine, every dataset, every platform.

The runner opens every engine through the unified backend registry
(:func:`repro.api.open_backend`) and issues
:class:`~repro.api.query.Query` objects against the
:class:`~repro.api.backend.AnalyticsBackend` protocol — the same front
door the CLI and the examples use.  Functional runs are cached (they
are platform-independent) and priced under each platform's cost model,
applying the paper-scale extrapolation described in
:mod:`repro.perf.extrapolation`.  It produces :class:`SpeedupRow`
records — one per (dataset, task, platform) — which the benchmark
scripts turn into the paper's figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analytics.base import Task
from repro.api import AnalyticsBackend, Query, open_backend
from repro.baselines.cpu_tadoc import CpuTadocRunResult
from repro.baselines.distributed import DistributedRunResult
from repro.baselines.gpu_uncompressed import GpuUncompressedRunResult
from repro.compression.compressor import CompressedCorpus, compress_corpus
from repro.core.engine import GTadoc, GTadocBatchResult, GTadocConfig, GTadocRunResult
from repro.core.strategy import TraversalStrategy
from repro.data.corpus import Corpus
from repro.data.generators import DATASET_SPECS, DatasetSpec, generate_dataset
from repro.perf.cost_model import ClusterCostModel, CpuCostModel, GpuCostModel
from repro.perf.counters import PhaseTiming
from repro.perf.extrapolation import (
    dataset_scale_factor,
    extrapolate_counter,
    extrapolate_gpu_record,
)
from repro.perf.platforms import CLUSTER_PLATFORM, Platform, list_platforms

__all__ = [
    "ExperimentConfig",
    "DatasetBundle",
    "SpeedupRow",
    "BatchAmortization",
    "ExperimentRunner",
]


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiments."""

    #: Token-volume multiplier of the synthetic analogues.
    dataset_scale: float = 0.25
    #: Generator seed (results are deterministic for a given seed).
    seed: int = 2021
    #: Sequence length for sequence count.
    sequence_length: int = 3
    #: Extrapolate measured work to the paper's Table II scale.
    extrapolate_to_paper_scale: bool = True
    #: Dataset keys whose compressed data does not fit GPU memory at paper
    #: scale and therefore pays PCIe transfers (the paper's "large datasets").
    pcie_datasets: Tuple[str, ...] = ("C",)
    #: Dataset keys whose TADOC baseline runs on the 10-node cluster.
    cluster_datasets: Tuple[str, ...] = ("C",)


@dataclass
class DatasetBundle:
    """A generated dataset analogue plus its compressed form."""

    key: str
    spec: DatasetSpec
    corpus: Corpus
    compressed: CompressedCorpus
    extrapolation_factor: float

    @property
    def uses_cluster_baseline(self) -> bool:
        return self.spec.cluster_baseline


@dataclass
class SpeedupRow:
    """One cell of Figure 9/10: a dataset x task x platform comparison."""

    dataset: str
    task: str
    platform: str
    baseline: str
    gtadoc: PhaseTiming
    tadoc: PhaseTiming

    @property
    def speedup_total(self) -> float:
        return self.tadoc.total / self.gtadoc.total if self.gtadoc.total else float("inf")

    @property
    def speedup_initialization(self) -> float:
        if self.gtadoc.initialization <= 0:
            return float("inf")
        return self.tadoc.initialization / self.gtadoc.initialization

    @property
    def speedup_traversal(self) -> float:
        if self.gtadoc.traversal <= 0:
            return float("inf")
        return self.tadoc.traversal / self.gtadoc.traversal


@dataclass
class BatchAmortization:
    """Batched vs. per-task execution of one dataset's full task suite.

    ``sequential_*`` totals are summed over fresh single-task runs;
    ``batch_*`` totals come from one :meth:`GTadoc.run_batch` over the
    same tasks (shared init + shared state + per-task marginals).
    """

    dataset: str
    tasks: Tuple[Task, ...]
    sequential_launches: int
    batch_launches: int
    sequential_ops: float
    batch_ops: float
    sequential_init_launches: int
    batch_init_launches: int
    sequential_init_ops: float
    batch_init_ops: float
    results_match: bool
    #: Measured wall-clock seconds of the fresh per-task runs (summed)
    #: and of the one batched execution, as recorded when each first ran.
    sequential_elapsed_seconds: float = 0.0
    batch_elapsed_seconds: float = 0.0

    @property
    def wall_clock_speedup(self) -> float:
        """Measured sequential seconds over batched seconds."""
        if self.batch_elapsed_seconds <= 0:
            return float("inf") if self.sequential_elapsed_seconds > 0 else 0.0
        return self.sequential_elapsed_seconds / self.batch_elapsed_seconds

    @property
    def launch_reduction(self) -> float:
        """Fraction of kernel launches removed by batching."""
        if self.sequential_launches <= 0:
            return 0.0
        return 1.0 - self.batch_launches / self.sequential_launches

    @property
    def ops_reduction(self) -> float:
        """Fraction of simulated compute ops removed by batching."""
        if self.sequential_ops <= 0:
            return 0.0
        return 1.0 - self.batch_ops / self.sequential_ops


class ExperimentRunner:
    """Prepare datasets, run engines once, price them per platform."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self._bundles: Dict[str, DatasetBundle] = {}
        self._gtadoc_runs: Dict[Tuple[str, Task, Optional[TraversalStrategy]], GTadocRunResult] = {}
        self._gtadoc_batches: Dict[
            Tuple[str, Tuple[Task, ...], Optional[TraversalStrategy]], GTadocBatchResult
        ] = {}
        #: Measured wall-clock seconds of each cached run/batch (keyed as above).
        self._gtadoc_run_seconds: Dict[
            Tuple[str, Task, Optional[TraversalStrategy]], float
        ] = {}
        self._gtadoc_batch_seconds: Dict[
            Tuple[str, Tuple[Task, ...], Optional[TraversalStrategy]], float
        ] = {}
        self._cpu_runs: Dict[Tuple[str, Task], CpuTadocRunResult] = {}
        self._distributed_runs: Dict[Tuple[str, Task], DistributedRunResult] = {}
        self._gpu_uncompressed_runs: Dict[Tuple[str, Task], GpuUncompressedRunResult] = {}
        self._backends: Dict[Tuple[str, str], AnalyticsBackend] = {}

    # -- dataset preparation ----------------------------------------------------------------
    def bundle(self, key: str) -> DatasetBundle:
        """Generate and compress dataset ``key`` (cached)."""
        if key not in self._bundles:
            spec = DATASET_SPECS[key].scaled(self.config.dataset_scale)
            corpus = generate_dataset(key, scale=self.config.dataset_scale, seed=self.config.seed)
            compressed = compress_corpus(corpus)
            if self.config.extrapolate_to_paper_scale:
                factor = dataset_scale_factor(spec.paper_rules, len(compressed.grammar))
            else:
                factor = 1.0
            self._bundles[key] = DatasetBundle(
                key=key,
                spec=spec,
                corpus=corpus,
                compressed=compressed,
                extrapolation_factor=factor,
            )
        return self._bundles[key]

    # -- backends (one registry front door for every engine) -------------------------------------
    def backend(self, key: str, name: str) -> AnalyticsBackend:
        """The (cached) registered backend ``name`` for dataset ``key``.

        The G-TADOC backend is opened with ``amortize=False`` so each
        query pays the full per-query cost the paper's figures measure
        (use :meth:`gtadoc_batch_run` for the amortized serving path).
        """
        cache_key = (key, name)
        if cache_key not in self._backends:
            bundle = self.bundle(key)
            options: Dict[str, object] = {}
            source: object = bundle.corpus
            if name == "gtadoc":
                source = bundle.compressed
                options = {
                    "config": GTadocConfig(
                        sequence_length=self.config.sequence_length,
                        needs_pcie_transfer=key in self.config.pcie_datasets,
                    ),
                    "amortize": False,
                }
            elif name == "cpu":
                source = bundle.compressed
                options = {"sequence_length": self.config.sequence_length}
            elif name in ("parallel", "distributed", "gpu_uncompressed", "reference"):
                options = {"sequence_length": self.config.sequence_length}
                if name == "gpu_uncompressed":
                    options["needs_pcie_transfer"] = key in self.config.pcie_datasets
            self._backends[cache_key] = open_backend(name, source, **options)
        return self._backends[cache_key]

    # -- engine runs (functional, cached) --------------------------------------------------------
    def gtadoc_engine(self, key: str) -> GTadoc:
        """The (cached) G-TADOC engine for dataset ``key``."""
        return self.backend(key, "gtadoc").engine

    def gtadoc_run(
        self, key: str, task: Task, traversal: Optional[TraversalStrategy] = None
    ) -> GTadocRunResult:
        cache_key = (key, task, traversal)
        if cache_key not in self._gtadoc_runs:
            backend = self.backend(key, "gtadoc")
            started = time.perf_counter()
            outcome = backend.run(Query(task=task, traversal=traversal))
            self._gtadoc_run_seconds[cache_key] = time.perf_counter() - started
            self._gtadoc_runs[cache_key] = outcome.raw
        return self._gtadoc_runs[cache_key]

    def gtadoc_batch_run(
        self,
        key: str,
        tasks: Optional[Tuple[Task, ...]] = None,
        traversal: Optional[TraversalStrategy] = None,
    ) -> GTadocBatchResult:
        """One amortized batch over ``tasks`` (cached, isolated session).

        The batch runs on a fresh session so the recorded shared work is
        exactly one batch's worth, regardless of what ran before.
        """
        tasks = tuple(Task.all() if tasks is None else tasks)
        cache_key = (key, tasks, traversal)
        if cache_key not in self._gtadoc_batches:
            engine = self.gtadoc_engine(key)
            started = time.perf_counter()
            batch = engine.run_batch(tasks, traversal=traversal, session=engine.session.fresh())
            self._gtadoc_batch_seconds[cache_key] = time.perf_counter() - started
            self._gtadoc_batches[cache_key] = batch
        return self._gtadoc_batches[cache_key]

    def batch_amortization(
        self, key: str, tasks: Optional[Tuple[Task, ...]] = None
    ) -> BatchAmortization:
        """Compare one batched execution with per-task runs on dataset ``key``."""
        tasks = tuple(Task.all() if tasks is None else tasks)
        singles = [self.gtadoc_run(key, task) for task in tasks]
        batch = self.gtadoc_batch_run(key, tasks)

        sequential_launches = sum(run.total_kernel_launches for run in singles)
        sequential_ops = sum(
            run.init_record.total_ops + run.traversal_record.total_ops for run in singles
        )
        sequential_init_launches = sum(run.init_record.num_launches for run in singles)
        sequential_init_ops = sum(run.init_record.total_ops for run in singles)

        batch_launches = batch.total_kernel_launches
        batch_ops = (
            batch.init_record.total_ops
            + batch.shared_record.total_ops
            + sum(
                result.init_record.total_ops + result.traversal_record.total_ops
                for result in batch.values()
            )
        )
        results_match = all(batch[task].result == self.gtadoc_run(key, task).result for task in tasks)
        return BatchAmortization(
            dataset=key,
            tasks=tasks,
            sequential_launches=sequential_launches,
            batch_launches=batch_launches,
            sequential_ops=sequential_ops,
            batch_ops=batch_ops,
            sequential_init_launches=sequential_init_launches,
            batch_init_launches=batch.init_record.num_launches,
            sequential_init_ops=sequential_init_ops,
            batch_init_ops=batch.init_record.total_ops,
            results_match=results_match,
            sequential_elapsed_seconds=sum(
                self._gtadoc_run_seconds.get((key, task, None), 0.0) for task in tasks
            ),
            batch_elapsed_seconds=self._gtadoc_batch_seconds.get((key, tasks, None), 0.0),
        )

    def cpu_tadoc_run(self, key: str, task: Task) -> CpuTadocRunResult:
        cache_key = (key, task)
        if cache_key not in self._cpu_runs:
            self._cpu_runs[cache_key] = self.backend(key, "cpu").run(Query(task=task)).raw
        return self._cpu_runs[cache_key]

    def distributed_run(self, key: str, task: Task) -> DistributedRunResult:
        cache_key = (key, task)
        if cache_key not in self._distributed_runs:
            self._distributed_runs[cache_key] = (
                self.backend(key, "distributed").run(Query(task=task)).raw
            )
        return self._distributed_runs[cache_key]

    def gpu_uncompressed_run(self, key: str, task: Task) -> GpuUncompressedRunResult:
        cache_key = (key, task)
        if cache_key not in self._gpu_uncompressed_runs:
            self._gpu_uncompressed_runs[cache_key] = (
                self.backend(key, "gpu_uncompressed").run(Query(task=task)).raw
            )
        return self._gpu_uncompressed_runs[cache_key]

    # -- pricing --------------------------------------------------------------------------------------
    def _factor(self, key: str) -> float:
        return self.bundle(key).extrapolation_factor

    def gtadoc_times(self, key: str, task: Task, platform: Platform) -> PhaseTiming:
        """Modelled G-TADOC phase times on ``platform`` for (dataset, task)."""
        if platform.gpu is None:
            raise ValueError(f"platform {platform.key} has no GPU")
        run = self.gtadoc_run(key, task)
        factor = self._factor(key)
        gpu_model = GpuCostModel(platform.gpu)
        host_model = CpuCostModel(platform.cpu)
        init_record = extrapolate_gpu_record(run.init_record, factor)
        traversal_record = extrapolate_gpu_record(run.traversal_record, factor)
        return PhaseTiming(
            initialization=gpu_model.time_seconds(init_record, host_model),
            traversal=gpu_model.time_seconds(traversal_record, host_model),
        )

    def cpu_tadoc_times(self, key: str, task: Task, platform: Platform) -> PhaseTiming:
        """Modelled sequential TADOC phase times on ``platform``'s CPU."""
        run = self.cpu_tadoc_run(key, task)
        factor = self._factor(key)
        model = CpuCostModel(platform.cpu, threads=1)
        return PhaseTiming(
            initialization=model.time_seconds(extrapolate_counter(run.init_counter, factor)),
            traversal=model.time_seconds(extrapolate_counter(run.traversal_counter, factor)),
        )

    def cluster_times(self, key: str, task: Task) -> PhaseTiming:
        """Modelled distributed TADOC phase times on the 10-node cluster."""
        run = self.distributed_run(key, task)
        factor = self._factor(key)
        cluster_model = ClusterCostModel(
            node_spec=CLUSTER_PLATFORM.cpu,
            num_nodes=CLUSTER_PLATFORM.num_nodes,
            network_bandwidth_gb_s=CLUSTER_PLATFORM.network_bandwidth_gb_s,
            network_latency_s=CLUSTER_PLATFORM.network_latency_s,
        )
        init_counters = [
            extrapolate_counter(counter, factor) for counter in run.per_node_init_counters()
        ]
        traversal_counters = [
            extrapolate_counter(counter, factor) for counter in run.per_node_traversal_counters()
        ]
        shuffle = extrapolate_counter(run.shuffle_counter, factor)
        # The final merge is a distributed reduce: the merge work is spread
        # across the nodes (each reduces a key range), not run on a single
        # driver thread.
        merge_model = CpuCostModel(CLUSTER_PLATFORM.cpu, threads=cluster_model.threads_per_node)
        merge_counter = extrapolate_counter(run.merge_counter, factor).scaled(
            1.0 / CLUSTER_PLATFORM.num_nodes
        )
        merge_time = merge_model.time_seconds(merge_counter)
        return PhaseTiming(
            initialization=cluster_model.time_seconds(init_counters, None, num_stages=1),
            traversal=cluster_model.time_seconds(traversal_counters, shuffle, num_stages=1)
            + merge_time,
        )

    def gpu_uncompressed_times(self, key: str, task: Task, platform: Platform) -> PhaseTiming:
        """Modelled GPU uncompressed-analytics time on ``platform``."""
        if platform.gpu is None:
            raise ValueError(f"platform {platform.key} has no GPU")
        run = self.gpu_uncompressed_run(key, task)
        # Uncompressed work scales with tokens, not rules; keep the ratio of
        # tokens to rules fixed by reusing the same extrapolation factor.
        record = extrapolate_gpu_record(run.record, self._factor(key))
        model = GpuCostModel(platform.gpu)
        return PhaseTiming(initialization=0.0, traversal=model.time_seconds(record))

    # -- grids --------------------------------------------------------------------------------------------
    def baseline_times(self, key: str, task: Task, platform: Platform) -> Tuple[str, PhaseTiming]:
        """The paper's TADOC baseline for (dataset, platform): cluster for C."""
        if key in self.config.cluster_datasets:
            return "TADOC (10-node cluster)", self.cluster_times(key, task)
        return "TADOC (sequential CPU)", self.cpu_tadoc_times(key, task, platform)

    def speedup_row(self, key: str, task: Task, platform: Platform) -> SpeedupRow:
        baseline_name, tadoc_times = self.baseline_times(key, task, platform)
        return SpeedupRow(
            dataset=key,
            task=task.value,
            platform=platform.key,
            baseline=baseline_name,
            gtadoc=self.gtadoc_times(key, task, platform),
            tadoc=tadoc_times,
        )

    def speedup_grid(
        self,
        datasets: Optional[List[str]] = None,
        tasks: Optional[List[Task]] = None,
        platforms: Optional[List[Platform]] = None,
    ) -> List[SpeedupRow]:
        """The full Figure 9/10 grid (datasets x tasks x GPU platforms)."""
        datasets = datasets or sorted(DATASET_SPECS)
        tasks = tasks or Task.all()
        platforms = platforms or list_platforms(gpu_only=True)
        rows: List[SpeedupRow] = []
        for platform in platforms:
            for dataset in datasets:
                for task in tasks:
                    rows.append(self.speedup_row(dataset, task, platform))
        return rows
