"""Aggregation of speedup rows into the paper's headline numbers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

from repro.bench.experiment import SpeedupRow

__all__ = ["geometric_mean", "summarize_rows"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty input)."""
    values = [value for value in values if value > 0 and math.isfinite(value)]
    if not values:
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


def summarize_rows(rows: Sequence[SpeedupRow]) -> Dict[str, float]:
    """The paper's headline aggregates over a Figure 9/10 grid.

    Returned keys mirror the claims in sections I and VI-B/VI-C:

    * ``overall_speedup`` — average speedup across all cells (the 31.1x claim),
    * ``single_node_speedup`` — cells whose baseline is the sequential CPU
      TADOC (the 57.5x claim),
    * ``cluster_speedup`` — cells whose baseline is the 10-node cluster
      (the 2.7x claim),
    * ``sequence_count_speedup`` / ``ranked_inverted_index_speedup`` — the
      sequence-sensitive tasks (the 111x / 112x claims),
    * ``initialization_speedup`` / ``traversal_speedup`` — per-phase
      aggregates (the 9.5x / 64.1x claims),
    * ``initialization_time_saving`` / ``traversal_time_saving`` — the same
      expressed as fractional time savings (the 76.5% / 82.2% claims).
    """
    overall = geometric_mean(row.speedup_total for row in rows)
    single_node = geometric_mean(
        row.speedup_total for row in rows if "cluster" not in row.baseline
    )
    cluster = geometric_mean(
        row.speedup_total for row in rows if "cluster" in row.baseline
    )
    sequence_count = geometric_mean(
        row.speedup_total for row in rows if row.task == "sequence_count"
    )
    ranked = geometric_mean(
        row.speedup_total for row in rows if row.task == "ranked_inverted_index"
    )
    initialization = geometric_mean(row.speedup_initialization for row in rows)
    traversal = geometric_mean(row.speedup_traversal for row in rows)

    def saving(speedup: float) -> float:
        return 1.0 - 1.0 / speedup if speedup > 0 else 0.0

    return {
        "overall_speedup": overall,
        "single_node_speedup": single_node,
        "cluster_speedup": cluster,
        "sequence_count_speedup": sequence_count,
        "ranked_inverted_index_speedup": ranked,
        "initialization_speedup": initialization,
        "traversal_speedup": traversal,
        "initialization_time_saving": saving(initialization),
        "traversal_time_saving": saving(traversal),
    }
