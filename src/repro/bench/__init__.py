"""Experiment harness shared by the ``benchmarks/`` suite and the CLI.

The harness prepares the dataset analogues, runs every engine
(G-TADOC, sequential CPU TADOC, distributed TADOC, GPU uncompressed
analytics), prices their work records on the Table I platforms, applies
the paper-scale extrapolation and formats the resulting tables/series.
Each benchmark file under ``benchmarks/`` is a thin wrapper around one
of these entry points.
"""

from repro.bench.experiment import (
    DatasetBundle,
    ExperimentConfig,
    ExperimentRunner,
    SpeedupRow,
)
from repro.bench.aggregate import geometric_mean, summarize_rows
from repro.bench.tables import format_table, save_report

__all__ = [
    "DatasetBundle",
    "ExperimentConfig",
    "ExperimentRunner",
    "SpeedupRow",
    "geometric_mean",
    "summarize_rows",
    "format_table",
    "save_report",
]
