"""Plain-text table formatting and report persistence for benchmarks."""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

__all__ = ["format_table", "save_report", "RESULTS_DIR"]

#: Default directory benchmark reports are written to.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)


def save_report(name: str, content: str, directory: Union[str, Path, None] = None) -> Path:
    """Write a benchmark report to ``benchmarks/results/<name>.txt``."""
    target_dir = Path(directory) if directory is not None else RESULTS_DIR
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    return path
