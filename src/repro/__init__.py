"""repro — a reproduction of G-TADOC (ICDE 2021).

G-TADOC is the first framework for GPU-based text analytics directly on
TADOC-compressed data.  This library reimplements the full system in
Python:

* the TADOC compression substrate (Sequitur grammars, dictionary
  conversion, rule DAG) — :mod:`repro.compression`,
* the six CompressDirect analytics tasks — :mod:`repro.analytics`,
* a functional SIMT GPU simulator with the paper's device-side data
  structures (memory pool, thread-safe hash tables) — :mod:`repro.gpusim`,
* the G-TADOC engine itself (fine-grained thread scheduling, top-down
  and bottom-up traversals, head/tail sequence support) — :mod:`repro.core`,
* the baselines the paper compares against (sequential / parallel /
  distributed CPU TADOC, GPU uncompressed analytics) —
  :mod:`repro.baselines`,
* the serving layer — threaded and asyncio front ends over one core
  (device-session LRU, query coalescing, result caching for concurrent
  traffic) — :mod:`repro.serve`, and
* the evaluation harness regenerating every table and figure —
  :mod:`repro.bench` plus the ``benchmarks/`` directory.

Quick start::

    from repro import compress_corpus, Corpus, GTadoc, Task

    corpus = Corpus.from_texts({"a.txt": "the quick brown fox ...", "b.txt": "..."})
    compressed = compress_corpus(corpus)
    result = GTadoc(compressed).run(Task.WORD_COUNT).result
"""

from repro.analytics import Task, UncompressedAnalytics, results_equal
from repro.api import (
    AnalyticsBackend,
    Query,
    RunOutcome,
    available_backends,
    open_backend,
    register_backend,
)
from repro.compression import CompressedCorpus, TadocCompressor, compress_corpus
from repro.core import (
    DeviceSession,
    GTadoc,
    GTadocBatchResult,
    GTadocConfig,
    GTadocRunResult,
    TraversalStrategy,
)
from repro.data import Corpus, Document, generate_dataset
from repro.serve import AnalyticsService, AsyncAnalyticsService, ServiceConfig

__version__ = "1.3.0"

__all__ = [
    "__version__",
    "Query",
    "RunOutcome",
    "AnalyticsBackend",
    "open_backend",
    "register_backend",
    "available_backends",
    "Task",
    "UncompressedAnalytics",
    "results_equal",
    "CompressedCorpus",
    "TadocCompressor",
    "compress_corpus",
    "GTadoc",
    "GTadocConfig",
    "GTadocRunResult",
    "GTadocBatchResult",
    "DeviceSession",
    "TraversalStrategy",
    "Corpus",
    "Document",
    "generate_dataset",
    "AnalyticsService",
    "AsyncAnalyticsService",
    "ServiceConfig",
]
