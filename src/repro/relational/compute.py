"""Pure relational computation shared by every engine.

The compressed-domain kernels, the CPU baselines and the uncompressed
reference all answer relational queries through the helpers in this
module, so their results agree structurally — the engines differ only in
*how the parse states are obtained* (bottom-up over the grammar DAG
versus a direct token scan) and in the work they charge.

Row parsing is a monoid over token segments.  A :data:`ParseState`
summarises one contiguous token segment with exactly what field
extraction needs:

* the segment's first and last token,
* per anchor token (the schema's delimiter, or each distinct key), the
  capped list of *followers* — the tokens immediately following the
  anchor's occurrences, in order.

:func:`combine` is associative (a capped follower list is a prefix of
the concatenation's follower list), so per-rule states computed
bottom-up over the grammar compose into per-file states at the root
exactly as a left-to-right scan of the decompressed tokens would —
without ever materializing those tokens.

Aggregation is order-independent by construction: counts and integer
sums are exact, float sums and averages go through :func:`math.fsum`
(exactly rounded, hence independent of summation order), and min/max
are commutative — which is what makes results bit-identical across
partitioned, distributed and fused executions.
"""

from __future__ import annotations

import math
import operator
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.compression.grammar import is_rule_ref, rule_ref_id
from repro.relational.spec import Aggregate, Condition, RelationalQuery, RowSchema

__all__ = [
    "ParseState",
    "RowValues",
    "empty_state",
    "token_state",
    "combine",
    "fold_states",
    "fold_symbol_states",
    "anchor_ids",
    "extract_symbols",
    "parse_typed",
    "typed_row",
    "row_from_tokens",
    "condition_matches",
    "evaluate_predicate",
    "execute_relational",
    "merge_row_partials",
    "relational_result_entry_count",
]

#: ``(first, last, followers-per-anchor)`` summary of one token segment.
#: Symbols are word ids in the compressed domain and plain token strings
#: in the uncompressed one; the monoid is generic over both.
ParseState = Tuple[Optional[Hashable], Optional[Hashable], Tuple[Tuple[Hashable, ...], ...]]

#: One parsed row: a typed value (or ``None``) per schema field.
RowValues = Tuple[Optional[Any], ...]

_OP_FUNCS = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


# ----------------------------------------------------------------------------------------
# The parse-state monoid
# ----------------------------------------------------------------------------------------

def empty_state(num_anchors: int) -> ParseState:
    return (None, None, ((),) * num_anchors)


def token_state(symbol: Hashable, num_anchors: int) -> ParseState:
    """The state of a single-token segment (a token has no followers)."""
    return (symbol, symbol, ((),) * num_anchors)


def combine(
    left: ParseState,
    right: ParseState,
    anchors: Sequence[Hashable],
    caps: Sequence[int],
) -> ParseState:
    """Concatenate two segment summaries (associative, identity = empty)."""
    if left[0] is None:
        return right
    if right[0] is None:
        return left
    followers: List[Tuple[Hashable, ...]] = []
    for index, anchor in enumerate(anchors):
        cap = caps[index]
        merged = left[2][index]
        if len(merged) < cap:
            # The left segment's trailing anchor occurrence finds its
            # follower in the right segment's first token.
            if left[1] == anchor:
                merged = merged + (right[0],)
            merged = (merged + right[2][index])[:cap]
        followers.append(merged)
    return (left[0], right[1], tuple(followers))


def fold_states(
    states: Iterable[ParseState], anchors: Sequence[Hashable], caps: Sequence[int]
) -> ParseState:
    """Left fold of :func:`combine` over a sequence of states."""
    state = empty_state(len(anchors))
    for other in states:
        state = combine(state, other, anchors, caps)
    return state


def fold_symbol_states(
    symbols: Iterable[int],
    rule_states: Sequence[ParseState],
    anchors: Sequence[Hashable],
    caps: Sequence[int],
) -> ParseState:
    """Fold a grammar symbol sequence: terminals and (memoized) rule refs."""
    num_anchors = len(anchors)
    state = empty_state(num_anchors)
    for symbol in symbols:
        if is_rule_ref(symbol):
            other = rule_states[rule_ref_id(symbol)]
        else:
            other = token_state(symbol, num_anchors)
        state = combine(state, other, anchors, caps)
    return state


def anchor_ids(schema: RowSchema, dictionary) -> Tuple[int, ...]:
    """The schema's anchor tokens as word ids (-1 for out-of-vocabulary)."""
    return tuple(
        dictionary.lookup(word) if word in dictionary else -1
        for word in schema.anchor_words
    )


def schema_caps(schema: RowSchema) -> Tuple[int, ...]:
    """Follower-list caps per anchor (how many followers extraction needs)."""
    if schema.delimiter is not None:
        return (schema.max_column,)
    return (1,) * len(schema.anchor_words)


# ----------------------------------------------------------------------------------------
# Field extraction and typing
# ----------------------------------------------------------------------------------------

def extract_symbols(state: ParseState, schema: RowSchema) -> Tuple[Optional[Hashable], ...]:
    """Per-field raw symbol (token id or token string), ``None`` if absent."""
    first, _last, followers = state
    anchor_index = {anchor: i for i, anchor in enumerate(schema.anchor_words)}
    symbols: List[Optional[Hashable]] = []
    for spec in schema.fields:
        if schema.delimiter is not None:
            if spec.column == 0:
                symbols.append(first)
            else:
                following = followers[0]
                symbols.append(
                    following[spec.column - 1] if len(following) >= spec.column else None
                )
        else:
            following = followers[anchor_index[spec.key]]
            symbols.append(following[0] if following else None)
    return tuple(symbols)


def parse_typed(word: Optional[str], type_name: str) -> Optional[Any]:
    """Parse one token into the field's declared type (``None`` on failure)."""
    if word is None:
        return None
    if type_name == "str":
        return word
    try:
        value = int(word) if type_name == "int" else float(word)
    except ValueError:
        return None
    if value != value:  # NaN breaks ordering and equality; treat as missing
        return None
    return value


def typed_row(
    symbols: Tuple[Optional[Hashable], ...],
    schema: RowSchema,
    decode=None,
) -> RowValues:
    """Typed field values from raw symbols (``decode`` maps ids to words)."""
    values: List[Optional[Any]] = []
    for symbol, spec in zip(symbols, schema.fields):
        word = None if symbol is None else (decode(symbol) if decode is not None else symbol)
        values.append(parse_typed(word, spec.type))
    return tuple(values)


def row_from_tokens(tokens: Sequence[str], schema: RowSchema) -> RowValues:
    """One file's row parsed directly from its (uncompressed) token stream.

    Bit-identical to the grammar path: it folds the same monoid over
    single-token states, just in the string domain.
    """
    anchors = schema.anchor_words
    caps = schema_caps(schema)
    state = fold_states(
        (token_state(token, len(anchors)) for token in tokens), anchors, caps
    )
    return typed_row(extract_symbols(state, schema), schema)


# ----------------------------------------------------------------------------------------
# Predicate evaluation and aggregation
# ----------------------------------------------------------------------------------------

def condition_matches(value: Optional[Any], condition: Condition) -> bool:
    """One condition on one field value (``None`` never matches)."""
    if value is None:
        return False
    try:
        return bool(_OP_FUNCS[condition.op](value, condition.value))
    except TypeError:
        # Cross-type ordered comparisons (e.g. a str field against a
        # numeric literal) simply do not match.
        return False


def evaluate_predicate(row: RowValues, spec: RelationalQuery) -> bool:
    """ANDed predicate over one row (all terms evaluated, no short-circuit)."""
    schema = spec.schema
    matches = [
        condition_matches(row[schema.field_index(condition.field)], condition)
        for condition in spec.predicate
    ]
    return all(matches)


def _finalize_aggregate(aggregate: Aggregate, field_type: Optional[str], values: List[Any]) -> Any:
    if aggregate.op == "count":
        return len(values)
    if aggregate.op == "sum":
        if field_type == "int":
            return sum(values)
        return math.fsum(values)
    if aggregate.op == "min":
        return min(values) if values else None
    if aggregate.op == "max":
        return max(values) if values else None
    # avg
    if not values:
        return None
    return math.fsum(float(value) for value in values) / len(values)


def execute_relational(
    rows: Iterable[RowValues], spec: RelationalQuery
) -> List[Tuple[Optional[Any], Tuple[Any, ...]]]:
    """Filter, group and aggregate ``rows`` into the canonical result shape.

    Returns ``[(group value, (aggregate values...)), ...]`` sorted by
    group value.  Without a ``group_by`` there is exactly one entry with
    group ``None`` (SQL semantics: aggregates over zero rows still
    produce a row).  Rows whose group value is ``None`` are excluded
    from grouping; ``sum``/``min``/``max``/``avg`` skip ``None`` field
    values while ``count`` counts every passing row.
    """
    schema = spec.schema
    conditions = [
        (condition, schema.field_index(condition.field)) for condition in spec.predicate
    ]
    group_index = schema.field_index(spec.group_by) if spec.group_by is not None else None
    agg_plan: List[Tuple[Aggregate, Optional[int], Optional[str]]] = []
    for aggregate in spec.aggregates:
        if aggregate.field is None:
            agg_plan.append((aggregate, None, None))
        else:
            agg_plan.append(
                (aggregate, schema.field_index(aggregate.field), schema.field(aggregate.field).type)
            )

    groups: Dict[Any, List[List[Any]]] = {}
    for row in rows:
        passes = [condition_matches(row[index], condition) for condition, index in conditions]
        if not all(passes):
            continue
        if group_index is None:
            group = None
        else:
            group = row[group_index]
            if group is None:
                continue
        buckets = groups.get(group)
        if buckets is None:
            buckets = groups[group] = [[] for _ in agg_plan]
        for slot, (aggregate, index, _type) in enumerate(agg_plan):
            if index is None:
                buckets[slot].append(1)
            else:
                value = row[index]
                if value is not None:
                    buckets[slot].append(value)

    def finalize(buckets: List[List[Any]]) -> Tuple[Any, ...]:
        return tuple(
            _finalize_aggregate(aggregate, field_type, buckets[slot])
            for slot, (aggregate, _index, field_type) in enumerate(agg_plan)
        )

    if group_index is None:
        buckets = groups.get(None, [[] for _ in agg_plan])
        return [(None, finalize(buckets))]
    return [(group, finalize(groups[group])) for group in sorted(groups)]


# ----------------------------------------------------------------------------------------
# Partitioned execution (parallel / distributed baselines)
# ----------------------------------------------------------------------------------------

def merge_row_partials(partials: Sequence[List[RowValues]], counter=None) -> List[RowValues]:
    """Concatenate per-partition row lists (charging the merge counter).

    Row-level merging keeps aggregation order-independent: the driver
    aggregates the full row multiset once, so float sums are a single
    exactly-rounded :func:`math.fsum` rather than a sum of partial sums.
    """
    merged: List[RowValues] = []
    for rows in partials:
        if counter is not None and rows:
            counter.charge(compute_ops=2.0 * len(rows), memory_bytes=12.0 * len(rows))
        merged.extend(rows)
    return merged


def relational_result_entry_count(result: List[Tuple[Any, Tuple[Any, ...]]]) -> int:
    """Result entries shuffled/merged for a relational result (group rows)."""
    return len(result)
