"""Compressed-domain relational analytics (SQL-style plan family).

Corpus files become typed rows through a declarative
:class:`~repro.relational.spec.RowSchema`, and
:class:`~repro.relational.spec.RelationalQuery` describes SELECT-style
filter / group-by / aggregate computations executed directly on the
grammar — rule-level partial parse states are built bottom-up and
memoized in the device session, so decompressed rows are never
materialized.
"""

from repro.relational.spec import (
    AGGREGATE_OPS,
    CONDITION_OPS,
    FIELD_TYPES,
    Aggregate,
    Condition,
    FieldSpec,
    RelationalQuery,
    RowSchema,
)
from repro.relational.compute import execute_relational, row_from_tokens

__all__ = [
    "AGGREGATE_OPS",
    "CONDITION_OPS",
    "FIELD_TYPES",
    "Aggregate",
    "Condition",
    "FieldSpec",
    "RelationalQuery",
    "RowSchema",
    "execute_relational",
    "row_from_tokens",
]
