"""Declarative relational schemas and SELECT-style query specs.

The relational subsystem treats every corpus file as one *row*.  A
:class:`RowSchema` declares how typed field values are parsed out of a
file's token stream — either *delimited* (a delimiter token splits the
stream into columns) or *keyed* (a field's value is the token following
its key token) — and a :class:`RelationalQuery` describes a SELECT-style
computation over those rows: an ANDed predicate, an optional group-by
field, and a tuple of aggregates (count/sum/min/max/avg) with optional
ordering.

Every class here is a frozen, hashable dataclass: a relational spec
travels through ``Query.extras`` and participates in query equality and
hashing, so it can key result caches and serving coalescing groups the
same way the rest of the query does.  All validation happens at
construction so an unusable spec fails before it reaches an engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

__all__ = [
    "FIELD_TYPES",
    "CONDITION_OPS",
    "AGGREGATE_OPS",
    "FieldSpec",
    "RowSchema",
    "Condition",
    "Aggregate",
    "RelationalQuery",
]

#: Supported field value types (parse failures yield ``None``).
FIELD_TYPES = ("str", "int", "float")
#: Supported predicate comparison operators.
CONDITION_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
#: Supported aggregate operators.
AGGREGATE_OPS = ("count", "sum", "min", "max", "avg")
#: Aggregates that require a numeric field.
_NUMERIC_AGGS = ("sum", "avg")


@dataclass(frozen=True)
class FieldSpec:
    """One typed field of a row schema.

    ``column`` locates the field in delimited schemas (column 0 is the
    file's first token, column ``c`` >= 1 is the token following the
    ``c``-th delimiter occurrence); ``key`` locates it in keyed schemas
    (the token following the first occurrence of the key token).
    """

    name: str
    type: str = "str"
    column: Optional[int] = None
    key: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("field name must be a non-empty string")
        if self.type not in FIELD_TYPES:
            raise ValueError(
                f"field {self.name!r}: type must be one of {FIELD_TYPES}, got {self.type!r}"
            )
        if self.column is not None and self.column < 0:
            raise ValueError(f"field {self.name!r}: column must be >= 0")
        if self.key is not None and not self.key:
            raise ValueError(f"field {self.name!r}: key must be a non-empty token")
        if (self.column is None) == (self.key is None):
            raise ValueError(
                f"field {self.name!r}: exactly one of column/key must be set"
            )

    @property
    def is_numeric(self) -> bool:
        return self.type in ("int", "float")


@dataclass(frozen=True)
class RowSchema:
    """How one file's token stream becomes a typed row.

    With a ``delimiter`` token the schema is *delimited* and every field
    must carry a ``column``; without one it is *keyed* and every field
    must carry a ``key``.  Field names are unique.
    """

    fields: Tuple[FieldSpec, ...]
    delimiter: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", tuple(self.fields))
        if not self.fields:
            raise ValueError("a row schema needs at least one field")
        names = [spec.name for spec in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in schema: {names}")
        if self.delimiter is not None and not self.delimiter:
            raise ValueError("delimiter must be a non-empty token")
        for spec in self.fields:
            if self.delimiter is not None and spec.column is None:
                raise ValueError(
                    f"delimited schema: field {spec.name!r} must use column addressing"
                )
            if self.delimiter is None and spec.key is None:
                raise ValueError(
                    f"keyed schema: field {spec.name!r} must use key addressing"
                )

    # -- lookups -----------------------------------------------------------------------
    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.fields)

    def field_index(self, name: str) -> int:
        for index, spec in enumerate(self.fields):
            if spec.name == name:
                return index
        raise KeyError(f"schema has no field {name!r}; fields are {self.field_names}")

    def field(self, name: str) -> FieldSpec:
        return self.fields[self.field_index(name)]

    @property
    def max_column(self) -> int:
        """Highest column any field addresses (0 for keyed schemas)."""
        if self.delimiter is None:
            return 0
        return max(spec.column for spec in self.fields)

    @property
    def anchor_words(self) -> Tuple[str, ...]:
        """The anchor tokens row parsing tracks followers of.

        Delimited schemas track the delimiter; keyed schemas track each
        distinct key token (first-use order, deterministic).
        """
        if self.delimiter is not None:
            return (self.delimiter,)
        return tuple(dict.fromkeys(spec.key for spec in self.fields))


@dataclass(frozen=True)
class Condition:
    """One ANDed predicate term: ``field <op> value``.

    A row whose field value is ``None`` (missing/unparseable) never
    satisfies any condition.
    """

    field: str
    op: str
    value: Union[str, int, float]

    def __post_init__(self) -> None:
        if self.op not in CONDITION_OPS:
            raise ValueError(
                f"condition on {self.field!r}: op must be one of {CONDITION_OPS}, got {self.op!r}"
            )
        hash(self.value)  # conditions must stay hashable (cache keys)


@dataclass(frozen=True)
class Aggregate:
    """One aggregate column: ``count`` or ``<op>(<field>)``."""

    op: str
    field: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in AGGREGATE_OPS:
            raise ValueError(
                f"aggregate op must be one of {AGGREGATE_OPS}, got {self.op!r}"
            )
        if self.op == "count":
            if self.field is not None:
                raise ValueError("count takes no field")
        elif self.field is None:
            raise ValueError(f"aggregate {self.op!r} needs a field")

    @property
    def label(self) -> str:
        return self.op if self.field is None else f"{self.op}({self.field})"


@dataclass(frozen=True)
class RelationalQuery:
    """One SELECT-style query over a :class:`RowSchema`.

    ``predicate`` terms are ANDed; rows whose ``group_by`` value is
    ``None`` are excluded from grouping; ``order_by`` names an aggregate
    label (descending by value, ties by group) and is applied together
    with the query's ``top_k`` during result shaping.
    """

    schema: RowSchema
    predicate: Tuple[Condition, ...] = ()
    group_by: Optional[str] = None
    aggregates: Tuple[Aggregate, ...] = field(default_factory=lambda: (Aggregate("count"),))
    order_by: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "predicate", tuple(self.predicate))
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        if not self.aggregates:
            raise ValueError("a relational query needs at least one aggregate")
        for condition in self.predicate:
            self.schema.field_index(condition.field)  # raises on unknown fields
        if self.group_by is not None:
            self.schema.field_index(self.group_by)
        for aggregate in self.aggregates:
            if aggregate.field is None:
                continue
            spec = self.schema.field(aggregate.field)
            if aggregate.op in _NUMERIC_AGGS and not spec.is_numeric:
                raise ValueError(
                    f"aggregate {aggregate.label!r} needs a numeric field, "
                    f"but {spec.name!r} has type {spec.type!r}"
                )
        if self.order_by is not None and self.order_by not in self.aggregate_labels:
            raise ValueError(
                f"order_by {self.order_by!r} does not name an aggregate; "
                f"available: {self.aggregate_labels}"
            )

    @property
    def aggregate_labels(self) -> Tuple[str, ...]:
        return tuple(aggregate.label for aggregate in self.aggregates)

    def describe(self) -> str:
        """A compact human-readable description (CLI/log output)."""
        parts = [", ".join(self.aggregate_labels)]
        if self.predicate:
            parts.append(
                "where " + " and ".join(
                    f"{c.field} {c.op} {c.value!r}" for c in self.predicate
                )
            )
        if self.group_by is not None:
            parts.append(f"group by {self.group_by}")
        if self.order_by is not None:
            parts.append(f"order by {self.order_by} desc")
        return " ".join(parts)
