"""Incremental session maintenance across corpus epochs.

When a live :class:`~repro.compression.compressor.CompressedCorpus` is
appended to, most of the grammar survives verbatim: Sequitur is online,
so the old root body becomes a prefix of the new one and every old rule
keeps its exact subtree — only the dense rule *ids* move (the grammar
conversion re-discovers rules in DFS order, and the appended tail's
rules are discovered before old interior rules).  This module

1. diffs the old session layout against the new grammar
   (:func:`compute_grammar_delta`) using *structural interning*: digram
   uniqueness guarantees rule bodies are unique within a grammar, so
   matching bodies (with child references replaced by their intern ids)
   identifies old and new rules exactly, with no collisions; and
2. rebuilds only the changed rules' cached state
   (``delta_*`` builders), one kernel launch per state family instead
   of one launch per DAG wavefront level — the changed set is processed
   children-first inside a single launch, which is what makes a warm
   append strictly cheaper than a cold rebuild.

The diff is *empirical*, not assumed: appended content can in principle
restructure old rules (a new digram matching one inside old content, or
rule-utility inlining), and any such restructuring breaks the prefix
check, in which case the caller falls back to a full rebuild.  Weights
are salvaged additively — rule occurrence counts are linear in the root
body's references, so the new tail's contribution propagates down the
touched sub-DAG and adds onto the old values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.compression.grammar import is_rule_ref, rule_ref_id
from repro.core.layout import DeviceRuleLayout
from repro.core.sequence import (
    SequenceBuffers,
    _gather_prefix,
    _gather_suffix,
)
from repro.gpusim.device import GPUDevice
from repro.perf import workcosts as wc

__all__ = [
    "GrammarDelta",
    "compute_grammar_delta",
    "delta_prep",
    "delta_bounds",
    "delta_local_tables",
    "delta_rule_weights",
    "delta_file_weights",
    "delta_sequence_buffers",
    "delta_relational_tables",
]


@dataclass
class GrammarDelta:
    """Exact correspondence between two epochs of one corpus's grammar."""

    #: Layout of the new epoch (the session adopts it wholesale).
    new_layout: DeviceRuleLayout
    #: Old rule id -> new rule id for every structurally-surviving rule
    #: (root included as ``0 -> 0``).  Covers *all* old rules — partial
    #: survival falls back to a rebuild before a delta is ever built.
    id_map: Dict[int, int]
    #: New rule id -> old rule id (inverse of :attr:`id_map`).
    reverse_map: Dict[int, int]
    #: New rule ids with no old counterpart, children-first, so a single
    #: sequential launch can build each one from ready inputs.
    changed: List[int]
    old_num_files: int
    old_vocabulary_size: int
    #: Per new rule id: ``{file index: occurrences}`` contributed by the
    #: appended part of the root body (all file indices are new files).
    tail_sources: Dict[int, Dict[int, int]]
    #: Rules (new ids) reachable from :attr:`tail_sources`, in top-down
    #: order — the only rules whose weights change.
    touched_topdown: List[int]

    @property
    def changed_fraction(self) -> float:
        return len(self.changed) / max(1, self.new_layout.num_rules)


def _intern_rules(
    rule_bodies: List[List[int]],
    bottom_up: List[int],
    intern: Dict[Tuple, int],
) -> Dict[int, int]:
    """Intern id of every non-root rule's body, children-first.

    Child references are replaced by the child's intern id, so equal
    intern ids mean structurally identical subtrees — across grammars
    sharing the ``intern`` dict.
    """
    intern_of: Dict[int, int] = {}
    for rule_id in bottom_up:
        if rule_id == 0:
            continue
        key = tuple(
            ("r", intern_of[rule_ref_id(symbol)]) if is_rule_ref(symbol) else ("t", symbol)
            for symbol in rule_bodies[rule_id]
        )
        intern_id = intern.get(key)
        if intern_id is None:
            intern_id = len(intern)
            intern[key] = intern_id
        intern_of[rule_id] = intern_id
    return intern_of


def _grammar_bottom_up(rule_bodies: List[List[int]]) -> List[int]:
    """Children-before-parents order via an iterative DFS from the root."""
    order: List[int] = []
    visited = [False] * len(rule_bodies)
    stack: List[Tuple[int, bool]] = [(0, False)]
    while stack:
        rule_id, expanded = stack.pop()
        if expanded:
            order.append(rule_id)
            continue
        if visited[rule_id]:
            continue
        visited[rule_id] = True
        stack.append((rule_id, True))
        for symbol in rule_bodies[rule_id]:
            if is_rule_ref(symbol):
                child = rule_ref_id(symbol)
                if not visited[child]:
                    stack.append((child, False))
    return order


def compute_grammar_delta(
    old_layout: DeviceRuleLayout, compressed
) -> Optional[GrammarDelta]:
    """Diff ``old_layout`` against the corpus's current grammar.

    Returns ``None`` when the old epoch did not survive as a stable
    prefix of the new one (any restructuring of old rules, a changed old
    root segment, a removed file): the caller must rebuild.  The caller
    holds the corpus lock.
    """
    if old_layout.num_files == 0 or old_layout.num_rules == 0:
        return None
    new_layout = DeviceRuleLayout.from_compressed(compressed)
    if new_layout.num_files < old_layout.num_files:
        return None
    old_root = old_layout.root_symbols
    new_root = new_layout.root_symbols
    if len(new_root) < len(old_root):
        return None

    intern: Dict[Tuple, int] = {}
    old_intern = _intern_rules(
        old_layout.rule_bodies, _grammar_bottom_up(old_layout.rule_bodies), intern
    )
    new_bottom_up = _grammar_bottom_up(new_layout.rule_bodies)
    new_intern = _intern_rules(new_layout.rule_bodies, new_bottom_up, intern)

    old_by_intern: Dict[int, int] = {}
    for old_id, intern_id in old_intern.items():
        if intern_id in old_by_intern:
            return None  # duplicate bodies: digram uniqueness violated upstream
        old_by_intern[intern_id] = old_id
    id_map: Dict[int, int] = {0: 0}
    reverse_map: Dict[int, int] = {0: 0}
    for new_id, intern_id in new_intern.items():
        old_id = old_by_intern.get(intern_id)
        if old_id is not None:
            id_map[old_id] = new_id
            reverse_map[new_id] = old_id
    if len(id_map) != old_layout.num_rules:
        return None  # some old rule was restructured or dropped

    # Root-prefix stability: position by position, old words stay, old
    # rule refs map to their structural match, and old splitters sit at
    # the same boundaries with the same boundary index (their ids move —
    # splitters renumber past the grown vocabulary).
    new_num_words = new_layout.vocabulary_size
    old_boundary_index = {
        segment_end: boundary
        for boundary, (_start, segment_end) in enumerate(old_layout.root_segments[:-1])
    }
    for position in range(len(old_root)):
        old_symbol = old_root[position]
        new_symbol = new_root[position]
        boundary = old_boundary_index.get(position)
        if boundary is not None:
            if is_rule_ref(new_symbol) or new_symbol != new_num_words + boundary:
                return None
            continue
        if is_rule_ref(old_symbol):
            if not is_rule_ref(new_symbol):
                return None
            if id_map[rule_ref_id(old_symbol)] != rule_ref_id(new_symbol):
                return None
        elif new_symbol != old_symbol:
            return None
    if len(new_root) > len(old_root):
        # The appended tail must open with the next boundary's splitter,
        # so every old file segment is exactly preserved.
        if new_layout.num_files <= old_layout.num_files:
            return None
        if new_root[len(old_root)] != new_num_words + (old_layout.num_files - 1):
            return None

    changed = [
        rule_id
        for rule_id in new_bottom_up
        if rule_id != 0 and rule_id not in reverse_map
    ]

    tail_sources: Dict[int, Dict[int, int]] = {}
    for element in new_layout.root_elements:
        if element.position < len(old_root) or not element.is_rule:
            continue
        if element.file_index < old_layout.num_files:
            return None  # tail content attributed to an old file: not an append
        child = rule_ref_id(element.symbol)
        per_file = tail_sources.setdefault(child, {})
        per_file[element.file_index] = per_file.get(element.file_index, 0) + 1

    # Weight-touched rules: everything reachable from the tail's direct
    # references, visited top-down so one sequential pass can propagate.
    touched = set(tail_sources)
    for rule_id in reversed(new_bottom_up):
        if rule_id in touched:
            for child, _frequency in new_layout.subrules[rule_id]:
                touched.add(child)
    touched_topdown = [
        rule_id for rule_id in reversed(new_bottom_up) if rule_id in touched and rule_id != 0
    ]

    return GrammarDelta(
        new_layout=new_layout,
        id_map=id_map,
        reverse_map=reverse_map,
        changed=changed,
        old_num_files=old_layout.num_files,
        old_vocabulary_size=old_layout.vocabulary_size,
        tail_sources=tail_sources,
        touched_topdown=touched_topdown,
    )


# ----------------------------------------------------------------------------------------
# Delta state builders: one launch each, changed rules only
# ----------------------------------------------------------------------------------------

def delta_prep(delta: GrammarDelta, device: GPUDevice) -> bool:
    """Re-run data-structure preparation for the changed rules only."""
    layout = delta.new_layout
    changed = delta.changed
    device.record.host_counter.charge(
        compute_ops=4.0 * len(changed), memory_bytes=8.0 * len(changed)
    )

    def prep_kernel(tid: int, ctx) -> None:
        if tid >= len(changed):
            return
        length = layout.rule_lengths[changed[tid]]
        ctx.charge(
            ops=wc.SYMBOL_VISIT_OPS * length + wc.MASK_CHECK_OPS,
            memory_bytes=wc.SYMBOL_VISIT_BYTES * length,
        )

    device.launch("deltaPrepKernel", prep_kernel, max(1, len(changed)))
    return True


def delta_bounds(
    delta: GrammarDelta, old_bounds: List[int], device: GPUDevice
) -> List[int]:
    """Local-table bounds for the new epoch: salvage matched, size changed."""
    layout = delta.new_layout
    bounds = [0] * layout.num_rules
    for old_id, new_id in delta.id_map.items():
        bounds[new_id] = old_bounds[old_id]
    changed = delta.changed

    def bound_kernel(tid: int, ctx) -> None:
        if tid >= len(changed):
            return
        rule_id = changed[tid]
        bound = len(layout.local_words[rule_id])
        ctx.charge(ops=wc.SYMBOL_VISIT_OPS, memory_bytes=8.0)
        for child, _frequency in layout.subrules[rule_id]:
            ctx.charge(ops=wc.EDGE_VISIT_OPS, memory_bytes=wc.EDGE_VISIT_BYTES)
            bound += bounds[child]
        bounds[rule_id] = min(bound, layout.vocabulary_size)

    device.launch("deltaBoundKernel", bound_kernel, max(1, len(changed)))
    return bounds


def delta_local_tables(
    delta: GrammarDelta, old_tables: List[Dict[int, int]], device: GPUDevice
) -> List[Dict[int, int]]:
    """Subtree-complete word tables: matched subtrees are identical, reuse."""
    layout = delta.new_layout
    tables: List[Dict[int, int]] = [dict() for _ in range(layout.num_rules)]
    for old_id, new_id in delta.id_map.items():
        if new_id != 0:
            tables[new_id] = old_tables[old_id]
    changed = delta.changed

    def loc_tbl_kernel(tid: int, ctx) -> None:
        if tid >= len(changed):
            return
        rule_id = changed[tid]
        table = tables[rule_id]
        for word_id, count in layout.local_words[rule_id]:
            ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
            table[word_id] = table.get(word_id, 0) + count
        for child, frequency in layout.subrules[rule_id]:
            ctx.charge(ops=wc.EDGE_VISIT_OPS, memory_bytes=wc.EDGE_VISIT_BYTES)
            for word_id, count in tables[child].items():
                ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
                table[word_id] = table.get(word_id, 0) + count * frequency

    device.launch("deltaLocTblKernel", loc_tbl_kernel, max(1, len(changed)))
    return tables


def delta_rule_weights(
    delta: GrammarDelta, old_weights: List[int], device: GPUDevice
) -> List[int]:
    """Occurrence weights: old values plus the appended tail's contribution."""
    layout = delta.new_layout
    weights = [0] * layout.num_rules
    weights[0] = 1
    for old_id, new_id in delta.id_map.items():
        if new_id != 0:
            weights[new_id] = old_weights[old_id]
    order = delta.touched_topdown
    increments: Dict[int, int] = {}
    for rule_id, per_file in delta.tail_sources.items():
        increments[rule_id] = sum(per_file.values())

    def topdown_kernel(tid: int, ctx) -> None:
        if tid >= len(order):
            return
        rule_id = order[tid]
        ctx.charge(ops=wc.MASK_CHECK_OPS + wc.WEIGHT_UPDATE_OPS, memory_bytes=16.0)
        increment = increments.get(rule_id, 0)
        if increment == 0:
            return
        weights[rule_id] += increment
        for child, frequency in layout.subrules[rule_id]:
            ctx.charge(ops=wc.EDGE_VISIT_OPS, memory_bytes=wc.EDGE_VISIT_BYTES)
            increments[child] = increments.get(child, 0) + frequency * increment

    device.launch("deltaTopDownKernel", topdown_kernel, max(1, len(order)))
    return weights


def delta_file_weights(
    delta: GrammarDelta, old_file_weights: List[Dict[int, int]], device: GPUDevice
) -> List[Dict[int, int]]:
    """Per-file weights: old files' tables survive, new files propagate down."""
    layout = delta.new_layout
    file_weights: List[Dict[int, int]] = [dict() for _ in range(layout.num_rules)]
    for old_id, new_id in delta.id_map.items():
        if new_id != 0:
            file_weights[new_id] = dict(old_file_weights[old_id])
    order = delta.touched_topdown
    increments: Dict[int, Dict[int, int]] = {
        rule_id: dict(per_file) for rule_id, per_file in delta.tail_sources.items()
    }

    def topdown_kernel(tid: int, ctx) -> None:
        if tid >= len(order):
            return
        rule_id = order[tid]
        ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=16.0)
        own = increments.get(rule_id)
        if not own:
            return
        table = file_weights[rule_id]
        for file_index, weight in own.items():
            ctx.charge(ops=wc.WEIGHT_UPDATE_OPS, memory_bytes=8.0)
            table[file_index] = table.get(file_index, 0) + weight
        for child, frequency in layout.subrules[rule_id]:
            ctx.charge(ops=wc.EDGE_VISIT_OPS, memory_bytes=wc.EDGE_VISIT_BYTES)
            child_increments = increments.setdefault(child, {})
            for file_index, weight in own.items():
                ctx.charge(ops=wc.WEIGHT_UPDATE_OPS + 1.0, memory_bytes=wc.SYMBOL_VISIT_BYTES)
                ctx.atomic_ops += 1.0
                child_increments[file_index] = (
                    child_increments.get(file_index, 0) + frequency * weight
                )

    device.launch("deltaTopDownFileKernel", topdown_kernel, max(1, len(order)))
    return file_weights


def delta_sequence_buffers(
    delta: GrammarDelta, old_buffers: SequenceBuffers, device: GPUDevice
) -> SequenceBuffers:
    """Head/tail buffers for one length: fill only the changed rules."""
    layout = delta.new_layout
    sequence_length = old_buffers.sequence_length
    limit = max(0, sequence_length - 1)
    short_limit = 2 * limit
    num_rules = layout.num_rules
    heads: List[Optional[List[int]]] = [None] * num_rules
    tails: List[Optional[List[int]]] = [None] * num_rules
    short_expansions: List[Optional[List[int]]] = [None] * num_rules
    ready = [False] * num_rules
    ready[0] = True
    heads[0] = []
    tails[0] = []
    for old_id, new_id in delta.id_map.items():
        if new_id == 0:
            continue
        heads[new_id] = old_buffers.heads[old_id]
        tails[new_id] = old_buffers.tails[old_id]
        short_expansions[new_id] = old_buffers.short_expansions[old_id]
        ready[new_id] = True
    changed = delta.changed

    def head_tail_kernel(tid: int, ctx) -> None:
        if tid >= len(changed):
            return
        rule_id = changed[tid]
        ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=4.0)
        head = _gather_prefix(layout, rule_id, limit, heads, short_expansions, ready, ctx)
        tail = _gather_suffix(layout, rule_id, limit, tails, short_expansions, ready, ctx)
        if head is None or tail is None:
            # changed is children-first, so every input is ready by now.
            return
        short: Optional[List[int]] = None
        if layout.expansion_lengths[rule_id] <= short_limit:
            short = _gather_prefix(
                layout,
                rule_id,
                layout.expansion_lengths[rule_id],
                heads,
                short_expansions,
                ready,
                ctx,
            )
        heads[rule_id] = head
        tails[rule_id] = tail
        short_expansions[rule_id] = short
        ready[rule_id] = True

    device.launch("deltaHeadTailKernel", head_tail_kernel, max(1, len(changed)))
    if not all(ready):
        raise RuntimeError("delta head/tail fill left rules unready")
    return SequenceBuffers(
        sequence_length=sequence_length,
        heads=[head if head is not None else [] for head in heads],
        tails=[tail if tail is not None else [] for tail in tails],
        short_expansions=short_expansions,
        rounds=old_buffers.rounds,
    )


def delta_relational_tables(
    delta: GrammarDelta, old_states: List[Any], schema, dictionary, device: GPUDevice
) -> Optional[List[Any]]:
    """Per-rule relational parse states, or ``None`` when they cannot survive.

    A schema key word first appearing in appended content grows the
    anchor set, changing every state's arity — detected by an anchor id
    beyond the old vocabulary — and the schema's states are dropped for
    a lazy rebuild instead.
    """
    from repro.relational import compute as rc

    anchors = rc.anchor_ids(schema, dictionary)
    if any(anchor >= delta.old_vocabulary_size for anchor in anchors):
        return None
    caps = rc.schema_caps(schema)
    layout = delta.new_layout
    num_rules = layout.num_rules
    states: List[Any] = [rc.empty_state(len(anchors)) for _ in range(num_rules)]
    for old_id, new_id in delta.id_map.items():
        if new_id != 0:
            states[new_id] = old_states[old_id]
    changed = delta.changed

    def parse_kernel(tid: int, ctx) -> None:
        if tid >= len(changed):
            return
        rule_id = changed[tid]
        body = layout.rule_bodies[rule_id]
        ctx.charge(
            ops=wc.SYMBOL_VISIT_OPS * len(body),
            memory_bytes=wc.SYMBOL_VISIT_BYTES * len(body),
        )
        states[rule_id] = rc.fold_symbol_states(body, states, anchors, caps)

    device.launch("deltaRelParseKernel", parse_kernel, max(1, len(changed)))
    return states
