"""Declarative task plans: required session state + traversal program.

The seed engine dispatched tasks through an ``if/elif`` ladder and
threaded unused parameters into every task program.  This module replaces
that with a registry: each :class:`~repro.analytics.base.Task` maps to a
:class:`TaskPlan` that declares

* which :class:`~repro.core.session.DeviceSession` state the traversal
  needs for a given strategy (``requires``), and
* the *marginal* traversal program (``traverse``) that consumes the
  session state and launches only the task-specific kernels.

Plans are parameterised per query through :class:`QueryParams`: a query
may override the engine's configured sequence length (the session keeps
per-length head/tail buffers side by side) and may restrict the task to
a subset of files, in which case the traversal programs only perform the
marginal work for that subset — corpus-wide tasks switch to the per-file
machinery restricted to the subset, file-sensitive tasks reduce only the
requested files, and sequence counting restricts both the root segments
and the per-rule occurrence weights to the subset.

The engine ensures the required state on the session (charging its
construction once per session), then runs the plan's traversal on a
per-task device/record.  Adding a new analytics task means registering a
plan here — no engine changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analytics.base import Task, TaskResult
from repro.analytics.derive import (
    decode_per_file_counts,
    decode_sequence_counts,
    decode_word_counts,
    per_file_counts_to_inverted_index,
    per_file_counts_to_ranked_inverted_index,
    per_file_counts_to_term_vector,
    word_count_to_sort,
)
from repro.core.session import (
    BOTTOMUP_BOUNDS,
    FILE_WEIGHTS,
    LOCAL_TABLES,
    RULE_WEIGHTS,
    DeviceSession,
    GTadocConfig,
    StateKey,
    relational_rows_key,
    relational_tables_key,
    sequence_buffers_key,
)
from repro.core.strategy import TraversalStrategy
from repro.core.traversal import (
    bottomup_per_file_counts,
    bottomup_word_count,
    relational_filter_aggregate,
    topdown_per_file_counts,
    topdown_word_count,
)
from repro.relational.spec import RelationalQuery
from repro.core.sequence import sequence_counts
from repro.gpusim.device import GPUDevice

__all__ = [
    "QueryParams",
    "DEFAULT_PARAMS",
    "TaskPlan",
    "PLAN_REGISTRY",
    "plan_for",
    "fused_execution_strategies",
    "fused_required_state",
    "run_fused_program",
]


@dataclass(frozen=True)
class QueryParams:
    """Per-query knobs a plan execution honours.

    ``sequence_length`` overrides the engine config for sequence-sensitive
    tasks (``None`` means "use the configured default"); ``file_indices``
    restricts the query to a subset of files so the traversal does only
    the marginal work for those files; ``relational`` carries the query
    spec for :attr:`~repro.analytics.base.Task.RELATIONAL`.
    """

    sequence_length: Optional[int] = None
    file_indices: Optional[Tuple[int, ...]] = None
    relational: Optional[RelationalQuery] = None

    def __post_init__(self) -> None:
        if self.sequence_length is not None and self.sequence_length < 1:
            raise ValueError("sequence_length must be >= 1")
        if self.file_indices is not None:
            object.__setattr__(self, "file_indices", tuple(sorted(set(self.file_indices))))
            if not self.file_indices:
                raise ValueError("file_indices must name at least one file")
        if self.relational is not None and not isinstance(self.relational, RelationalQuery):
            raise ValueError(
                f"relational must be a RelationalQuery, got {type(self.relational).__name__}"
            )

    def effective_sequence_length(self, config: GTadocConfig) -> int:
        return self.sequence_length if self.sequence_length is not None else config.sequence_length

    @property
    def filtered(self) -> bool:
        return self.file_indices is not None


#: The "plain query" every seed entry point implicitly used.
DEFAULT_PARAMS = QueryParams()

RequiresFn = Callable[[TraversalStrategy, GTadocConfig, QueryParams], Tuple[StateKey, ...]]
TraverseFn = Callable[[DeviceSession, GPUDevice, TraversalStrategy, QueryParams], TaskResult]


@dataclass(frozen=True)
class TaskPlan:
    """One task's declarative execution plan."""

    task: Task
    #: Session state the traversal consumes under a given strategy/config/query.
    requires: RequiresFn
    #: Marginal traversal program: session state in, raw task result out.
    traverse: TraverseFn
    #: Strategy this task always uses, overriding selector and caller
    #: (sequence count has its own head/tail pipeline).
    fixed_strategy: Optional[TraversalStrategy] = None

    def required_state(
        self,
        strategy: TraversalStrategy,
        config: GTadocConfig,
        params: QueryParams = DEFAULT_PARAMS,
    ) -> Tuple[StateKey, ...]:
        return self.requires(strategy, config, params)


# ----------------------------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------------------------

def _filtered_per_file_counts(
    session: DeviceSession,
    device: GPUDevice,
    strategy: TraversalStrategy,
    params: QueryParams,
) -> List[Dict[int, int]]:
    """Per-file word-id counts restricted to the query's file subset."""
    layout = session.layout
    if strategy is TraversalStrategy.TOP_DOWN:
        return topdown_per_file_counts(
            layout,
            session.scheduler,
            device,
            file_weights=session.state(FILE_WEIGHTS),
            file_indices=params.file_indices,
        )
    return bottomup_per_file_counts(
        layout,
        device,
        local_tables=session.state(LOCAL_TABLES),
        file_indices=params.file_indices,
    )


def _decode_file_subset(
    session: DeviceSession, per_file: List[Dict[int, int]], params: QueryParams
) -> Dict[str, Dict[str, int]]:
    """Decode per-file counts, keeping only the query's file subset."""
    indices = list(params.file_indices)
    names = [session.compressed.file_names[index] for index in indices]
    return decode_per_file_counts(
        [per_file[index] for index in indices], names, session.compressed.dictionary
    )


# ----------------------------------------------------------------------------------------
# Corpus-wide counts (word count, sort)
# ----------------------------------------------------------------------------------------

def _corpus_requires(
    strategy: TraversalStrategy, config: GTadocConfig, params: QueryParams = DEFAULT_PARAMS
) -> Tuple[StateKey, ...]:
    if params.filtered:
        # Restricted corpus-wide counts go through the per-file machinery.
        if strategy is TraversalStrategy.TOP_DOWN:
            return (FILE_WEIGHTS,)
        return (BOTTOMUP_BOUNDS, LOCAL_TABLES)
    if strategy is TraversalStrategy.TOP_DOWN:
        return (RULE_WEIGHTS,)
    return (BOTTOMUP_BOUNDS, LOCAL_TABLES)


def _make_corpus_traverse(task: Task) -> TraverseFn:
    def traverse(
        session: DeviceSession,
        device: GPUDevice,
        strategy: TraversalStrategy,
        params: QueryParams = DEFAULT_PARAMS,
    ) -> TaskResult:
        layout = session.layout
        if params.filtered:
            per_file = _filtered_per_file_counts(session, device, strategy, params)
            counts: Dict[int, int] = {}
            for file_index in params.file_indices:
                for word_id, count in per_file[file_index].items():
                    counts[word_id] = counts.get(word_id, 0) + count
        elif strategy is TraversalStrategy.TOP_DOWN:
            counts = topdown_word_count(
                layout, session.scheduler, device, weights=session.state(RULE_WEIGHTS)
            )
        else:
            counts = bottomup_word_count(
                layout, device, local_tables=session.state(LOCAL_TABLES)
            )
        word_counts = decode_word_counts(counts, session.compressed.dictionary)
        if task is Task.SORT:
            return word_count_to_sort(word_counts)
        return word_counts

    return traverse


# ----------------------------------------------------------------------------------------
# File-sensitive counts (inverted index, term vector, ranked inverted index)
# ----------------------------------------------------------------------------------------

def _file_requires(
    strategy: TraversalStrategy, config: GTadocConfig, params: QueryParams = DEFAULT_PARAMS
) -> Tuple[StateKey, ...]:
    if strategy is TraversalStrategy.TOP_DOWN:
        return (FILE_WEIGHTS,)
    return (BOTTOMUP_BOUNDS, LOCAL_TABLES)


def _make_file_traverse(task: Task) -> TraverseFn:
    def traverse(
        session: DeviceSession,
        device: GPUDevice,
        strategy: TraversalStrategy,
        params: QueryParams = DEFAULT_PARAMS,
    ) -> TaskResult:
        layout = session.layout
        if params.filtered:
            per_file = _filtered_per_file_counts(session, device, strategy, params)
            term_vector = _decode_file_subset(session, per_file, params)
        else:
            if strategy is TraversalStrategy.TOP_DOWN:
                per_file = topdown_per_file_counts(
                    layout, session.scheduler, device, file_weights=session.state(FILE_WEIGHTS)
                )
            else:
                per_file = bottomup_per_file_counts(
                    layout, device, local_tables=session.state(LOCAL_TABLES)
                )
            term_vector = decode_per_file_counts(
                per_file, session.compressed.file_names, session.compressed.dictionary
            )
        if task is Task.TERM_VECTOR:
            return per_file_counts_to_term_vector(term_vector)
        if task is Task.INVERTED_INDEX:
            return per_file_counts_to_inverted_index(term_vector)
        return per_file_counts_to_ranked_inverted_index(term_vector)

    return traverse


# ----------------------------------------------------------------------------------------
# Sequence count
# ----------------------------------------------------------------------------------------

def _sequence_requires(
    strategy: TraversalStrategy, config: GTadocConfig, params: QueryParams = DEFAULT_PARAMS
) -> Tuple[StateKey, ...]:
    length = params.effective_sequence_length(config)
    if params.filtered:
        # Restricted weights (occurrences within the subset) derive from
        # the per-file weight tables instead of the scalar rule weights.
        return (sequence_buffers_key(length), FILE_WEIGHTS)
    return (sequence_buffers_key(length), RULE_WEIGHTS)


def _sequence_traverse(
    session: DeviceSession,
    device: GPUDevice,
    strategy: TraversalStrategy,
    params: QueryParams = DEFAULT_PARAMS,
) -> TaskResult:
    length = params.effective_sequence_length(session.config)
    buffers = session.state(sequence_buffers_key(length))
    if params.filtered:
        file_weights = session.state(FILE_WEIGHTS)
        allowed = set(params.file_indices)
        weights = [
            sum(count for file_index, count in per_rule.items() if file_index in allowed)
            for per_rule in file_weights
        ]
        # Deriving the restricted weights is host-side control work.
        device.record.host_counter.charge(
            compute_ops=float(sum(len(per_rule) for per_rule in file_weights)),
            memory_bytes=8.0 * len(file_weights),
        )
    else:
        weights = session.state(RULE_WEIGHTS)
    counts = sequence_counts(
        session.layout,
        session.scheduler,
        device,
        buffers,
        weights,
        length,
        file_indices=params.file_indices,
    )
    return decode_sequence_counts(counts, session.compressed.dictionary)


# ----------------------------------------------------------------------------------------
# Relational analytics (filter / group-by / aggregate on the grammar)
# ----------------------------------------------------------------------------------------

def _relational_spec(params: QueryParams) -> RelationalQuery:
    if params.relational is None:
        raise ValueError(
            "the relational task needs a RelationalQuery spec "
            "(pass relational=... / Query.extras['relational'])"
        )
    return params.relational


def _relational_requires(
    strategy: TraversalStrategy, config: GTadocConfig, params: QueryParams = DEFAULT_PARAMS
) -> Tuple[StateKey, ...]:
    schema = _relational_spec(params).schema
    return (relational_tables_key(schema), relational_rows_key(schema))


def _relational_traverse(
    session: DeviceSession,
    device: GPUDevice,
    strategy: TraversalStrategy,
    params: QueryParams = DEFAULT_PARAMS,
) -> TaskResult:
    spec = _relational_spec(params)
    rows = session.state(relational_rows_key(spec.schema))
    return relational_filter_aggregate(
        session.layout, device, spec, rows, file_indices=params.file_indices
    )


# ----------------------------------------------------------------------------------------
# Cross-query fusion (serving micro-batches)
# ----------------------------------------------------------------------------------------

#: Tasks answered from corpus-wide word counts.
_CORPUS_TASKS = (Task.WORD_COUNT, Task.SORT)
#: Tasks answered from per-file word counts.
_FILE_TASKS = (Task.INVERTED_INDEX, Task.TERM_VECTOR, Task.RANKED_INVERTED_INDEX)


def _fused_families(
    tasks: List[Task],
) -> Tuple[List[Task], List[Task], List[Task], List[Task]]:
    """Split ``tasks`` into (corpus, file, sequence, relational) families."""
    corpus = [task for task in tasks if task in _CORPUS_TASKS]
    files = [task for task in tasks if task in _FILE_TASKS]
    sequences = [task for task in tasks if task is Task.SEQUENCE_COUNT]
    relational = [task for task in tasks if task is Task.RELATIONAL]
    return corpus, files, sequences, relational


def fused_execution_strategies(
    strategies: Dict[Task, TraversalStrategy],
) -> Dict[Task, TraversalStrategy]:
    """The strategy each task actually *executes* under in a fused pass.

    A family's primitive runs once, under the strategy of the family's
    first task, and every task served from that primitive reports the
    primitive's strategy (each task's own selector decision is still
    recorded separately).  Corpus-wide tasks co-batched with
    file-sensitive tasks are derived from the per-file primitive, so
    they adopt the file family's strategy.
    """
    corpus, files, _sequences, _relational = _fused_families(list(strategies))
    executed = dict(strategies)
    if files:
        lead = strategies[files[0]]
        for task in files + corpus:
            executed[task] = lead
    elif corpus:
        lead = strategies[corpus[0]]
        for task in corpus:
            executed[task] = lead
    return executed


def fused_required_state(
    strategies: Dict[Task, TraversalStrategy],
    config: GTadocConfig,
    params: QueryParams = DEFAULT_PARAMS,
) -> Tuple[StateKey, ...]:
    """Session state one fused pass over ``strategies`` consumes.

    Only the primitives that actually run are required — e.g. a corpus
    task derived from a co-batched per-file primitive never pulls in
    the scalar rule weights.
    """
    corpus, files, sequences, relational = _fused_families(list(strategies))
    executed = fused_execution_strategies(strategies)
    keys: List[StateKey] = []

    def extend(new_keys: Tuple[StateKey, ...]) -> None:
        for key in new_keys:
            if key not in keys:
                keys.append(key)

    if files:
        extend(_file_requires(executed[files[0]], config, params))
    elif corpus:
        extend(_corpus_requires(executed[corpus[0]], config, params))
    if sequences:
        extend(_sequence_requires(TraversalStrategy.TOP_DOWN, config, params))
    if relational:
        extend(_relational_requires(TraversalStrategy.BOTTOM_UP, config, params))
    return tuple(keys)


def run_fused_program(
    session: DeviceSession,
    device: GPUDevice,
    strategies: Dict[Task, TraversalStrategy],
    params: QueryParams = DEFAULT_PARAMS,
) -> Dict[Task, TaskResult]:
    """Serve every task in ``strategies`` from one shared traversal pass.

    Each result family's primitive runs exactly once on ``device``: the
    per-file counts feed all file-sensitive tasks *and* (by host-side
    aggregation) any co-batched corpus-wide tasks, the corpus-wide
    reduce runs only when no per-file primitive is needed, and sequence
    counting keeps its own head/tail pipeline.  Results are identical
    to per-task execution; the caller attributes the fused record.
    """
    layout = session.layout
    executed = fused_execution_strategies(strategies)
    corpus_tasks, file_tasks, sequence_tasks, relational_tasks = _fused_families(
        list(strategies)
    )
    results: Dict[Task, TaskResult] = {}

    per_file: Optional[List[Dict[int, int]]] = None
    if file_tasks or (corpus_tasks and params.filtered):
        lead = file_tasks[0] if file_tasks else corpus_tasks[0]
        if params.filtered:
            per_file = _filtered_per_file_counts(session, device, executed[lead], params)
        elif executed[lead] is TraversalStrategy.TOP_DOWN:
            per_file = topdown_per_file_counts(
                layout, session.scheduler, device, file_weights=session.state(FILE_WEIGHTS)
            )
        else:
            per_file = bottomup_per_file_counts(
                layout, device, local_tables=session.state(LOCAL_TABLES)
            )

    if corpus_tasks:
        if per_file is not None:
            indices = params.file_indices if params.filtered else range(len(per_file))
            counts: Dict[int, int] = {}
            for file_index in indices:
                for word_id, count in per_file[file_index].items():
                    counts[word_id] = counts.get(word_id, 0) + count
            if not params.filtered:
                # Host-side aggregation standing in for the corpus reduce kernel.
                device.record.host_counter.charge(
                    compute_ops=float(sum(len(file_counts) for file_counts in per_file)),
                    memory_bytes=8.0 * len(per_file),
                )
        elif executed[corpus_tasks[0]] is TraversalStrategy.TOP_DOWN:
            counts = topdown_word_count(
                layout, session.scheduler, device, weights=session.state(RULE_WEIGHTS)
            )
        else:
            counts = bottomup_word_count(layout, device, local_tables=session.state(LOCAL_TABLES))
        word_counts = decode_word_counts(counts, session.compressed.dictionary)
        for task in corpus_tasks:
            results[task] = word_count_to_sort(word_counts) if task is Task.SORT else word_counts

    if file_tasks:
        if params.filtered:
            term_vector = _decode_file_subset(session, per_file, params)
        else:
            term_vector = decode_per_file_counts(
                per_file, session.compressed.file_names, session.compressed.dictionary
            )
        for task in file_tasks:
            if task is Task.TERM_VECTOR:
                results[task] = per_file_counts_to_term_vector(term_vector)
            elif task is Task.INVERTED_INDEX:
                results[task] = per_file_counts_to_inverted_index(term_vector)
            else:
                results[task] = per_file_counts_to_ranked_inverted_index(term_vector)

    if sequence_tasks:
        results[Task.SEQUENCE_COUNT] = _sequence_traverse(
            session, device, TraversalStrategy.TOP_DOWN, params
        )

    if relational_tasks:
        results[Task.RELATIONAL] = _relational_traverse(
            session, device, TraversalStrategy.BOTTOM_UP, params
        )
    return results


PLAN_REGISTRY: Dict[Task, TaskPlan] = {
    Task.WORD_COUNT: TaskPlan(
        task=Task.WORD_COUNT,
        requires=_corpus_requires,
        traverse=_make_corpus_traverse(Task.WORD_COUNT),
    ),
    Task.SORT: TaskPlan(
        task=Task.SORT,
        requires=_corpus_requires,
        traverse=_make_corpus_traverse(Task.SORT),
    ),
    Task.INVERTED_INDEX: TaskPlan(
        task=Task.INVERTED_INDEX,
        requires=_file_requires,
        traverse=_make_file_traverse(Task.INVERTED_INDEX),
    ),
    Task.TERM_VECTOR: TaskPlan(
        task=Task.TERM_VECTOR,
        requires=_file_requires,
        traverse=_make_file_traverse(Task.TERM_VECTOR),
    ),
    Task.SEQUENCE_COUNT: TaskPlan(
        task=Task.SEQUENCE_COUNT,
        requires=_sequence_requires,
        traverse=_sequence_traverse,
        fixed_strategy=TraversalStrategy.TOP_DOWN,
    ),
    Task.RANKED_INVERTED_INDEX: TaskPlan(
        task=Task.RANKED_INVERTED_INDEX,
        requires=_file_requires,
        traverse=_make_file_traverse(Task.RANKED_INVERTED_INDEX),
    ),
    Task.RELATIONAL: TaskPlan(
        task=Task.RELATIONAL,
        requires=_relational_requires,
        traverse=_relational_traverse,
        # Parse states are built leaves-first over the grammar DAG and
        # memoized per schema; there is no top-down formulation.
        fixed_strategy=TraversalStrategy.BOTTOM_UP,
    ),
}


def plan_for(task: Task) -> TaskPlan:
    """The registered plan for ``task`` (raises on unknown tasks)."""
    if isinstance(task, str):
        task = Task.from_name(task)
    try:
        return PLAN_REGISTRY[task]
    except KeyError:
        raise KeyError(f"no task plan registered for {task!r}") from None
