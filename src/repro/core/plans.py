"""Declarative task plans: required session state + traversal program.

The seed engine dispatched tasks through an ``if/elif`` ladder and
threaded unused parameters into every task program.  This module replaces
that with a registry: each :class:`~repro.analytics.base.Task` maps to a
:class:`TaskPlan` that declares

* which :class:`~repro.core.session.DeviceSession` state the traversal
  needs for a given strategy (``requires``), and
* the *marginal* traversal program (``traverse``) that consumes the
  session state and launches only the task-specific kernels.

The engine ensures the required state on the session (charging its
construction once per session), then runs the plan's traversal on a
per-task device/record.  Adding a new analytics task means registering a
plan here — no engine changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.analytics.base import Task, TaskResult
from repro.analytics.derive import (
    decode_per_file_counts,
    decode_sequence_counts,
    decode_word_counts,
    per_file_counts_to_inverted_index,
    per_file_counts_to_ranked_inverted_index,
    per_file_counts_to_term_vector,
    word_count_to_sort,
)
from repro.core.session import (
    BOTTOMUP_BOUNDS,
    FILE_WEIGHTS,
    LOCAL_TABLES,
    RULE_WEIGHTS,
    DeviceSession,
    GTadocConfig,
    StateKey,
    sequence_buffers_key,
)
from repro.core.strategy import TraversalStrategy
from repro.core.traversal import (
    bottomup_per_file_counts,
    bottomup_word_count,
    topdown_per_file_counts,
    topdown_word_count,
)
from repro.core.sequence import sequence_counts
from repro.gpusim.device import GPUDevice

__all__ = ["TaskPlan", "PLAN_REGISTRY", "plan_for"]

RequiresFn = Callable[[TraversalStrategy, GTadocConfig], Tuple[StateKey, ...]]
TraverseFn = Callable[[DeviceSession, GPUDevice, TraversalStrategy], TaskResult]


@dataclass(frozen=True)
class TaskPlan:
    """One task's declarative execution plan."""

    task: Task
    #: Session state the traversal consumes under a given strategy/config.
    requires: RequiresFn
    #: Marginal traversal program: session state in, raw task result out.
    traverse: TraverseFn
    #: Strategy this task always uses, overriding selector and caller
    #: (sequence count has its own head/tail pipeline).
    fixed_strategy: Optional[TraversalStrategy] = None

    def required_state(
        self, strategy: TraversalStrategy, config: GTadocConfig
    ) -> Tuple[StateKey, ...]:
        return self.requires(strategy, config)


# ----------------------------------------------------------------------------------------
# Corpus-wide counts (word count, sort)
# ----------------------------------------------------------------------------------------

def _corpus_requires(strategy: TraversalStrategy, config: GTadocConfig) -> Tuple[StateKey, ...]:
    if strategy is TraversalStrategy.TOP_DOWN:
        return (RULE_WEIGHTS,)
    return (BOTTOMUP_BOUNDS, LOCAL_TABLES)


def _make_corpus_traverse(task: Task) -> TraverseFn:
    def traverse(
        session: DeviceSession, device: GPUDevice, strategy: TraversalStrategy
    ) -> TaskResult:
        layout = session.layout
        if strategy is TraversalStrategy.TOP_DOWN:
            counts = topdown_word_count(
                layout, session.scheduler, device, weights=session.state(RULE_WEIGHTS)
            )
        else:
            counts = bottomup_word_count(
                layout, device, local_tables=session.state(LOCAL_TABLES)
            )
        word_counts = decode_word_counts(counts, session.compressed.dictionary)
        if task is Task.SORT:
            return word_count_to_sort(word_counts)
        return word_counts

    return traverse


# ----------------------------------------------------------------------------------------
# File-sensitive counts (inverted index, term vector, ranked inverted index)
# ----------------------------------------------------------------------------------------

def _file_requires(strategy: TraversalStrategy, config: GTadocConfig) -> Tuple[StateKey, ...]:
    if strategy is TraversalStrategy.TOP_DOWN:
        return (FILE_WEIGHTS,)
    return (BOTTOMUP_BOUNDS, LOCAL_TABLES)


def _make_file_traverse(task: Task) -> TraverseFn:
    def traverse(
        session: DeviceSession, device: GPUDevice, strategy: TraversalStrategy
    ) -> TaskResult:
        layout = session.layout
        if strategy is TraversalStrategy.TOP_DOWN:
            per_file = topdown_per_file_counts(
                layout, session.scheduler, device, file_weights=session.state(FILE_WEIGHTS)
            )
        else:
            per_file = bottomup_per_file_counts(
                layout, device, local_tables=session.state(LOCAL_TABLES)
            )
        term_vector = decode_per_file_counts(
            per_file, session.compressed.file_names, session.compressed.dictionary
        )
        if task is Task.TERM_VECTOR:
            return per_file_counts_to_term_vector(term_vector)
        if task is Task.INVERTED_INDEX:
            return per_file_counts_to_inverted_index(term_vector)
        return per_file_counts_to_ranked_inverted_index(term_vector)

    return traverse


# ----------------------------------------------------------------------------------------
# Sequence count
# ----------------------------------------------------------------------------------------

def _sequence_requires(strategy: TraversalStrategy, config: GTadocConfig) -> Tuple[StateKey, ...]:
    return (sequence_buffers_key(config.sequence_length), RULE_WEIGHTS)


def _sequence_traverse(
    session: DeviceSession, device: GPUDevice, strategy: TraversalStrategy
) -> TaskResult:
    length = session.config.sequence_length
    buffers = session.state(sequence_buffers_key(length))
    weights = session.state(RULE_WEIGHTS)
    counts = sequence_counts(
        session.layout, session.scheduler, device, buffers, weights, length
    )
    return decode_sequence_counts(counts, session.compressed.dictionary)


PLAN_REGISTRY: Dict[Task, TaskPlan] = {
    Task.WORD_COUNT: TaskPlan(
        task=Task.WORD_COUNT,
        requires=_corpus_requires,
        traverse=_make_corpus_traverse(Task.WORD_COUNT),
    ),
    Task.SORT: TaskPlan(
        task=Task.SORT,
        requires=_corpus_requires,
        traverse=_make_corpus_traverse(Task.SORT),
    ),
    Task.INVERTED_INDEX: TaskPlan(
        task=Task.INVERTED_INDEX,
        requires=_file_requires,
        traverse=_make_file_traverse(Task.INVERTED_INDEX),
    ),
    Task.TERM_VECTOR: TaskPlan(
        task=Task.TERM_VECTOR,
        requires=_file_requires,
        traverse=_make_file_traverse(Task.TERM_VECTOR),
    ),
    Task.SEQUENCE_COUNT: TaskPlan(
        task=Task.SEQUENCE_COUNT,
        requires=_sequence_requires,
        traverse=_sequence_traverse,
        fixed_strategy=TraversalStrategy.TOP_DOWN,
    ),
    Task.RANKED_INVERTED_INDEX: TaskPlan(
        task=Task.RANKED_INVERTED_INDEX,
        requires=_file_requires,
        traverse=_make_file_traverse(Task.RANKED_INVERTED_INDEX),
    ),
}


def plan_for(task: Task) -> TaskPlan:
    """The registered plan for ``task`` (raises on unknown tasks)."""
    if isinstance(task, str):
        task = Task.from_name(task)
    try:
        return PLAN_REGISTRY[task]
    except KeyError:
        raise KeyError(f"no task plan registered for {task!r}") from None
