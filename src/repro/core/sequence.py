"""Sequence support: head/tail buffers and sequence counting (§IV-C/IV-D).

Sequence-sensitive tasks (counting *l*-word sequences) need word order,
which a per-rule word table cannot provide.  The original CPU TADOC
falls back to a recursive DFS that is effectively a decompression; the
paper's G-TADOC instead gives every rule a *head* and a *tail* buffer —
the first and last ``l - 1`` words of the rule's expansion — so that a
sequence crossing rule boundaries can be counted by the parent rule
without expanding the child (Figure 6).

The implementation has the paper's two phases:

1. **Initialization** (Figure 7): an iterative masked kernel fills the
   head/tail buffers leaves-first; a rule fails and retries in the next
   round if a needed child's buffer is not ready yet.  Rules whose full
   expansion is short (at most ``2*(l-1)`` words) additionally
   materialise that expansion, which is the content Equation 1 bounds.
2. **Graph traversal** (Figure 8): every rule counts the *l*-grams that
   start in its own body and are not fully contained in a single
   sub-rule occurrence (those are counted by the sub-rule itself),
   using the children's head/tail buffers to cross element boundaries;
   each count is scaled by the rule's occurrence weight and merged into
   a global thread-safe hash table.  The root is processed per file
   segment so sequences never cross file boundaries.

Counting scheme
---------------
Every *l*-gram occurrence in the corpus is attributed to exactly one
rule: the deepest rule whose body the occurrence is *not* fully inside a
single element of.  Summing, per rule, the number of such anchored
*l*-grams times the rule's occurrence weight therefore counts every
occurrence exactly once — this is the invariant the tests check against
the uncompressed reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compression.grammar import is_rule_ref, rule_ref_id
from repro.core.layout import DeviceRuleLayout
from repro.core.scheduler import FineGrainedScheduler
from repro.gpusim.device import GPUDevice
from repro.gpusim.hashtable import DeviceHashTable
from repro.gpusim.memory_pool import MemoryPool
from repro.perf import workcosts as wc

__all__ = [
    "SequenceBuffers",
    "build_sequence_buffers",
    "sequence_counts",
    "head_tail_upper_limit",
]

#: Skeleton marker for the unmaterialised middle of a long sub-rule.
_GAP = None


def head_tail_upper_limit(rule_length: int, num_subrules: int, sequence_length: int) -> int:
    """Equation 1: upper limit of the per-rule sequence buffer space."""
    return rule_length + (sequence_length - 1) * num_subrules - (sequence_length - 1)


@dataclass
class SequenceBuffers:
    """Per-rule head/tail buffers plus short-rule materialisations."""

    sequence_length: int
    heads: List[List[int]]
    tails: List[List[int]]
    #: Full expansion for rules no longer than ``2*(sequence_length-1)`` words.
    short_expansions: List[Optional[List[int]]]
    #: Number of initialization rounds the masked kernel needed.
    rounds: int = 0


def _gather_prefix(
    layout: DeviceRuleLayout,
    rule_id: int,
    limit: int,
    heads: List[Optional[List[int]]],
    short_expansions: List[Optional[List[int]]],
    ready: List[bool],
    ctx,
) -> Optional[List[int]]:
    """First ``limit`` expansion words of a rule, or ``None`` if a child is not ready."""
    words: List[int] = []
    for symbol in layout.rule_bodies[rule_id]:
        if len(words) >= limit:
            break
        ctx.charge(ops=wc.SYMBOL_VISIT_OPS, memory_bytes=wc.SYMBOL_VISIT_BYTES)
        if is_rule_ref(symbol):
            child = rule_ref_id(symbol)
            if not ready[child]:
                return None
            short = short_expansions[child]
            words.extend(short if short is not None else heads[child])
        else:
            words.append(symbol)
    return words[:limit]


def _gather_suffix(
    layout: DeviceRuleLayout,
    rule_id: int,
    limit: int,
    tails: List[Optional[List[int]]],
    short_expansions: List[Optional[List[int]]],
    ready: List[bool],
    ctx,
) -> Optional[List[int]]:
    """Last ``limit`` expansion words of a rule, or ``None`` if a child is not ready."""
    words: List[int] = []
    for symbol in reversed(layout.rule_bodies[rule_id]):
        if len(words) >= limit:
            break
        ctx.charge(ops=wc.SYMBOL_VISIT_OPS, memory_bytes=wc.SYMBOL_VISIT_BYTES)
        if is_rule_ref(symbol):
            child = rule_ref_id(symbol)
            if not ready[child]:
                return None
            short = short_expansions[child]
            source = short if short is not None else tails[child]
            words.extend(reversed(source))
        else:
            words.append(symbol)
    return list(reversed(words[:limit]))


def build_sequence_buffers(
    layout: DeviceRuleLayout,
    device: GPUDevice,
    sequence_length: int,
    memory_pool: Optional[MemoryPool] = None,
) -> SequenceBuffers:
    """Phase 1 (Figure 7): fill every rule's head and tail buffers."""
    if sequence_length < 1:
        raise ValueError("sequence_length must be >= 1")
    num_rules = layout.num_rules
    limit = max(0, sequence_length - 1)
    short_limit = 2 * limit

    heads: List[Optional[List[int]]] = [None] * num_rules
    tails: List[Optional[List[int]]] = [None] * num_rules
    short_expansions: List[Optional[List[int]]] = [None] * num_rules
    ready = [False] * num_rules
    # The root never feeds another rule's buffers.
    ready[0] = True
    heads[0] = []
    tails[0] = []

    if memory_pool is not None:
        # Owners are length-qualified and allocation is idempotent so a
        # session can keep buffers for several sequence lengths in one pool.
        for rule_id in range(1, num_rules):
            owner = f"headTail[l={sequence_length}][{rule_id}]"
            if memory_pool.allocation_of(owner) is not None:
                continue
            upper = head_tail_upper_limit(
                layout.rule_lengths[rule_id], len(layout.subrules[rule_id]), sequence_length
            )
            memory_pool.allocate(owner, max(1, 2 * limit + max(0, upper)))

    rounds = 0
    while not all(ready):
        rounds += 1
        progressed = False

        def head_tail_kernel(tid: int, ctx) -> None:
            nonlocal progressed
            rule_id = tid + 1
            if rule_id >= num_rules:
                return
            ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=4.0)
            if ready[rule_id]:
                return
            head = _gather_prefix(layout, rule_id, limit, heads, short_expansions, ready, ctx)
            if head is None:
                return
            tail = _gather_suffix(layout, rule_id, limit, tails, short_expansions, ready, ctx)
            if tail is None:
                return
            short: Optional[List[int]] = None
            if layout.expansion_lengths[rule_id] <= short_limit:
                short = _gather_prefix(
                    layout,
                    rule_id,
                    layout.expansion_lengths[rule_id],
                    heads,
                    short_expansions,
                    ready,
                    ctx,
                )
                if short is None:
                    return
            heads[rule_id] = head
            tails[rule_id] = tail
            short_expansions[rule_id] = short
            ready[rule_id] = True
            progressed = True

        if num_rules <= 1:
            break
        device.launch("initHeadTailKernel", head_tail_kernel, max(1, num_rules - 1))
        if not progressed:
            raise RuntimeError("head/tail initialization made no progress (cyclic grammar?)")
    return SequenceBuffers(
        sequence_length=sequence_length,
        heads=[head if head is not None else [] for head in heads],
        tails=[tail if tail is not None else [] for tail in tails],
        short_expansions=short_expansions,
        rounds=rounds,
    )


def _build_skeleton(
    symbols: Sequence[int],
    element_offset: int,
    buffers: SequenceBuffers,
    ctx,
) -> List[Optional[Tuple[int, int, bool]]]:
    """Skeleton entries ``(word, global element index, inside-sub-rule)``.

    Long sub-rules contribute their head, a gap marker and their tail;
    short sub-rules contribute their full expansion; terminals
    contribute themselves.
    """
    skeleton: List[Optional[Tuple[int, int, bool]]] = []
    for local_index, symbol in enumerate(symbols):
        element_index = element_offset + local_index
        ctx.charge(ops=wc.SYMBOL_VISIT_OPS, memory_bytes=wc.SYMBOL_VISIT_BYTES)
        if not is_rule_ref(symbol):
            skeleton.append((symbol, element_index, False))
            continue
        child = rule_ref_id(symbol)
        short = buffers.short_expansions[child]
        if short is not None:
            for word in short:
                skeleton.append((word, element_index, True))
            continue
        for word in buffers.heads[child]:
            skeleton.append((word, element_index, True))
        skeleton.append(_GAP)
        for word in buffers.tails[child]:
            skeleton.append((word, element_index, True))
    return skeleton


def _count_windows(
    skeleton: List[Optional[Tuple[int, int, bool]]],
    sequence_length: int,
    weight: int,
    sink: Dict[Tuple[int, ...], int],
    ctx,
    element_range: Optional[Tuple[int, int]] = None,
) -> None:
    """Count valid windows into ``sink``.

    A window is valid when it contains no gap marker and is not fully
    contained in a single sub-rule element.  When ``element_range`` is
    given, only windows whose first word belongs to an element inside
    the half-open range are counted (thread-group slicing).
    """
    length = sequence_length
    for start in range(len(skeleton) - length + 1):
        window = skeleton[start : start + length]
        ctx.charge(ops=wc.SYMBOL_VISIT_OPS)
        if any(entry is _GAP for entry in window):
            continue
        first_element = window[0][1]
        if element_range is not None and not (element_range[0] <= first_element < element_range[1]):
            continue
        if window[0][2] and all(
            entry[1] == first_element and entry[2] for entry in window
        ):
            # Fully contained in one sub-rule occurrence; that sub-rule
            # counts it itself.
            continue
        key = tuple(entry[0] for entry in window)
        ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
        sink[key] = sink.get(key, 0) + weight


def sequence_counts(
    layout: DeviceRuleLayout,
    scheduler: FineGrainedScheduler,
    device: GPUDevice,
    buffers: SequenceBuffers,
    weights: Sequence[int],
    sequence_length: int,
    file_indices: Optional[Sequence[int]] = None,
) -> Dict[Tuple[int, ...], int]:
    """Phase 2 (Figure 8): count word *l*-grams over the whole corpus.

    With a ``file_indices`` subset, only root segments of the requested
    files are scanned; callers must supply ``weights`` restricted to the
    subset (occurrences of each rule within the requested files) so
    rule-anchored windows are scaled correctly.
    """
    if sequence_length != buffers.sequence_length:
        raise ValueError("sequence_length does not match the prepared buffers")
    if device.kernel_mode == "vector":
        from repro.core import vectorized

        return vectorized.sequence_counts_vec(
            layout, scheduler, device, buffers, weights, sequence_length, file_indices
        )
    allowed = frozenset(file_indices) if file_indices is not None else None

    local_counts: Dict[Tuple[int, ...], int] = {}
    overlap = sequence_length - 1

    # Every non-root rule counts the windows anchored in its own body.
    # Under a file filter, rules that never occur in the subset (zero
    # restricted weight) are dropped before scheduling so the kernel only
    # covers marginal work.
    rule_ids = list(range(1, layout.num_rules))
    if allowed is not None:
        rule_ids = [rule_id for rule_id in rule_ids if weights[rule_id] != 0]
    items = [layout.rule_lengths[rule_id] for rule_id in rule_ids]
    assignments = scheduler.partition_items(rule_ids, items) if rule_ids else []

    def rule_kernel(tid: int, ctx) -> None:
        assignment = assignments[tid]
        rule_id = assignment.rule_id
        weight = weights[rule_id]
        ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=8.0)
        if weight == 0 or assignment.span <= 0:
            return
        body = layout.rule_bodies[rule_id]
        end = min(len(body), assignment.end + overlap)
        skeleton = _build_skeleton(body[assignment.start : end], assignment.start, buffers, ctx)
        _count_windows(
            skeleton,
            sequence_length,
            weight,
            local_counts,
            ctx,
            element_range=(assignment.start, assignment.end),
        )

    if assignments:
        device.launch("sequenceRuleKernel", rule_kernel, len(assignments))

    # The root is processed per file segment (so sequences never cross
    # files); long segments are split into chunks handled by separate
    # threads, with the same start-element ownership rule.
    chunk = max(32, int(scheduler.oversize_threshold * max(1.0, layout.average_rule_length)))
    root_work: List[Tuple[int, int, int]] = []  # (file_index, start, end) in segment coordinates
    for file_index, (segment_start, segment_end) in enumerate(layout.root_segments):
        if allowed is not None and file_index not in allowed:
            continue
        length = segment_end - segment_start
        for offset in range(0, max(1, length), chunk):
            start = segment_start + offset
            end = min(segment_end, start + chunk)
            root_work.append((file_index, start, end))

    def root_kernel(tid: int, ctx) -> None:
        if tid >= len(root_work):
            return
        file_index, start, end = root_work[tid]
        segment_start, segment_end = layout.root_segments[file_index]
        extended_end = min(segment_end, end + overlap)
        symbols = layout.root_symbols[start:extended_end]
        skeleton = _build_skeleton(symbols, start, buffers, ctx)
        _count_windows(
            skeleton,
            sequence_length,
            1,
            local_counts,
            ctx,
            element_range=(start, end),
        )

    device.launch("sequenceRootKernel", root_kernel, max(1, len(root_work)))

    # Merge into the global thread-safe table (Figure 8's insert protocol);
    # the intermediate keys are interned to integer ids for the table.
    table = DeviceHashTable.sized_for(max(1, len(local_counts)))
    key_ids: Dict[Tuple[int, ...], int] = {}
    keys_by_id: List[Tuple[int, ...]] = []
    entries = list(local_counts.items())

    def merge_kernel(tid: int, ctx) -> None:
        if tid >= len(entries):
            return
        key, value = entries[tid]
        ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
        key_id = key_ids.get(key)
        if key_id is None:
            key_id = len(keys_by_id)
            key_ids[key] = key_id
            keys_by_id.append(key)
        table.insert_add(key_id, value, ctx)

    device.launch("sequenceMergeKernel", merge_kernel, max(1, len(entries)))
    return {keys_by_id[key_id]: count for key_id, count in table.items()}
