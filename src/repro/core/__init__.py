"""G-TADOC core: the paper's primary contribution.

The sub-modules map onto the paper's sections:

* :mod:`repro.core.layout` — device data-structure layout (Figure 3's
  initialization inputs),
* :mod:`repro.core.scheduler` — fine-grained thread-level workload
  scheduling, plus the abandoned vertical partitioning for ablations
  (Figure 4),
* :mod:`repro.core.traversal` — top-down and bottom-up traversal
  kernels (Algorithms 1 and 2),
* :mod:`repro.core.sequence` — head/tail buffers and sequence counting
  (Figures 6-8),
* :mod:`repro.core.strategy` — the adaptive traversal-strategy selector,
* :mod:`repro.core.tuning` — greedy parameter selection,
* :mod:`repro.core.session` — the long-lived :class:`DeviceSession`
  caching shared device state across queries,
* :mod:`repro.core.plans` — the declarative task-plan registry
  (required session state + marginal traversal program per task),
* :mod:`repro.core.engine` — the :class:`GTadoc` facade tying it all
  together (single runs, amortized batches).
"""

from repro.core.engine import GTadoc, GTadocBatchResult, GTadocConfig, GTadocRunResult
from repro.core.layout import DeviceRuleLayout
from repro.core.plans import PLAN_REGISTRY, TaskPlan, plan_for
from repro.core.session import DeviceSession, StateKey, sequence_buffers_key
from repro.core.scheduler import (
    FineGrainedScheduler,
    ThreadAssignment,
    VerticalPartitioningScheduler,
)
from repro.core.sequence import SequenceBuffers, build_sequence_buffers, sequence_counts
from repro.core.strategy import StrategyDecision, TraversalStrategy, TraversalStrategySelector
from repro.core.tuning import GreedyParameterTuner, TuningResult

__all__ = [
    "GTadoc",
    "GTadocConfig",
    "GTadocRunResult",
    "GTadocBatchResult",
    "DeviceSession",
    "StateKey",
    "sequence_buffers_key",
    "TaskPlan",
    "PLAN_REGISTRY",
    "plan_for",
    "DeviceRuleLayout",
    "FineGrainedScheduler",
    "ThreadAssignment",
    "VerticalPartitioningScheduler",
    "SequenceBuffers",
    "build_sequence_buffers",
    "sequence_counts",
    "TraversalStrategy",
    "TraversalStrategySelector",
    "StrategyDecision",
    "GreedyParameterTuner",
    "TuningResult",
]
