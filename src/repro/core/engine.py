"""The G-TADOC engine: phases, task programs, result assembly.

:class:`GTadoc` is the library's main entry point (the equivalent of
the CompressDirect GPU interfaces in section V of the paper).  A run
has the two phases of Figure 3:

* **initialization** — device data-structure preparation, light-weight
  scanning (in-edge/parent generation, local-table bound pass for
  bottom-up traversals, head/tail buffers for sequence tasks), memory
  pool sizing and, for datasets that do not fit in GPU memory, the
  PCIe transfer of the compressed data;
* **graph traversal** — the top-down or bottom-up traversal chosen by
  the adaptive strategy selector, followed by result reduction/merging
  into global thread-safe tables.

The engine records each phase's kernels in a separate
:class:`~repro.perf.counters.GpuRunRecord`, so the same functional run
can be priced on any of the Table I GPUs afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analytics.base import Task, TaskResult, normalize_result
from repro.analytics.derive import (
    decode_per_file_counts,
    decode_sequence_counts,
    decode_word_counts,
    per_file_counts_to_inverted_index,
    per_file_counts_to_ranked_inverted_index,
    per_file_counts_to_term_vector,
    word_count_to_sort,
)
from repro.compression.compressor import CompressedCorpus
from repro.core.layout import DeviceRuleLayout
from repro.core.scheduler import DEFAULT_OVERSIZE_THRESHOLD, FineGrainedScheduler
from repro.core.sequence import build_sequence_buffers, sequence_counts
from repro.core.strategy import StrategyDecision, TraversalStrategy, TraversalStrategySelector
from repro.core.traversal import (
    bottomup_per_file_counts,
    bottomup_word_count,
    build_local_tables_bottomup,
    compute_rule_weights_topdown,
    prepare_bottomup,
    topdown_per_file_counts,
    topdown_word_count,
)
from repro.gpusim.device import GPUDevice
from repro.gpusim.memory_pool import MemoryPool
from repro.perf import workcosts as wc
from repro.perf.counters import GpuRunRecord

__all__ = ["GTadocConfig", "GTadocRunResult", "GTadoc"]


@dataclass
class GTadocConfig:
    """Tunable parameters of the engine (paper §IV-B "Parameter selection")."""

    #: Sequence length for sequence-sensitive tasks.
    sequence_length: int = 3
    #: A rule gets a thread group once it exceeds this multiple of the
    #: average elements-per-thread (paper default: 16).
    oversize_threshold: float = DEFAULT_OVERSIZE_THRESHOLD
    #: Upper bound on a rule's thread-group size.
    max_group_size: int = 256
    #: Manage per-rule buffers through the self-maintained memory pool.
    use_memory_pool: bool = True
    #: Charge PCIe transfers of the compressed data (large datasets that do
    #: not fit in GPU memory; see §VI-A "Methodology").
    needs_pcie_transfer: bool = False


@dataclass
class GTadocRunResult:
    """Everything one :meth:`GTadoc.run` call produces."""

    task: Task
    result: TaskResult
    strategy: TraversalStrategy
    strategy_decision: Optional[StrategyDecision]
    init_record: GpuRunRecord
    traversal_record: GpuRunRecord
    memory_pool_bytes: int
    scheduler_summary: Dict[str, float] = field(default_factory=dict)

    @property
    def total_kernel_launches(self) -> int:
        return self.init_record.num_launches + self.traversal_record.num_launches


class GTadoc:
    """GPU-based text analytics directly on TADOC-compressed data."""

    def __init__(self, compressed: CompressedCorpus, config: Optional[GTadocConfig] = None) -> None:
        self.compressed = compressed
        self.config = config or GTadocConfig()
        self._layout: Optional[DeviceRuleLayout] = None

    # -- shared pieces -----------------------------------------------------------------
    @property
    def layout(self) -> DeviceRuleLayout:
        """The device layout (built once and reused across runs)."""
        if self._layout is None:
            self._layout = DeviceRuleLayout.from_compressed(self.compressed)
        return self._layout

    def _make_scheduler(self) -> FineGrainedScheduler:
        return FineGrainedScheduler(
            self.layout,
            oversize_threshold=self.config.oversize_threshold,
            max_group_size=self.config.max_group_size,
        )

    def _make_memory_pool(self) -> Optional[MemoryPool]:
        if not self.config.use_memory_pool:
            return None
        layout = self.layout
        sequence_slack = layout.num_rules * (4 * self.config.sequence_length + 8)
        capacity = 4 * layout.estimated_local_table_entries() + sequence_slack + 4096
        return MemoryPool(capacity=capacity)

    def _run_init_common(self, device: GPUDevice) -> None:
        """Initialization work every task shares (Figure 3, left box)."""
        layout = self.layout
        if self.config.needs_pcie_transfer:
            device.transfer_to_device(layout.device_footprint_bytes())
        # Host-side control: preparing launch configurations and the result
        # buffers is proportional to the number of rules, not to the data.
        device.record.host_counter.charge(
            compute_ops=4.0 * layout.num_rules, memory_bytes=8.0 * layout.num_rules
        )

        def prep_kernel(tid: int, ctx) -> None:
            rule_id = tid
            if rule_id >= layout.num_rules:
                return
            # Each thread formats its rule's adjacency and local word table
            # into the device layout (the "data structure preparation" +
            # "light-weight scanning" box of Figure 3).
            length = layout.rule_lengths[rule_id]
            ctx.charge(
                ops=wc.SYMBOL_VISIT_OPS * length + wc.MASK_CHECK_OPS,
                memory_bytes=wc.SYMBOL_VISIT_BYTES * length,
            )

        device.launch("dataStructurePrepKernel", prep_kernel, max(1, layout.num_rules))

    # -- public API -----------------------------------------------------------------------
    def run(self, task: Task, traversal: Optional[TraversalStrategy] = None) -> GTadocRunResult:
        """Execute ``task`` and return its result plus per-phase work records."""
        if isinstance(task, str):
            task = Task.from_name(task)
        layout = self.layout
        scheduler = self._make_scheduler()
        memory_pool = self._make_memory_pool()
        init_record = GpuRunRecord()
        traversal_record = GpuRunRecord()
        device = GPUDevice(record=init_record)

        self._run_init_common(device)

        decision: Optional[StrategyDecision] = None
        if traversal is None:
            decision = TraversalStrategySelector(layout).select(task)
            strategy = decision.strategy
        else:
            strategy = traversal

        if task is Task.SEQUENCE_COUNT:
            result = self._run_sequence_count(
                scheduler, device, memory_pool, init_record, traversal_record
            )
            strategy = TraversalStrategy.TOP_DOWN
        elif task in (Task.WORD_COUNT, Task.SORT):
            result = self._run_corpus_counts(
                task, strategy, scheduler, device, memory_pool, init_record, traversal_record
            )
        else:
            result = self._run_file_counts(
                task, strategy, scheduler, device, memory_pool, init_record, traversal_record
            )

        return GTadocRunResult(
            task=task,
            result=normalize_result(task, result),
            strategy=strategy,
            strategy_decision=decision,
            init_record=init_record,
            traversal_record=traversal_record,
            memory_pool_bytes=memory_pool.used_bytes if memory_pool is not None else 0,
            scheduler_summary=scheduler.summary(),
        )

    def run_all(self, traversal: Optional[TraversalStrategy] = None) -> Dict[Task, GTadocRunResult]:
        """Run every task (evaluation order) and return the per-task results."""
        return {task: self.run(task, traversal=traversal) for task in Task.all()}

    # -- task programs -------------------------------------------------------------------------
    def _run_corpus_counts(
        self,
        task: Task,
        strategy: TraversalStrategy,
        scheduler: FineGrainedScheduler,
        device: GPUDevice,
        memory_pool: Optional[MemoryPool],
        init_record: GpuRunRecord,
        traversal_record: GpuRunRecord,
    ) -> TaskResult:
        layout = self.layout
        if strategy is TraversalStrategy.TOP_DOWN:
            device.set_record(traversal_record)
            counts = topdown_word_count(layout, scheduler, device)
        else:
            bounds = prepare_bottomup(layout, device, memory_pool)
            device.set_record(traversal_record)
            local_tables, _bounds = build_local_tables_bottomup(
                layout, scheduler, device, memory_pool=None, bounds=bounds
            )
            counts = bottomup_word_count(
                layout, scheduler, device, local_tables=local_tables
            )
        word_counts = decode_word_counts(counts, self.compressed.dictionary)
        if task is Task.SORT:
            return word_count_to_sort(word_counts)
        return word_counts

    def _run_file_counts(
        self,
        task: Task,
        strategy: TraversalStrategy,
        scheduler: FineGrainedScheduler,
        device: GPUDevice,
        memory_pool: Optional[MemoryPool],
        init_record: GpuRunRecord,
        traversal_record: GpuRunRecord,
    ) -> TaskResult:
        layout = self.layout
        if strategy is TraversalStrategy.TOP_DOWN:
            device.set_record(traversal_record)
            per_file = topdown_per_file_counts(layout, scheduler, device)
        else:
            bounds = prepare_bottomup(layout, device, memory_pool)
            device.set_record(traversal_record)
            local_tables, _bounds = build_local_tables_bottomup(
                layout, scheduler, device, memory_pool=None, bounds=bounds
            )
            per_file = bottomup_per_file_counts(
                layout, scheduler, device, local_tables=local_tables
            )
        term_vector = decode_per_file_counts(
            per_file, self.compressed.file_names, self.compressed.dictionary
        )
        if task is Task.TERM_VECTOR:
            return per_file_counts_to_term_vector(term_vector)
        if task is Task.INVERTED_INDEX:
            return per_file_counts_to_inverted_index(term_vector)
        if task is Task.RANKED_INVERTED_INDEX:
            return per_file_counts_to_ranked_inverted_index(term_vector)
        raise ValueError(f"unexpected file-sensitive task: {task!r}")

    def _run_sequence_count(
        self,
        scheduler: FineGrainedScheduler,
        device: GPUDevice,
        memory_pool: Optional[MemoryPool],
        init_record: GpuRunRecord,
        traversal_record: GpuRunRecord,
    ) -> TaskResult:
        layout = self.layout
        buffers = build_sequence_buffers(
            layout, scheduler, device, self.config.sequence_length, memory_pool=memory_pool
        )
        device.set_record(traversal_record)
        weights = compute_rule_weights_topdown(layout, scheduler, device)
        counts = sequence_counts(
            layout, scheduler, device, buffers, weights, self.config.sequence_length
        )
        return decode_sequence_counts(counts, self.compressed.dictionary)
