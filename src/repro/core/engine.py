"""The G-TADOC engine: session state, task plans, result assembly.

:class:`GTadoc` is the library's main entry point (the equivalent of
the CompressDirect GPU interfaces in section V of the paper).  A run
has the two phases of Figure 3:

* **initialization** — device data-structure preparation, light-weight
  scanning (in-edge/parent generation, local-table bound pass for
  bottom-up traversals, head/tail buffers for sequence tasks), memory
  pool sizing and, for datasets that do not fit in GPU memory, the
  PCIe transfer of the compressed data;
* **graph traversal** — the top-down or bottom-up traversal chosen by
  the adaptive strategy selector, followed by result reduction/merging
  into global thread-safe tables.

The engine is layered: a :class:`~repro.core.session.DeviceSession`
owns the long-lived cached device state, the
:mod:`~repro.core.plans` registry declares what each task needs and how
its marginal traversal runs, and the engine orchestrates the two.

* :meth:`GTadoc.run` executes one task on a *fresh* session — the full
  per-query cost, recorded per phase, exactly as the paper measures a
  single run.
* :meth:`GTadoc.run_batch` executes many tasks against the engine's
  persistent session: initialization and shared-state construction are
  charged once at batch level, and each task's record reflects only its
  marginal traversal work.  :meth:`GTadoc.run_all` is a batch over all
  six CompressDirect tasks.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.analytics.base import Task, TaskResult, normalize_result
from repro.compression.compressor import CompressedCorpus
from repro.core.layout import DeviceRuleLayout
from repro.core.plans import (
    DEFAULT_PARAMS,
    QueryParams,
    TaskPlan,
    fused_execution_strategies,
    fused_required_state,
    plan_for,
    run_fused_program,
)
from repro.core.session import BASE_INIT, DeviceSession, GTadocConfig
from repro.core.strategy import StrategyDecision, TraversalStrategy, TraversalStrategySelector
from repro.gpusim.device import GPUDevice
from repro.perf.counters import GpuRunRecord
from repro.relational.spec import RelationalQuery

__all__ = ["GTadocConfig", "GTadocRunResult", "GTadocBatchResult", "GTadoc"]


@dataclass
class GTadocRunResult:
    """Everything one :meth:`GTadoc.run` call produces.

    For results coming out of :meth:`GTadoc.run_batch`, every field is
    marginal: ``init_record`` holds only the task's own initialization
    work (usually none — shared initialization is charged once on the
    batch), ``traversal_record`` only its marginal traversal kernels,
    ``memory_pool_bytes`` only the pool growth the task caused
    (cumulative pool usage lives on the batch result), and
    ``scheduler_summary`` is empty — the scheduler is shared session
    state, so its summary is reported once on the batch.
    """

    task: Task
    result: TaskResult
    strategy: TraversalStrategy
    strategy_decision: Optional[StrategyDecision]
    init_record: GpuRunRecord
    traversal_record: GpuRunRecord
    memory_pool_bytes: int
    scheduler_summary: Dict[str, float] = field(default_factory=dict)

    @property
    def total_kernel_launches(self) -> int:
        return self.init_record.num_launches + self.traversal_record.num_launches


@dataclass
class GTadocBatchResult(Mapping):
    """Outcome of :meth:`GTadoc.run_batch`: per-task results + shared records.

    Behaves as a mapping from :class:`Task` to :class:`GTadocRunResult`,
    so existing ``run_all`` callers keep working.  Shared figures are
    reported here, once per batch: ``init_record`` holds the Figure-3
    initialization work, ``shared_record`` the shared traversal-state
    construction (local tables, rule/file weights),
    ``memory_pool_bytes`` the session's cumulative pool usage, and
    ``scheduler_summary`` the shared fine-grained scheduler's summary.
    """

    results: Dict[Task, GTadocRunResult]
    init_record: GpuRunRecord
    shared_record: GpuRunRecord
    memory_pool_bytes: int
    scheduler_summary: Dict[str, float] = field(default_factory=dict)

    # -- mapping interface ----------------------------------------------------------------
    def __getitem__(self, task: Union[Task, str]) -> GTadocRunResult:
        if isinstance(task, str):
            try:
                task = Task.from_name(task)
            except ValueError:
                raise KeyError(task) from None
        return self.results[task]

    def __iter__(self) -> Iterator[Task]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    # -- aggregates -----------------------------------------------------------------------
    @property
    def tasks(self) -> List[Task]:
        return list(self.results)

    @property
    def total_kernel_launches(self) -> int:
        """Batch-level launches: shared init + shared state + per-task marginals."""
        return (
            self.init_record.num_launches
            + self.shared_record.num_launches
            + sum(result.total_kernel_launches for result in self.results.values())
        )

    @property
    def shared_kernel_launches(self) -> int:
        return self.init_record.num_launches + self.shared_record.num_launches


class GTadoc:
    """GPU-based text analytics directly on TADOC-compressed data."""

    def __init__(self, compressed: CompressedCorpus, config: Optional[GTadocConfig] = None) -> None:
        self.compressed = compressed
        self._session = DeviceSession(compressed, config or GTadocConfig())

    # -- shared pieces -----------------------------------------------------------------
    @property
    def session(self) -> DeviceSession:
        """The engine's persistent device session (batch/serving state)."""
        return self._session

    @property
    def config(self) -> GTadocConfig:
        return self._session.config

    @config.setter
    def config(self, config: GTadocConfig) -> None:
        self._session.configure(config)

    def configure(self, config: GTadocConfig) -> None:
        """Adopt a new config, invalidating cached session state if it changed."""
        self._session.configure(config)

    @property
    def layout(self) -> DeviceRuleLayout:
        """The device layout (built once and reused across runs)."""
        return self._session.layout

    # -- public API -----------------------------------------------------------------------
    def run(
        self,
        task: Union[Task, str],
        traversal: Optional[TraversalStrategy] = None,
        *,
        sequence_length: Optional[int] = None,
        file_indices: Optional[Iterable[int]] = None,
        relational: Optional["RelationalQuery"] = None,
    ) -> GTadocRunResult:
        """Execute ``task`` and return its result plus per-phase work records.

        Runs on a fresh session, so every call pays the full Figure-3
        initialization — the per-query cost the paper's figures measure.
        Use :meth:`run_batch` to amortize initialization across tasks.

        ``sequence_length`` overrides the configured length for this call
        only; ``file_indices`` restricts the task to a file subset (the
        traversal then performs only the marginal work for those files).
        ``relational`` carries the query spec required by
        :attr:`~repro.analytics.base.Task.RELATIONAL`.  The unified
        front door for these per-query knobs is
        :class:`repro.api.Query` via :func:`repro.api.open_backend`.
        """
        params = self._params(sequence_length, file_indices, relational)
        # Catch the persistent session up with any corpus mutations first,
        # so the fresh session inherits a current-epoch layout.
        self._session.sync_with_corpus()
        session = self._session.fresh()
        task, result, strategy, decision, marginal = self._execute_task(
            session, task, traversal, params
        )
        init_record, shared_record = session.drain_new_records()
        traversal_record = GpuRunRecord()
        traversal_record.merge(shared_record)
        traversal_record.merge(marginal)
        return GTadocRunResult(
            task=task,
            result=result,
            strategy=strategy,
            strategy_decision=decision,
            init_record=init_record,
            traversal_record=traversal_record,
            memory_pool_bytes=session.memory_pool_bytes,
            scheduler_summary=session.scheduler.summary(),
        )

    def run_batch(
        self,
        tasks: Optional[Iterable[Union[Task, str]]] = None,
        traversal: Optional[TraversalStrategy] = None,
        session: Optional[DeviceSession] = None,
        *,
        sequence_length: Optional[int] = None,
        file_indices: Optional[Iterable[int]] = None,
        relational: Optional["RelationalQuery"] = None,
    ) -> GTadocBatchResult:
        """Execute several tasks against one shared session.

        Initialization and shared-state construction are performed (and
        recorded) once — on the batch's ``init_record``/``shared_record`` —
        while every task's :class:`GTadocRunResult` carries only its
        marginal traversal kernels.  Results are bit-identical to fresh
        single-task :meth:`run` calls.

        By default the engine's persistent session is used, so repeated
        batches on the same engine amortize even further (a second batch
        charges no initialization at all).  Pass an explicit ``session``
        (e.g. ``engine.session.fresh()``) to measure one batch in
        isolation.
        """
        params = self._params(sequence_length, file_indices, relational)
        requested_tasks = Task.all() if tasks is None else tasks
        task_list = [Task.from_name(t) if isinstance(t, str) else t for t in requested_tasks]
        # Duplicates collapse to one execution (results are keyed by task),
        # keeping the batch's work records consistent with what ran.
        task_list = list(dict.fromkeys(task_list))
        session = session if session is not None else self._session
        results: Dict[Task, GTadocRunResult] = {}
        # The session lock is held across the whole batch so concurrent
        # batches on one session serialize and the drained construction
        # records are attributed to the batch that actually built them.
        with session.lock:
            session.sync_with_corpus()
            for requested in task_list:
                pool_before = session.memory_pool_bytes
                task, result, strategy, decision, marginal = self._execute_task(
                    session, requested, traversal, params
                )
                results[task] = GTadocRunResult(
                    task=task,
                    result=result,
                    strategy=strategy,
                    strategy_decision=decision,
                    init_record=GpuRunRecord(),
                    traversal_record=marginal,
                    memory_pool_bytes=session.memory_pool_bytes - pool_before,
                )
            init_record, shared_record = session.drain_new_records()
            return GTadocBatchResult(
                results=results,
                init_record=init_record,
                shared_record=shared_record,
                memory_pool_bytes=session.memory_pool_bytes,
                scheduler_summary=session.scheduler.summary(),
            )

    def run_fused(
        self,
        tasks: Optional[Iterable[Union[Task, str]]] = None,
        traversal: Optional[TraversalStrategy] = None,
        session: Optional[DeviceSession] = None,
        *,
        sequence_length: Optional[int] = None,
        file_indices: Optional[Iterable[int]] = None,
        relational: Optional["RelationalQuery"] = None,
    ) -> GTadocBatchResult:
        """Serve several tasks from one fused traversal pass.

        Where :meth:`run_batch` runs each task's marginal program
        back-to-back, a fused batch walks the shared rule structure once
        per result family: the per-file counts answer every
        file-sensitive task and any co-batched corpus-wide task, so the
        batch launches strictly fewer kernels whenever tasks share a
        family.  Results are bit-identical to :meth:`run_batch`; the
        fused kernels are recorded once, on the batch's first task, and
        each task's ``strategy`` reports what its family primitive
        actually executed (its own selector decision is kept in
        ``strategy_decision``).
        """
        params = self._params(sequence_length, file_indices, relational)
        requested_tasks = Task.all() if tasks is None else tasks
        task_list = [Task.from_name(t) if isinstance(t, str) else t for t in requested_tasks]
        task_list = list(dict.fromkeys(task_list))
        session = session if session is not None else self._session
        with session.lock:
            session.sync_with_corpus()
            if params.filtered:
                num_files = session.layout.num_files
                for file_index in params.file_indices:
                    if not 0 <= file_index < num_files:
                        raise ValueError(
                            f"file index {file_index} out of range (corpus has {num_files} files)"
                        )
            selector = TraversalStrategySelector(session.layout) if traversal is None else None
            decisions: Dict[Task, Optional[StrategyDecision]] = {}
            strategies: Dict[Task, TraversalStrategy] = {}
            for task in task_list:
                plan: TaskPlan = plan_for(task)
                decision: Optional[StrategyDecision] = None
                if selector is not None:
                    decision = selector.select(task)
                    strategy = decision.strategy
                else:
                    strategy = traversal
                if plan.fixed_strategy is not None:
                    strategy = plan.fixed_strategy
                decisions[task] = decision
                strategies[task] = strategy
            executed = fused_execution_strategies(strategies)
            session.ensure(BASE_INIT)
            session.ensure(*fused_required_state(strategies, session.config, params))
            fused = GpuRunRecord()
            device = GPUDevice(record=fused, kernel_mode=session.config.kernel_mode)
            pool_before = session.memory_pool_bytes
            raw_results = run_fused_program(session, device, strategies, params)
            results: Dict[Task, GTadocRunResult] = {}
            for position, task in enumerate(task_list):
                results[task] = GTadocRunResult(
                    task=task,
                    result=normalize_result(task, raw_results[task]),
                    strategy=executed[task],
                    strategy_decision=decisions[task],
                    init_record=GpuRunRecord(),
                    traversal_record=fused if position == 0 else GpuRunRecord(),
                    memory_pool_bytes=(
                        session.memory_pool_bytes - pool_before if position == 0 else 0
                    ),
                )
            init_record, shared_record = session.drain_new_records()
            return GTadocBatchResult(
                results=results,
                init_record=init_record,
                shared_record=shared_record,
                memory_pool_bytes=session.memory_pool_bytes,
                scheduler_summary=session.scheduler.summary(),
            )

    def run_all(self, traversal: Optional[TraversalStrategy] = None) -> GTadocBatchResult:
        """Run every task (evaluation order) as one batch.

        The Figure-3 initialization phase and all shared traversal state
        are charged exactly once for the whole batch.
        """
        return self.run_batch(Task.all(), traversal=traversal)

    # -- plan execution ------------------------------------------------------------------------
    @staticmethod
    def _params(
        sequence_length: Optional[int],
        file_indices: Optional[Iterable[int]],
        relational: Optional["RelationalQuery"] = None,
    ) -> QueryParams:
        """Normalize per-query knobs into a :class:`QueryParams`."""
        if sequence_length is None and file_indices is None and relational is None:
            return DEFAULT_PARAMS
        return QueryParams(
            sequence_length=sequence_length,
            file_indices=tuple(file_indices) if file_indices is not None else None,
            relational=relational,
        )

    def _execute_task(
        self,
        session: DeviceSession,
        task: Union[Task, str],
        traversal: Optional[TraversalStrategy],
        params: QueryParams = DEFAULT_PARAMS,
    ) -> Tuple[Task, TaskResult, TraversalStrategy, Optional[StrategyDecision], GpuRunRecord]:
        """Ensure required state on ``session``, then run the marginal program."""
        if isinstance(task, str):
            task = Task.from_name(task)
        plan: TaskPlan = plan_for(task)

        decision: Optional[StrategyDecision] = None
        if traversal is None:
            decision = TraversalStrategySelector(session.layout).select(task)
            strategy = decision.strategy
        else:
            strategy = traversal
        if plan.fixed_strategy is not None:
            strategy = plan.fixed_strategy

        if params.filtered:
            num_files = session.layout.num_files
            for file_index in params.file_indices:
                if not 0 <= file_index < num_files:
                    raise ValueError(
                        f"file index {file_index} out of range (corpus has {num_files} files)"
                    )

        session.ensure(BASE_INIT)
        session.ensure(*plan.required_state(strategy, session.config, params))

        marginal = GpuRunRecord()
        device = GPUDevice(record=marginal, kernel_mode=session.config.kernel_mode)
        raw = plan.traverse(session, device, strategy, params)
        return task, normalize_result(task, raw), strategy, decision, marginal
