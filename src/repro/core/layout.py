"""Device-side layout of the compressed corpus (G-TADOC data structures).

Before any kernel runs, G-TADOC flattens the grammar into plain arrays
that GPU threads can index by rule id — sub-rule adjacency with
multiplicities, local (direct terminal) word tables, in/out edge
counts, parent lists and the root's per-file segments.  This mirrors
the "data structure preparation" step of the initialization phase in
Figure 3 of the paper and is shared by every task program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.compression.compressor import CompressedCorpus
from repro.compression.grammar import Grammar, is_rule_ref, rule_ref_id

__all__ = ["DeviceRuleLayout", "RootElement"]


@dataclass(frozen=True)
class RootElement:
    """One element of the root body, annotated with its file index."""

    position: int
    symbol: int
    file_index: int
    is_rule: bool


@dataclass
class DeviceRuleLayout:
    """Flattened, kernel-friendly view of a compressed corpus."""

    num_rules: int
    num_files: int
    vocabulary_size: int
    #: Per rule: body length in symbols.
    rule_lengths: List[int]
    #: Per rule: ``[(sub-rule id, multiplicity), ...]``.
    subrules: List[List[Tuple[int, int]]]
    #: Per rule: ``[(word id, count), ...]`` over the rule's direct terminals
    #: (splitters excluded).
    local_words: List[List[Tuple[int, int]]]
    #: Per rule: number of distinct non-root parents (drives top-down masks).
    num_in_edges: List[int]
    #: Per rule: number of distinct sub-rules (drives bottom-up masks).
    num_out_edges: List[int]
    #: Per rule: distinct parent rule ids (root included).
    parents: List[List[int]]
    #: Per rule: number of terminals the rule expands to.
    expansion_lengths: List[int]
    #: Per rule: occurrence count in the full corpus expansion.
    rule_weights: List[int]
    #: Root body elements annotated with file indices (splitters dropped).
    root_elements: List[RootElement]
    #: Per file: occurrences of each direct sub-rule of the root in that file.
    root_subrule_freq_per_file: List[Dict[int, int]]
    #: Per file: direct terminal word counts of the root in that file.
    root_words_per_file: List[Dict[int, int]]
    #: Raw root body (with splitters) and file segments, for sequence tasks.
    root_symbols: List[int] = field(default_factory=list)
    root_segments: List[Tuple[int, int]] = field(default_factory=list)
    #: Per rule: raw body symbols (rule references encoded negatively).
    rule_bodies: List[List[int]] = field(default_factory=list)

    # -- construction ----------------------------------------------------------------
    @classmethod
    def from_compressed(cls, compressed: CompressedCorpus) -> "DeviceRuleLayout":
        grammar = compressed.grammar
        dag = compressed.dag
        num_rules = len(grammar)
        num_files = len(compressed.file_names)

        rule_lengths = [len(rule) for rule in grammar]
        subrules = dag.subrule_frequency_lists()
        local_words: List[List[Tuple[int, int]]] = []
        for rule in grammar:
            counts: Dict[int, int] = {}
            for symbol in rule.symbols:
                if is_rule_ref(symbol) or compressed.is_splitter(symbol):
                    continue
                counts[symbol] = counts.get(symbol, 0) + 1
            local_words.append(sorted(counts.items()))

        parents = dag.parent_lists()
        num_in_edges = [
            sum(1 for parent in parents[rule_id] if parent != Grammar.ROOT_ID)
            for rule_id in range(num_rules)
        ]
        num_out_edges = list(dag.num_out_edges)

        root_elements: List[RootElement] = []
        root_subrule_freq_per_file: List[Dict[int, int]] = [dict() for _ in range(num_files)]
        root_words_per_file: List[Dict[int, int]] = [dict() for _ in range(num_files)]
        root_symbols = list(grammar.root.symbols)
        for file_index, (start, end) in enumerate(compressed.root_file_segments):
            for position in range(start, end):
                symbol = root_symbols[position]
                if is_rule_ref(symbol):
                    child = rule_ref_id(symbol)
                    root_elements.append(
                        RootElement(position, symbol, file_index, is_rule=True)
                    )
                    table = root_subrule_freq_per_file[file_index]
                    table[child] = table.get(child, 0) + 1
                else:
                    if compressed.is_splitter(symbol):
                        continue
                    root_elements.append(
                        RootElement(position, symbol, file_index, is_rule=False)
                    )
                    table = root_words_per_file[file_index]
                    table[symbol] = table.get(symbol, 0) + 1

        return cls(
            num_rules=num_rules,
            num_files=num_files,
            vocabulary_size=compressed.dictionary.num_words,
            rule_lengths=rule_lengths,
            subrules=subrules,
            local_words=local_words,
            num_in_edges=num_in_edges,
            num_out_edges=num_out_edges,
            parents=parents,
            expansion_lengths=list(dag.expansion_lengths),
            rule_weights=list(dag.weights),
            root_elements=root_elements,
            root_subrule_freq_per_file=root_subrule_freq_per_file,
            root_words_per_file=root_words_per_file,
            root_symbols=root_symbols,
            root_segments=list(compressed.root_file_segments),
            rule_bodies=[list(rule.symbols) for rule in grammar],
        )

    # -- derived quantities ----------------------------------------------------------------
    @property
    def total_symbols(self) -> int:
        return sum(self.rule_lengths)

    @property
    def average_rule_length(self) -> float:
        # Recomputed constantly by the scheduler's group sizing; the
        # layout is immutable after construction, so compute once.
        cached = self.__dict__.get("_average_rule_length")
        if cached is None:
            non_root = self.rule_lengths[1:] or [0]
            cached = sum(non_root) / max(1, len(non_root))
            self.__dict__["_average_rule_length"] = cached
        return cached

    def estimated_local_table_entries(self) -> int:
        """Upper bound on the total number of local-table entries (pool sizing)."""
        return sum(len(words) for words in self.local_words) + sum(
            len(children) for children in self.subrules
        )

    def device_footprint_bytes(self) -> int:
        """Approximate bytes the layout occupies in GPU memory."""
        symbol_bytes = self.total_symbols * 8
        adjacency_bytes = sum(len(children) for children in self.subrules) * 16
        word_bytes = sum(len(words) for words in self.local_words) * 16
        metadata_bytes = self.num_rules * 6 * 8
        return symbol_bytes + adjacency_bytes + word_bytes + metadata_bytes
