"""Parameter selection (paper §IV-B, "Parameter selection").

G-TADOC exposes a small number of tunables — most importantly the
oversize threshold that decides when a rule receives a whole thread
group.  The paper sets these with a greedy search over a sampled input;
this module reproduces that procedure: it extracts a sample of the
compressed corpus, evaluates a candidate grid with the real engine
under a chosen GPU cost model, and greedily fixes one parameter at a
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.analytics.base import Task
from repro.compression.compressor import CompressedCorpus
from repro.core.engine import GTadoc, GTadocConfig
from repro.perf.cost_model import GpuCostModel
from repro.perf.specs import GPUSpec

__all__ = ["TuningResult", "GreedyParameterTuner"]

DEFAULT_THRESHOLD_CANDIDATES = (4.0, 8.0, 16.0, 32.0, 64.0)
DEFAULT_GROUP_CANDIDATES = (32, 64, 128, 256)


@dataclass
class TuningResult:
    """Outcome of a greedy tuning pass."""

    config: GTadocConfig
    evaluated: Dict[str, Dict[float, float]]
    task: Task


class GreedyParameterTuner:
    """Greedy, one-parameter-at-a-time tuner driven by modelled time."""

    def __init__(
        self,
        compressed: CompressedCorpus,
        gpu_spec: GPUSpec,
        task: Task = Task.WORD_COUNT,
        threshold_candidates: Sequence[float] = DEFAULT_THRESHOLD_CANDIDATES,
        group_candidates: Sequence[int] = DEFAULT_GROUP_CANDIDATES,
    ) -> None:
        self.compressed = compressed
        self.gpu_spec = gpu_spec
        self.task = task
        self.threshold_candidates = list(threshold_candidates)
        self.group_candidates = list(group_candidates)

    def _modelled_time(self, config: GTadocConfig) -> float:
        engine = GTadoc(self.compressed, config=config)
        run = engine.run(self.task)
        model = GpuCostModel(self.gpu_spec)
        return model.time_seconds(run.init_record) + model.time_seconds(run.traversal_record)

    def tune(self, base_config: Optional[GTadocConfig] = None) -> TuningResult:
        """Greedily pick the oversize threshold, then the max group size."""
        config = base_config or GTadocConfig()
        evaluated: Dict[str, Dict[float, float]] = {"oversize_threshold": {}, "max_group_size": {}}

        best_threshold = config.oversize_threshold
        best_time = float("inf")
        for candidate in self.threshold_candidates:
            trial = GTadocConfig(
                sequence_length=config.sequence_length,
                oversize_threshold=candidate,
                max_group_size=config.max_group_size,
                use_memory_pool=config.use_memory_pool,
                needs_pcie_transfer=config.needs_pcie_transfer,
            )
            modelled = self._modelled_time(trial)
            evaluated["oversize_threshold"][candidate] = modelled
            if modelled < best_time:
                best_time = modelled
                best_threshold = candidate

        best_group = config.max_group_size
        best_time = float("inf")
        for candidate in self.group_candidates:
            trial = GTadocConfig(
                sequence_length=config.sequence_length,
                oversize_threshold=best_threshold,
                max_group_size=candidate,
                use_memory_pool=config.use_memory_pool,
                needs_pcie_transfer=config.needs_pcie_transfer,
            )
            modelled = self._modelled_time(trial)
            evaluated["max_group_size"][float(candidate)] = modelled
            if modelled < best_time:
                best_time = modelled
                best_group = candidate

        tuned = GTadocConfig(
            sequence_length=config.sequence_length,
            oversize_threshold=best_threshold,
            max_group_size=best_group,
            use_memory_pool=config.use_memory_pool,
            needs_pcie_transfer=config.needs_pcie_transfer,
        )
        return TuningResult(config=tuned, evaluated=evaluated, task=self.task)
