"""Top-down and bottom-up DAG traversal kernels (Algorithms 1 and 2).

Every function here launches simulated GPU kernels through a
:class:`~repro.gpusim.device.GPUDevice`, so the work they perform is
recorded per kernel and can be priced later.  The traversals follow the
paper's algorithms closely:

* **top-down** (Algorithm 1): rule weights (occurrence counts, or
  per-file occurrence counts for file-sensitive tasks) are pushed from
  the root towards the leaves; readiness is tracked with per-rule
  masks driven by in-edge counters; a final reduce kernel folds every
  rule's local word table, scaled by its weight, into a global
  thread-safe hash table.
* **bottom-up** (Algorithm 2): per-rule local tables are sized with a
  light-weight bound pass, allocated from the G-TADOC memory pool,
  filled leaves-first (masks driven by out-edge counters), and finally
  the root plus its direct (level-2) children are reduced into the
  result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import vectorized
from repro.core.layout import DeviceRuleLayout
from repro.core.scheduler import FineGrainedScheduler
from repro.gpusim.device import GPUDevice
from repro.gpusim.hashtable import DeviceHashTable
from repro.gpusim.memory_pool import MemoryPool
from repro.perf import workcosts as wc

__all__ = [
    "compute_rule_weights_topdown",
    "compute_file_weights_topdown",
    "topdown_word_count",
    "bottomup_word_count",
    "topdown_per_file_counts",
    "bottomup_per_file_counts",
    "prepare_bottomup",
    "allocate_local_tables",
    "build_local_tables_bottomup",
    "build_relational_tables",
    "assemble_relational_rows",
    "relational_filter_aggregate",
]


# ----------------------------------------------------------------------------------------
# Top-down traversal (Algorithm 1)
# ----------------------------------------------------------------------------------------

def compute_rule_weights_topdown(layout: DeviceRuleLayout, device: GPUDevice) -> List[int]:
    """Propagate rule occurrence weights from the root (Algorithm 1, lines 1-7).

    Returns ``weights[r]`` = number of times rule ``r`` occurs in the
    corpus expansion.  The root's weight is 1 by definition.
    """
    if device.kernel_mode == "vector":
        return vectorized.compute_rule_weights(layout, device)
    num_rules = layout.num_rules
    weights = [0] * num_rules
    weights[0] = 1
    cur_in_edges = [0] * num_rules
    masks = [False] * num_rules

    root_frequencies: Dict[int, int] = {}
    for per_file in layout.root_subrule_freq_per_file:
        for child, count in per_file.items():
            root_frequencies[child] = root_frequencies.get(child, 0) + count

    def init_mask_kernel(tid: int, ctx) -> None:
        rule_id = tid + 1  # the root is excluded, as in the paper
        if rule_id >= num_rules:
            return
        ctx.charge(ops=wc.MASK_CHECK_OPS + wc.WEIGHT_UPDATE_OPS, memory_bytes=16.0)
        weights[rule_id] = root_frequencies.get(rule_id, 0)
        cur_in_edges[rule_id] = 0
        masks[rule_id] = layout.num_in_edges[rule_id] == 0

    if num_rules > 1:
        device.launch("initTopDownMaskKernel", init_mask_kernel, max(1, num_rules - 1))

    stop = False
    while not stop:
        stop = True

        def topdown_kernel(tid: int, ctx) -> None:
            nonlocal stop
            rule_id = tid + 1
            if rule_id >= num_rules:
                return
            ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=4.0)
            if not masks[rule_id]:
                return
            for child, frequency in layout.subrules[rule_id]:
                ctx.charge(ops=wc.EDGE_VISIT_OPS, memory_bytes=wc.EDGE_VISIT_BYTES)
                ctx.atomic_add(weights, child, frequency * weights[rule_id])
                ctx.atomic_add(cur_in_edges, child, 1)
                if cur_in_edges[child] == layout.num_in_edges[child]:
                    masks[child] = True
                    stop = False
                    ctx.charge(ops=wc.MASK_CHECK_OPS)
            masks[rule_id] = False

        if num_rules > 1:
            device.launch("topDownKernel", topdown_kernel, max(1, num_rules - 1))
        else:
            break
    return weights


def topdown_word_count(
    layout: DeviceRuleLayout,
    scheduler: FineGrainedScheduler,
    device: GPUDevice,
    weights: Optional[List[int]] = None,
) -> Dict[int, int]:
    """Corpus-wide word counts via the top-down traversal (Algorithm 1)."""
    if weights is None:
        weights = compute_rule_weights_topdown(layout, device)
    if device.kernel_mode == "vector":
        return vectorized.topdown_word_count_reduce(layout, scheduler, device, weights)
    table = DeviceHashTable.sized_for(layout.vocabulary_size)

    rule_ids = list(range(layout.num_rules))
    items = [len(layout.local_words[rule_id]) for rule_id in rule_ids]
    assignments = scheduler.partition_items(rule_ids, items)

    def reduce_kernel(tid: int, ctx) -> None:
        assignment = assignments[tid]
        rule_weight = weights[assignment.rule_id]
        ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=8.0)
        if rule_weight == 0:
            return
        local = layout.local_words[assignment.rule_id]
        for word_id, count in local[assignment.start : assignment.end]:
            ctx.charge(ops=wc.SYMBOL_VISIT_OPS, memory_bytes=wc.SYMBOL_VISIT_BYTES)
            table.insert_add(word_id, count * rule_weight, ctx)

    device.launch("reduceResultKernel", reduce_kernel, max(1, len(assignments)))
    return table.to_dict()


def compute_file_weights_topdown(
    layout: DeviceRuleLayout, device: GPUDevice
) -> List[Dict[int, int]]:
    """Propagate per-file occurrence weights from the root.

    Instead of a scalar occurrence weight, every rule carries a small
    table ``{file index: occurrences within that file}`` — this is the
    "file information" the paper describes transmitting from the root,
    and is exactly why the top-down strategy becomes expensive when the
    corpus has very many files (section VI-C).  The tables only depend
    on the DAG, so they are shared by every file-sensitive task.
    """
    if device.kernel_mode == "vector":
        return vectorized.compute_file_weights(layout, device)
    num_rules = layout.num_rules
    file_weights: List[Dict[int, int]] = [dict() for _ in range(num_rules)]
    cur_in_edges = [0] * num_rules
    masks = [False] * num_rules

    def init_mask_kernel(tid: int, ctx) -> None:
        rule_id = tid + 1
        if rule_id >= num_rules:
            return
        ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=16.0)
        for file_index, per_file in enumerate(layout.root_subrule_freq_per_file):
            count = per_file.get(rule_id, 0)
            if count:
                file_weights[rule_id][file_index] = count
                ctx.charge(ops=wc.WEIGHT_UPDATE_OPS, memory_bytes=8.0)
        masks[rule_id] = layout.num_in_edges[rule_id] == 0

    if num_rules > 1:
        device.launch("initTopDownFileMaskKernel", init_mask_kernel, max(1, num_rules - 1))

    stop = False
    while not stop:
        stop = True

        def topdown_kernel(tid: int, ctx) -> None:
            nonlocal stop
            rule_id = tid + 1
            if rule_id >= num_rules:
                return
            ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=4.0)
            if not masks[rule_id]:
                return
            own_weights = file_weights[rule_id]
            for child, frequency in layout.subrules[rule_id]:
                ctx.charge(ops=wc.EDGE_VISIT_OPS, memory_bytes=wc.EDGE_VISIT_BYTES)
                child_weights = file_weights[child]
                for file_index, weight in own_weights.items():
                    ctx.charge(
                        ops=wc.WEIGHT_UPDATE_OPS + 1.0, memory_bytes=wc.SYMBOL_VISIT_BYTES
                    )
                    ctx.atomic_ops += 1.0
                    child_weights[file_index] = child_weights.get(file_index, 0) + frequency * weight
                ctx.atomic_add(cur_in_edges, child, 1)
                if cur_in_edges[child] == layout.num_in_edges[child]:
                    masks[child] = True
                    stop = False
            masks[rule_id] = False

        if num_rules > 1:
            device.launch("topDownFileKernel", topdown_kernel, max(1, num_rules - 1))
        else:
            break
    return file_weights


def topdown_per_file_counts(
    layout: DeviceRuleLayout,
    scheduler: FineGrainedScheduler,
    device: GPUDevice,
    file_weights: Optional[List[Dict[int, int]]] = None,
    file_indices: Optional[Sequence[int]] = None,
) -> List[Dict[int, int]]:
    """Per-file word counts via top-down propagation of file weights.

    When ``file_weights`` is supplied (e.g. cached by a session), only
    the reduce kernels run; otherwise the propagation pass runs first.

    When ``file_indices`` restricts the query to a file subset, the
    reduce pass only visits rules whose file weights intersect the
    subset and only accumulates into the requested files, and the root's
    direct words are folded into the same (single) kernel launch — a
    restricted query does strictly marginal work.
    """
    num_rules = layout.num_rules
    if file_weights is None:
        file_weights = compute_file_weights_topdown(layout, device)
    if device.kernel_mode == "vector":
        return vectorized.topdown_per_file_counts_vec(
            layout, scheduler, device, file_weights, file_indices
        )

    per_file_counts: List[Dict[int, int]] = [dict() for _ in range(layout.num_files)]

    if file_indices is not None:
        allowed = frozenset(file_indices)
        allowed_order = sorted(allowed)
        rule_ids = [
            rule_id
            for rule_id in range(1, num_rules)
            if any(file_index in allowed for file_index in file_weights[rule_id])
        ]
        items = [len(layout.local_words[rule_id]) for rule_id in rule_ids]
        assignments = scheduler.partition_items(rule_ids, items) if rule_ids else []

        def subset_kernel(tid: int, ctx) -> None:
            if tid < len(assignments):
                assignment = assignments[tid]
                rule_id = assignment.rule_id
                ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=8.0)
                weights = {
                    file_index: weight
                    for file_index, weight in file_weights[rule_id].items()
                    if file_index in allowed
                }
                if not weights:
                    return
                local = layout.local_words[rule_id][assignment.start : assignment.end]
                for word_id, count in local:
                    ctx.charge(ops=wc.SYMBOL_VISIT_OPS, memory_bytes=wc.SYMBOL_VISIT_BYTES)
                    for file_index, weight in weights.items():
                        ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
                        ctx.atomic_ops += 1.0
                        table = per_file_counts[file_index]
                        table[word_id] = table.get(word_id, 0) + count * weight
                return
            index = tid - len(assignments)
            if index >= len(allowed_order):
                return
            file_index = allowed_order[index]
            for word_id, count in layout.root_words_per_file[file_index].items():
                ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
                table = per_file_counts[file_index]
                table[word_id] = table.get(word_id, 0) + count

        device.launch(
            "reduceFileSubsetKernel",
            subset_kernel,
            max(1, len(assignments) + len(allowed_order)),
        )
        return per_file_counts
    rule_ids = list(range(1, num_rules)) if num_rules > 1 else []
    items = [len(layout.local_words[rule_id]) for rule_id in rule_ids]
    assignments = scheduler.partition_items(rule_ids, items) if rule_ids else []

    def reduce_kernel(tid: int, ctx) -> None:
        assignment = assignments[tid]
        rule_id = assignment.rule_id
        ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=8.0)
        weights = file_weights[rule_id]
        if not weights:
            return
        local = layout.local_words[rule_id][assignment.start : assignment.end]
        for word_id, count in local:
            ctx.charge(ops=wc.SYMBOL_VISIT_OPS, memory_bytes=wc.SYMBOL_VISIT_BYTES)
            for file_index, weight in weights.items():
                ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
                ctx.atomic_ops += 1.0
                table = per_file_counts[file_index]
                table[word_id] = table.get(word_id, 0) + count * weight

    if assignments:
        device.launch("reduceFileResultKernel", reduce_kernel, len(assignments))

    # The root's direct terminals are attributed to their files separately.
    def root_words_kernel(tid: int, ctx) -> None:
        file_index = tid
        if file_index >= layout.num_files:
            return
        for word_id, count in layout.root_words_per_file[file_index].items():
            ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
            table = per_file_counts[file_index]
            table[word_id] = table.get(word_id, 0) + count

    device.launch("rootWordsKernel", root_words_kernel, max(1, layout.num_files))
    return per_file_counts


# ----------------------------------------------------------------------------------------
# Bottom-up traversal (Algorithm 2)
# ----------------------------------------------------------------------------------------

def _bottomup_bound_pass(
    layout: DeviceRuleLayout, device: GPUDevice
) -> List[int]:
    """genLocTblBoundKernel loop: upper bound of every rule's local table."""
    num_rules = layout.num_rules
    bounds = [0] * num_rules
    cur_out_edges = [0] * num_rules
    masks = [False] * num_rules

    def init_mask_kernel(tid: int, ctx) -> None:
        rule_id = tid
        if rule_id >= num_rules:
            return
        ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=8.0)
        masks[rule_id] = layout.num_out_edges[rule_id] == 0

    device.launch("initBottomUpMaskKernel", init_mask_kernel, num_rules)

    stop = False
    while not stop:
        stop = True

        def bound_kernel(tid: int, ctx) -> None:
            nonlocal stop
            rule_id = tid
            if rule_id >= num_rules:
                return
            ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=4.0)
            if not masks[rule_id]:
                return
            if rule_id == 0:
                # The root is never accumulated into (it holds file
                # information); it only terminates the traversal.
                masks[0] = False
                return
            bound = len(layout.local_words[rule_id])
            ctx.charge(ops=wc.SYMBOL_VISIT_OPS, memory_bytes=8.0)
            for child, _frequency in layout.subrules[rule_id]:
                ctx.charge(ops=wc.EDGE_VISIT_OPS, memory_bytes=wc.EDGE_VISIT_BYTES)
                bound += bounds[child]
            bounds[rule_id] = min(bound, layout.vocabulary_size)
            for parent in layout.parents[rule_id]:
                ctx.charge(ops=wc.WEIGHT_UPDATE_OPS, memory_bytes=8.0)
                ctx.atomic_add(cur_out_edges, parent, 1)
                if cur_out_edges[parent] == layout.num_out_edges[parent]:
                    masks[parent] = True
                    stop = False
            masks[rule_id] = False

        device.launch("genLocTblBoundKernel", bound_kernel, num_rules)
    return bounds


def allocate_local_tables(memory_pool: MemoryPool, bounds: Sequence[int]) -> None:
    """Reserve every rule's local table in the pool (idempotent).

    Rules whose table is already resident (a session reusing its pool
    across tasks) are skipped, so bounds passes and table builds can both
    ensure the allocation without double-allocating an owner.
    """
    for rule_id, bound in enumerate(bounds):
        owner = f"locTbl[{rule_id}]"
        if memory_pool.allocation_of(owner) is None:
            memory_pool.allocate(owner, 2 * max(1, bound))


def prepare_bottomup(
    layout: DeviceRuleLayout,
    device: GPUDevice,
    memory_pool: Optional[MemoryPool] = None,
) -> List[int]:
    """Initialization-phase half of Algorithm 2.

    Generates the child->parent pointers, runs the light-weight bound
    pass that sizes every rule's local table, and (when a memory pool is
    supplied) allocates those tables from the pool.  Returns the bounds.
    """
    if device.kernel_mode == "vector":
        bounds = vectorized.prepare_bottomup_vec(layout, device)
        if memory_pool is not None:
            allocate_local_tables(memory_pool, bounds)
        return bounds
    num_rules = layout.num_rules

    def gen_parents_kernel(tid: int, ctx) -> None:
        rule_id = tid
        if rule_id >= num_rules:
            return
        for _child, _frequency in layout.subrules[rule_id]:
            ctx.charge(ops=wc.EDGE_VISIT_OPS, memory_bytes=wc.EDGE_VISIT_BYTES)

    device.launch("genRuleParentsKernel", gen_parents_kernel, num_rules)

    bounds = _bottomup_bound_pass(layout, device)

    if memory_pool is not None:
        allocate_local_tables(memory_pool, bounds)
    return bounds


def build_local_tables_bottomup(
    layout: DeviceRuleLayout,
    device: GPUDevice,
    memory_pool: Optional[MemoryPool] = None,
    bounds: Optional[List[int]] = None,
) -> Tuple[List[Dict[int, int]], List[int]]:
    """Build subtree-complete local word tables for every rule (Algorithm 2).

    Returns ``(local_tables, bounds)`` where ``local_tables[r]`` maps
    word id to the number of occurrences in one expansion of rule ``r``.
    When ``bounds`` is not supplied, the initialization-phase half
    (:func:`prepare_bottomup`) is run first.  When both a pool and
    precomputed ``bounds`` are supplied, the per-rule tables are still
    guaranteed pool residency (the allocations the bound pass made are
    reused, missing ones are added).
    """
    num_rules = layout.num_rules
    if bounds is None:
        bounds = prepare_bottomup(layout, device, memory_pool)
    elif memory_pool is not None:
        allocate_local_tables(memory_pool, bounds)
    if device.kernel_mode == "vector":
        return vectorized.build_local_tables_vec(layout, device), bounds

    local_tables: List[Dict[int, int]] = [dict() for _ in range(num_rules)]
    cur_out_edges = [0] * num_rules
    masks = [False] * num_rules

    def init_mask_kernel(tid: int, ctx) -> None:
        rule_id = tid
        if rule_id >= num_rules:
            return
        ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=8.0)
        masks[rule_id] = layout.num_out_edges[rule_id] == 0

    device.launch("initBottomUpMaskKernel", init_mask_kernel, num_rules)

    stop = False
    while not stop:
        stop = True

        def loc_tbl_kernel(tid: int, ctx) -> None:
            nonlocal stop
            rule_id = tid
            if rule_id >= num_rules:
                return
            ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=4.0)
            if not masks[rule_id]:
                return
            if rule_id == 0:
                # Results are gathered at the root's direct children
                # (level-2 nodes), never at the root itself.
                masks[0] = False
                return
            table = local_tables[rule_id]
            for word_id, count in layout.local_words[rule_id]:
                ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
                table[word_id] = table.get(word_id, 0) + count
            for child, frequency in layout.subrules[rule_id]:
                ctx.charge(ops=wc.EDGE_VISIT_OPS, memory_bytes=wc.EDGE_VISIT_BYTES)
                for word_id, count in local_tables[child].items():
                    ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
                    table[word_id] = table.get(word_id, 0) + count * frequency
            for parent in layout.parents[rule_id]:
                ctx.charge(ops=wc.WEIGHT_UPDATE_OPS, memory_bytes=8.0)
                ctx.atomic_add(cur_out_edges, parent, 1)
                if cur_out_edges[parent] == layout.num_out_edges[parent]:
                    masks[parent] = True
                    stop = False
            masks[rule_id] = False

        device.launch("genLocTblKernel", loc_tbl_kernel, num_rules)
    return local_tables, bounds


def bottomup_word_count(
    layout: DeviceRuleLayout,
    device: GPUDevice,
    memory_pool: Optional[MemoryPool] = None,
    local_tables: Optional[List[Dict[int, int]]] = None,
) -> Dict[int, int]:
    """Corpus-wide word counts via the bottom-up traversal (Algorithm 2)."""
    if local_tables is None:
        local_tables, _bounds = build_local_tables_bottomup(layout, device, memory_pool)
    if device.kernel_mode == "vector":
        return vectorized.bottomup_word_count_reduce(layout, device, local_tables)
    table = DeviceHashTable.sized_for(layout.vocabulary_size)

    # Level-2 nodes: the root's direct children, with their root frequencies.
    level2: Dict[int, int] = {}
    for per_file in layout.root_subrule_freq_per_file:
        for child, count in per_file.items():
            level2[child] = level2.get(child, 0) + count
    level2_items = sorted(level2.items())

    def reduce_kernel(tid: int, ctx) -> None:
        if tid == 0:
            # The root's own terminal words.
            for word_id, count in layout.local_words[0]:
                ctx.charge(ops=wc.SYMBOL_VISIT_OPS, memory_bytes=wc.SYMBOL_VISIT_BYTES)
                table.insert_add(word_id, count, ctx)
            return
        index = tid - 1
        if index >= len(level2_items):
            return
        child, root_frequency = level2_items[index]
        ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=8.0)
        for word_id, count in local_tables[child].items():
            ctx.charge(ops=wc.SYMBOL_VISIT_OPS, memory_bytes=wc.SYMBOL_VISIT_BYTES)
            table.insert_add(word_id, count * root_frequency, ctx)

    device.launch("reduceResultKernel", reduce_kernel, 1 + len(level2_items))
    return table.to_dict()


def bottomup_per_file_counts(
    layout: DeviceRuleLayout,
    device: GPUDevice,
    memory_pool: Optional[MemoryPool] = None,
    local_tables: Optional[List[Dict[int, int]]] = None,
    file_indices: Optional[Sequence[int]] = None,
) -> List[Dict[int, int]]:
    """Per-file word counts via the bottom-up traversal.

    Local tables are built once (subtree-complete), then each file's
    result is assembled from the root segment belonging to that file:
    its direct terminal words plus its direct sub-rules' local tables
    scaled by their in-file occurrence counts.  A ``file_indices``
    subset restricts the reduce to the requested files only.
    """
    if local_tables is None:
        local_tables, _bounds = build_local_tables_bottomup(layout, device, memory_pool)
    if device.kernel_mode == "vector":
        return vectorized.bottomup_per_file_counts_reduce(
            layout, device, local_tables, file_indices
        )
    per_file_counts: List[Dict[int, int]] = [dict() for _ in range(layout.num_files)]
    targets = sorted(set(file_indices)) if file_indices is not None else None

    def reduce_kernel(tid: int, ctx) -> None:
        if targets is not None:
            if tid >= len(targets):
                return
            file_index = targets[tid]
        else:
            file_index = tid
        if file_index >= layout.num_files:
            return
        result = per_file_counts[file_index]
        for word_id, count in layout.root_words_per_file[file_index].items():
            ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
            result[word_id] = result.get(word_id, 0) + count
        for child, frequency in layout.root_subrule_freq_per_file[file_index].items():
            ctx.charge(ops=wc.EDGE_VISIT_OPS, memory_bytes=wc.EDGE_VISIT_BYTES)
            for word_id, count in local_tables[child].items():
                ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
                result[word_id] = result.get(word_id, 0) + count * frequency

    num_threads = len(targets) if targets is not None else layout.num_files
    device.launch("reduceFileResultKernel", reduce_kernel, max(1, num_threads))
    return per_file_counts


# ----------------------------------------------------------------------------------------
# Relational analytics (compressed-domain rows; see repro.relational)
# ----------------------------------------------------------------------------------------

def build_relational_tables(
    layout: DeviceRuleLayout, device: GPUDevice, schema, dictionary
):
    """Per-rule relational parse states via the bottom-up wavefront.

    Every rule gets the :mod:`repro.relational.compute` parse-state
    summary of its expansion, built leaves-first with the same
    out-edge-counter readiness protocol Algorithm 2 uses for local word
    tables.  The states depend only on the grammar and the schema, so a
    session memoizes them per schema (like ``LOCAL_TABLES``) and every
    relational query over that schema pays only marginal kernels.
    """
    from repro.relational import compute as rc

    if device.kernel_mode == "vector":
        return vectorized.build_relational_tables_vec(layout, device, schema, dictionary)
    anchors = rc.anchor_ids(schema, dictionary)
    caps = rc.schema_caps(schema)
    num_anchors = len(anchors)
    num_rules = layout.num_rules
    states = [rc.empty_state(num_anchors) for _ in range(num_rules)]
    cur_out_edges = [0] * num_rules
    masks = [False] * num_rules

    def init_mask_kernel(tid: int, ctx) -> None:
        rule_id = tid
        if rule_id >= num_rules:
            return
        ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=8.0)
        masks[rule_id] = layout.num_out_edges[rule_id] == 0

    device.launch("initRelationalMaskKernel", init_mask_kernel, num_rules)

    stop = False
    while not stop:
        stop = True

        def parse_kernel(tid: int, ctx) -> None:
            nonlocal stop
            rule_id = tid
            if rule_id >= num_rules:
                return
            ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=4.0)
            if not masks[rule_id]:
                return
            if rule_id == 0:
                # Per-file states are assembled from the root segments,
                # never at the root itself.
                masks[0] = False
                return
            body = layout.rule_bodies[rule_id]
            ctx.charge(
                ops=wc.SYMBOL_VISIT_OPS * len(body),
                memory_bytes=wc.SYMBOL_VISIT_BYTES * len(body),
            )
            for _child, _frequency in layout.subrules[rule_id]:
                ctx.charge(ops=wc.EDGE_VISIT_OPS, memory_bytes=wc.EDGE_VISIT_BYTES)
            states[rule_id] = rc.fold_symbol_states(body, states, anchors, caps)
            for parent in layout.parents[rule_id]:
                ctx.charge(ops=wc.WEIGHT_UPDATE_OPS, memory_bytes=8.0)
                ctx.atomic_add(cur_out_edges, parent, 1)
                if cur_out_edges[parent] == layout.num_out_edges[parent]:
                    masks[parent] = True
                    stop = False
            masks[rule_id] = False

        device.launch("relParseKernel", parse_kernel, num_rules)
    return states


def assemble_relational_rows(
    layout: DeviceRuleLayout, device: GPUDevice, schema, states, dictionary
):
    """Typed per-file rows from the per-rule parse states (one launch).

    One thread per file walks the file's root segment, combining
    terminal-token states with the memoized states of the root's direct
    sub-rules, then extracts and types the schema's fields — the
    compressed-domain equivalent of parsing the decompressed file text.
    """
    from repro.relational import compute as rc

    if device.kernel_mode == "vector":
        return vectorized.assemble_relational_rows_vec(
            layout, device, schema, states, dictionary
        )
    anchors = rc.anchor_ids(schema, dictionary)
    caps = rc.schema_caps(schema)
    num_fields = len(schema.fields)
    rows = [None] * layout.num_files

    def assemble_kernel(tid: int, ctx) -> None:
        file_index = tid
        if file_index >= layout.num_files:
            return
        start, end = layout.root_segments[file_index]
        ctx.charge(
            ops=wc.SYMBOL_VISIT_OPS * (end - start) + wc.HASH_UPDATE_OPS * num_fields,
            memory_bytes=wc.SYMBOL_VISIT_BYTES * (end - start)
            + wc.HASH_UPDATE_BYTES * num_fields,
        )
        state = rc.fold_symbol_states(
            layout.root_symbols[start:end], states, anchors, caps
        )
        rows[file_index] = rc.typed_row(
            rc.extract_symbols(state, schema), schema, decode=dictionary.decode
        )

    device.launch("relAssembleRowsKernel", assemble_kernel, max(1, layout.num_files))
    return rows


def relational_filter_aggregate(
    layout: DeviceRuleLayout,
    device: GPUDevice,
    spec,
    rows,
    file_indices: Optional[Sequence[int]] = None,
):
    """Marginal per-query kernels: predicate filter + grouped aggregation.

    With the per-file rows memoized on the session, a relational query
    costs exactly two launches: ``relFilterKernel`` evaluates every
    predicate term on every considered row (no short-circuit — the
    charge is data-independent), and ``relAggregateKernel`` folds the
    passing rows into per-group aggregate cells with one tracked atomic
    per (group, aggregate) update, so contended groups surface as atomic
    conflicts.  The result values come from the shared
    :func:`repro.relational.compute.execute_relational`, which every
    engine uses — results agree across backends by construction.
    """
    from repro.relational import compute as rc

    if device.kernel_mode == "vector":
        return vectorized.relational_filter_aggregate_vec(
            layout, device, spec, rows, file_indices
        )
    schema = spec.schema
    targets = (
        sorted(set(file_indices)) if file_indices is not None else list(range(layout.num_files))
    )
    num_conditions = len(spec.predicate)
    num_aggs = len(spec.aggregates)
    group_index = schema.field_index(spec.group_by) if spec.group_by is not None else None
    passed = [False] * layout.num_files

    def filter_kernel(tid: int, ctx) -> None:
        if tid >= len(targets):
            return
        file_index = targets[tid]
        ctx.charge(
            ops=wc.MASK_CHECK_OPS + wc.WEIGHT_UPDATE_OPS * num_conditions,
            memory_bytes=4.0 + 8.0 * num_conditions,
        )
        passed[file_index] = rc.evaluate_predicate(rows[file_index], spec)

    device.launch("relFilterKernel", filter_kernel, max(1, len(targets)))

    # Host-side control: the group directory that maps group values to
    # aggregate-cell slots (proportional to rows considered + groups).
    slots: Dict = {}
    for file_index in targets:
        if not passed[file_index]:
            continue
        group = None if group_index is None else rows[file_index][group_index]
        if group_index is not None and group is None:
            continue
        if group not in slots:
            slots[group] = len(slots)
    device.record.host_counter.charge(
        compute_ops=2.0 * len(targets), memory_bytes=8.0 * max(1, len(slots))
    )
    cells = [0.0] * max(1, len(slots) * num_aggs)

    def aggregate_kernel(tid: int, ctx) -> None:
        if tid >= len(targets):
            return
        file_index = targets[tid]
        ctx.charge(ops=wc.MASK_CHECK_OPS, memory_bytes=4.0)
        if not passed[file_index]:
            return
        row = rows[file_index]
        group = None if group_index is None else row[group_index]
        if group_index is not None and group is None:
            return
        ctx.charge(ops=wc.HASH_UPDATE_OPS, memory_bytes=wc.HASH_UPDATE_BYTES)
        base = slots[group] * num_aggs
        for offset in range(num_aggs):
            ctx.charge(ops=wc.WEIGHT_UPDATE_OPS, memory_bytes=8.0)
            ctx.atomic_add(cells, base + offset, 1.0)

    device.launch("relAggregateKernel", aggregate_kernel, max(1, len(targets)))
    return rc.execute_relational([rows[file_index] for file_index in targets], spec)
