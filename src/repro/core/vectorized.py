"""Bulk (numpy) implementations of the hot simulated kernels.

The scalar kernels in :mod:`repro.core.traversal` and
:mod:`repro.core.sequence` execute every simulated GPU thread as a
Python callback, which models launches faithfully but makes wall-clock
time interpreter-bound.  This module re-implements the hottest kernels
as numpy array programs over CSR-style flattened layouts that are
precomputed once per :class:`~repro.core.layout.DeviceRuleLayout` and
cached on it, then records each launch through
:meth:`~repro.gpusim.device.GPUDevice.launch_bulk` with per-thread work
vectors.

Equivalence contract
--------------------
For every ported kernel the vector path produces

* **bit-identical results** (all charged quantities and table values are
  integers, and every accumulation is reassociated only over integer
  sums, which float64 represents exactly below 2**53), and
* **identical** :class:`~repro.perf.counters.KernelStats` — the same
  launch count, thread count, per-warp serial ops, totals, atomics and
  conflict counts the scalar interpreter loop would have recorded.

The hash-table cost model in :func:`_hash_program` mirrors
:meth:`repro.gpusim.hashtable.DeviceHashTable.insert_add` exactly:
an *update* of the key at 0-based chain position ``p`` costs
``2p + 5`` ops / ``16p + 32`` bytes and one tracked atomic, an *insert*
behind ``p`` existing chain nodes costs ``4p + 8`` ops /
``32p + 49`` bytes and one tracked atomic (the bucket-lock CAS).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.layout import DeviceRuleLayout
from repro.core.scheduler import FineGrainedScheduler, ThreadAssignment
from repro.gpusim.device import GPUDevice
from repro.perf import workcosts as wc

__all__ = [
    "FlattenedLayout",
    "flattened",
    "data_structure_prep",
    "compute_rule_weights",
    "compute_file_weights",
    "topdown_word_count_reduce",
    "topdown_per_file_counts_vec",
    "prepare_bottomup_vec",
    "build_local_tables_vec",
    "bottomup_word_count_reduce",
    "bottomup_per_file_counts_reduce",
    "sequence_counts_vec",
    "build_relational_tables_vec",
    "assemble_relational_rows_vec",
    "relational_filter_aggregate_vec",
]

_I64 = np.int64
_F64 = np.float64

#: Knuth multiplicative constant, as in :class:`DeviceHashTable`.
_HASH_MULT = 2654435761


def _offsets(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(len(counts) + 1, dtype=_I64)
    np.cumsum(counts, out=out[1:])
    return out


def _flat_pairs(lists: Sequence[Sequence[Tuple[int, int]]]) -> Tuple[np.ndarray, np.ndarray]:
    first = [pair[0] for entries in lists for pair in entries]
    second = [pair[1] for entries in lists for pair in entries]
    return (
        np.asarray(first, dtype=_I64) if first else np.zeros(0, dtype=_I64),
        np.asarray(second, dtype=_I64) if second else np.zeros(0, dtype=_I64),
    )


def _flat_ints(lists: Sequence[Sequence[int]]) -> np.ndarray:
    flat = [value for entries in lists for value in entries]
    return np.asarray(flat, dtype=_I64) if flat else np.zeros(0, dtype=_I64)


class FlattenedLayout:
    """CSR-style flat-array view of a :class:`DeviceRuleLayout`.

    Built once per layout (see :func:`flattened`) and shared by every
    vectorized kernel, so a launch is a handful of array operations
    instead of a Python loop per simulated thread.
    """

    def __init__(self, layout: DeviceRuleLayout) -> None:
        self.layout = layout
        n = layout.num_rules
        self.num_rules = n
        self.num_files = layout.num_files
        self.vocabulary_size = layout.vocabulary_size
        self.rule_lengths = np.asarray(layout.rule_lengths, dtype=_I64)

        # rule -> local (word, count) pairs, already sorted by word id.
        self.lw_count = np.asarray([len(w) for w in layout.local_words], dtype=_I64)
        self.lw_off = _offsets(self.lw_count)
        self.lw_keys, self.lw_vals = _flat_pairs(layout.local_words)

        # rule -> (sub-rule, multiplicity) adjacency.
        self.sr_count = np.asarray([len(s) for s in layout.subrules], dtype=_I64)
        self.sr_off = _offsets(self.sr_count)
        self.sr_child, self.sr_freq = _flat_pairs(layout.subrules)

        # rule -> distinct parents (root included).
        self.par_count = np.asarray([len(p) for p in layout.parents], dtype=_I64)
        self.par_off = _offsets(self.par_count)
        self.par_ids = _flat_ints(layout.parents)

        self.num_in = np.asarray(layout.num_in_edges, dtype=_I64)
        self.num_out = np.asarray(layout.num_out_edges, dtype=_I64)

        # Root segments per file: direct terminal words and direct
        # sub-rule frequencies, flattened in dict (= first occurrence) order.
        self.rw_count = np.asarray(
            [len(t) for t in layout.root_words_per_file], dtype=_I64
        )
        self.rw_off = _offsets(self.rw_count)
        self.rw_keys = _flat_ints([list(t.keys()) for t in layout.root_words_per_file])
        self.rw_vals = _flat_ints([list(t.values()) for t in layout.root_words_per_file])

        self.rc_count = np.asarray(
            [len(t) for t in layout.root_subrule_freq_per_file], dtype=_I64
        )
        self.rc_off = _offsets(self.rc_count)
        self.rc_child = _flat_ints(
            [list(t.keys()) for t in layout.root_subrule_freq_per_file]
        )
        self.rc_freq = _flat_ints(
            [list(t.values()) for t in layout.root_subrule_freq_per_file]
        )
        self.rc_file = np.repeat(np.arange(self.num_files, dtype=_I64), self.rc_count)

        # Aggregate root frequencies (level-2 weights) and the per-rule
        # count of files that reference the rule from the root.
        self.root_freq = np.zeros(n, dtype=_I64)
        np.add.at(self.root_freq, self.rc_child, self.rc_freq)
        self.files_per_rule = np.bincount(self.rc_child, minlength=n).astype(_I64)
        self.level2_child = np.flatnonzero(self.root_freq).astype(_I64)
        self.level2_freq = self.root_freq[self.level2_child]

        self._assignments: Dict[Tuple, List[ThreadAssignment]] = {}

    # -- scheduling ------------------------------------------------------------------
    def assignments(self, scheduler: FineGrainedScheduler, tag: str) -> List[ThreadAssignment]:
        """Cached thread assignments for the three unfiltered reduce shapes."""
        key = (tag, scheduler.oversize_threshold, scheduler.max_group_size)
        cached = self._assignments.get(key)
        if cached is None:
            if tag == "corpus":
                rule_ids = list(range(self.num_rules))
                items = [int(c) for c in self.lw_count]
            elif tag == "file":
                rule_ids = list(range(1, self.num_rules)) if self.num_rules > 1 else []
                items = [int(c) for c in self.lw_count[1:]]
            elif tag == "sequence":
                rule_ids = list(range(1, self.num_rules))
                items = [int(length) for length in self.rule_lengths[1:]]
            else:  # pragma: no cover - internal misuse
                raise ValueError(f"unknown assignment tag: {tag!r}")
            cached = scheduler.partition_items(rule_ids, items) if rule_ids else []
            self._assignments[key] = cached
        return cached

    def gather_local_words(
        self, rules: np.ndarray, starts: np.ndarray, ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten per-assignment local-word slices into one op stream.

        Returns ``(owner, keys, vals)`` where ``owner[i]`` is the index of
        the assignment that visits pair ``i``; pairs appear in ascending
        assignment order, slice order — exactly the scalar charge order.
        """
        lo = self.lw_off[rules] + starts
        lengths = np.maximum(0, ends - starts)
        total = int(lengths.sum())
        if total == 0:
            empty = np.zeros(0, dtype=_I64)
            return empty, empty, empty
        owner = np.repeat(np.arange(len(rules), dtype=_I64), lengths)
        within = np.arange(total, dtype=_I64) - np.repeat(
            _offsets(lengths)[:-1], lengths
        )
        flat = np.repeat(lo, lengths) + within
        return owner, self.lw_keys[flat], self.lw_vals[flat]


def flattened(layout: DeviceRuleLayout) -> FlattenedLayout:
    """The layout's cached :class:`FlattenedLayout` (built on first use)."""
    cache = getattr(layout, "_vectorized_flat", None)
    if cache is None:
        cache = FlattenedLayout(layout)
        layout._vectorized_flat = cache  # type: ignore[attr-defined]
    return cache


def _assignment_arrays(
    assignments: Sequence[ThreadAssignment],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    rules = np.asarray([a.rule_id for a in assignments], dtype=_I64)
    starts = np.asarray([a.start for a in assignments], dtype=_I64)
    ends = np.asarray([a.end for a in assignments], dtype=_I64)
    return rules, starts, ends


# ----------------------------------------------------------------------------------------
# DeviceHashTable cost model
# ----------------------------------------------------------------------------------------

def _hash_program(
    op_keys: np.ndarray,
    op_values: np.ndarray,
    num_buckets: int,
    capacity: int,
) -> Tuple[np.ndarray, np.ndarray, float, np.ndarray, np.ndarray]:
    """Replay a single-launch ``insert_add`` stream against one table.

    ``op_keys``/``op_values`` are the stream in charge order.  Returns
    ``(ops, mem, conflicts, keys, sums)``: per-op op/byte costs (each op
    also performs exactly one tracked atomic), the launch's total atomic
    conflicts (value-slot adds plus bucket-lock CASes), and the table
    contents in node-slot (insertion) order.
    """
    n_ops = len(op_keys)
    if n_ops == 0:
        empty_f = np.zeros(0, dtype=_F64)
        empty_i = np.zeros(0, dtype=_I64)
        return empty_f, empty_f, 0.0, empty_i, empty_i
    keys = np.asarray(op_keys, dtype=_I64)
    uniq, first_idx, inv = np.unique(keys, return_index=True, return_inverse=True)
    if len(uniq) > capacity:
        raise MemoryError("DeviceHashTable capacity exhausted")
    # Node slots are claimed in first-occurrence order.
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(uniq), dtype=_I64)
    rank[order] = np.arange(len(uniq), dtype=_I64)
    buckets = (uniq * _I64(_HASH_MULT)) % _I64(num_buckets)
    # Chain position = number of earlier-inserted keys in the same bucket.
    sorter = np.lexsort((rank, buckets))
    sorted_buckets = buckets[sorter]
    new_group = np.ones(len(uniq), dtype=bool)
    new_group[1:] = sorted_buckets[1:] != sorted_buckets[:-1]
    group_start = np.maximum.accumulate(
        np.where(new_group, np.arange(len(uniq), dtype=_I64), 0)
    )
    chain_pos = np.empty(len(uniq), dtype=_I64)
    chain_pos[sorter] = np.arange(len(uniq), dtype=_I64) - group_start
    p = chain_pos[inv]
    is_insert = np.arange(n_ops, dtype=_I64) == first_idx[inv]
    ops = np.where(is_insert, 4 * p + 8, 2 * p + 5).astype(_F64)
    mem = np.where(is_insert, 32 * p + 49, 16 * p + 32).astype(_F64)
    # Conflicts: a key seen ``occ`` times gets ``occ - 1`` tracked adds on
    # its value slot; a bucket receiving ``g`` inserts gets ``g`` CASes on
    # its lock.  Each tracked address with ``c`` accesses contributes c-1.
    occ = np.bincount(inv, minlength=len(uniq))
    value_conflicts = int(np.maximum(0, occ - 2).sum())
    lock_conflicts = int(len(uniq) - len(np.unique(buckets)))
    sums = np.zeros(len(uniq), dtype=_I64)
    np.add.at(sums, inv, np.asarray(op_values, dtype=_I64))
    return ops, mem, float(value_conflicts + lock_conflicts), uniq[order], sums[order]


def _table_geometry(expected_keys: int) -> Tuple[int, int]:
    """Mirror :meth:`DeviceHashTable.sized_for`."""
    expected = max(1, int(expected_keys))
    return max(8, expected * 2), max(8, int(expected * 1.5) + 8)


def _thread_sums(owner: np.ndarray, values: np.ndarray, num_threads: int) -> np.ndarray:
    return np.bincount(owner, weights=values, minlength=num_threads).astype(_F64)


# ----------------------------------------------------------------------------------------
# Initialization phase
# ----------------------------------------------------------------------------------------

def data_structure_prep(layout: DeviceRuleLayout, device: GPUDevice) -> None:
    """Bulk port of ``dataStructurePrepKernel`` (Figure 3's left box)."""
    flat = flattened(layout)
    n = flat.num_rules
    num_threads = max(1, n)
    ops = np.zeros(num_threads, dtype=_F64)
    mem = np.zeros(num_threads, dtype=_F64)
    lengths = flat.rule_lengths.astype(_F64)
    ops[:n] = wc.SYMBOL_VISIT_OPS * lengths + wc.MASK_CHECK_OPS
    mem[:n] = wc.SYMBOL_VISIT_BYTES * lengths
    device.launch_bulk(
        "dataStructurePrepKernel", num_threads, thread_ops=ops, thread_memory_bytes=mem
    )


# ----------------------------------------------------------------------------------------
# Top-down traversal (Algorithm 1)
# ----------------------------------------------------------------------------------------

def compute_rule_weights(layout: DeviceRuleLayout, device: GPUDevice) -> List[int]:
    """Bulk port of Algorithm 1's weight propagation (scalar weights)."""
    flat = flattened(layout)
    n = flat.num_rules
    weights = np.zeros(n, dtype=_I64)
    weights[0] = 1
    if n <= 1:
        return weights.tolist()

    weights[1:] = flat.root_freq[1:]
    num_threads = n - 1
    init_ops = np.full(num_threads, wc.MASK_CHECK_OPS + wc.WEIGHT_UPDATE_OPS, dtype=_F64)
    init_mem = np.full(num_threads, 16.0, dtype=_F64)
    device.launch_bulk(
        "initTopDownMaskKernel", num_threads, thread_ops=init_ops, thread_memory_bytes=init_mem
    )

    cur_in = np.zeros(n, dtype=_I64)
    pending = sorted(np.flatnonzero(flat.num_in[1:] == 0) + 1)
    while True:
        ops = np.full(num_threads, wc.MASK_CHECK_OPS, dtype=_F64)
        mem = np.full(num_threads, 4.0, dtype=_F64)
        atomics = np.zeros(num_threads, dtype=_F64)
        touch_counts = np.zeros(n, dtype=_I64)
        heap = list(pending)
        heapq.heapify(heap)
        pending = []
        hit_any = False
        while heap:
            r = heapq.heappop(heap)
            tid = r - 1
            lo, hi = int(flat.sr_off[r]), int(flat.sr_off[r + 1])
            cs = flat.sr_child[lo:hi]
            fs = flat.sr_freq[lo:hi]
            edges = hi - lo
            if edges:
                weights[cs] += fs * weights[r]
                cur_in[cs] += 1
                touch_counts[cs] += 1
                newly = cs[cur_in[cs] == flat.num_in[cs]]
            else:
                newly = ()
            hits = len(newly)
            # Each edge: EDGE_VISIT + two tracked atomic adds; each child
            # that becomes ready charges one extra MASK op to this thread.
            ops[tid] += (wc.EDGE_VISIT_OPS + 2.0) * edges + wc.MASK_CHECK_OPS * hits
            mem[tid] += (wc.EDGE_VISIT_BYTES + 16.0) * edges
            atomics[tid] += 2.0 * edges
            for child in newly:
                hit_any = True
                c = int(child)
                if c > r:
                    heapq.heappush(heap, c)
                else:
                    pending.append(c)
        # Both the weights[] and cur_in_edges[] atomics are tracked per
        # child address, so each contested child counts twice.
        conflicts = 2.0 * float(np.maximum(0, touch_counts - 1).sum())
        device.launch_bulk(
            "topDownKernel",
            num_threads,
            thread_ops=ops,
            thread_memory_bytes=mem,
            thread_atomic_ops=atomics,
            atomic_conflicts=conflicts,
        )
        if not hit_any:
            break
    return weights.tolist()


class FileWeights(list):
    """``List[Dict[int, int]]`` of per-rule file weights + a dense matrix.

    Behaves exactly like the scalar return value of
    :func:`repro.core.traversal.compute_file_weights_topdown`; the
    ``dense`` attribute carries the ``[num_rules, num_files]`` int64
    matrix the vectorized reduce kernels consume directly.
    """

    dense: Optional[np.ndarray] = None


def _dense_file_weights(
    flat: FlattenedLayout, file_weights: Sequence[Dict[int, int]]
) -> np.ndarray:
    dense = getattr(file_weights, "dense", None)
    if dense is not None:
        return dense
    matrix = np.zeros((flat.num_rules, flat.num_files), dtype=_I64)
    for rule_id, table in enumerate(file_weights):
        for file_index, weight in table.items():
            matrix[rule_id, file_index] = weight
    return matrix


def compute_file_weights(layout: DeviceRuleLayout, device: GPUDevice) -> FileWeights:
    """Bulk port of the per-file weight propagation (file-sensitive tasks)."""
    flat = flattened(layout)
    n, num_files = flat.num_rules, flat.num_files
    matrix = np.zeros((n, num_files), dtype=_I64)
    if n <= 1:
        result = FileWeights(dict() for _ in range(n))
        result.dense = matrix
        return result

    # Init kernel: every non-root rule loads its root-segment counts.
    matrix[flat.rc_child, flat.rc_file] = flat.rc_freq
    matrix[0, :] = 0
    num_threads = n - 1
    k = flat.files_per_rule[1:].astype(_F64)
    init_ops = wc.MASK_CHECK_OPS + wc.WEIGHT_UPDATE_OPS * k
    init_mem = 16.0 + 8.0 * k
    device.launch_bulk(
        "initTopDownFileMaskKernel",
        num_threads,
        thread_ops=init_ops,
        thread_memory_bytes=init_mem,
    )

    cur_in = np.zeros(n, dtype=_I64)
    pending = sorted(np.flatnonzero(flat.num_in[1:] == 0) + 1)
    while True:
        ops = np.full(num_threads, wc.MASK_CHECK_OPS, dtype=_F64)
        mem = np.full(num_threads, 4.0, dtype=_F64)
        atomics = np.zeros(num_threads, dtype=_F64)
        touch_counts = np.zeros(n, dtype=_I64)
        heap = list(pending)
        heapq.heapify(heap)
        pending = []
        hit_any = False
        while heap:
            r = heapq.heappop(heap)
            tid = r - 1
            lo, hi = int(flat.sr_off[r]), int(flat.sr_off[r + 1])
            cs = flat.sr_child[lo:hi]
            fs = flat.sr_freq[lo:hi]
            edges = hi - lo
            row = matrix[r]
            # The rule's own table is final here: all parents fired already.
            spread = int(np.count_nonzero(row))
            if edges:
                matrix[cs] += fs[:, None] * row
                cur_in[cs] += 1
                touch_counts[cs] += 1
                newly = cs[cur_in[cs] == flat.num_in[cs]]
            else:
                newly = ()
            # Per edge: EDGE_VISIT, per carried file entry a weight update
            # (+1 op) with an untracked atomic, plus the tracked
            # cur_in_edges atomic add.  No readiness charge in this kernel.
            ops[tid] += edges * (
                wc.EDGE_VISIT_OPS + (wc.WEIGHT_UPDATE_OPS + 1.0) * spread + 1.0
            )
            mem[tid] += edges * (wc.EDGE_VISIT_BYTES + wc.SYMBOL_VISIT_BYTES * spread + 8.0)
            atomics[tid] += edges * (spread + 1.0)
            for child in newly:
                hit_any = True
                c = int(child)
                if c > r:
                    heapq.heappush(heap, c)
                else:
                    pending.append(c)
        conflicts = float(np.maximum(0, touch_counts - 1).sum())
        device.launch_bulk(
            "topDownFileKernel",
            num_threads,
            thread_ops=ops,
            thread_memory_bytes=mem,
            thread_atomic_ops=atomics,
            atomic_conflicts=conflicts,
        )
        if not hit_any:
            break

    result = FileWeights(
        {int(f): int(matrix[rule_id, f]) for f in np.flatnonzero(matrix[rule_id])}
        for rule_id in range(n)
    )
    result.dense = matrix
    return result


def topdown_word_count_reduce(
    layout: DeviceRuleLayout,
    scheduler: FineGrainedScheduler,
    device: GPUDevice,
    weights: Sequence[int],
) -> Dict[int, int]:
    """Bulk port of the top-down ``reduceResultKernel``."""
    flat = flattened(layout)
    assignments = flat.assignments(scheduler, "corpus")
    num_threads = max(1, len(assignments))
    rules, starts, ends = _assignment_arrays(assignments)
    weights_arr = np.asarray(weights, dtype=_I64)
    thread_weight = weights_arr[rules]

    active = thread_weight != 0
    owner, keys, vals = flat.gather_local_words(
        rules[active] if active.any() else rules[:0],
        starts[active] if active.any() else starts[:0],
        ends[active] if active.any() else ends[:0],
    )
    if len(owner):
        active_tids = np.flatnonzero(active).astype(_I64)
        owner = active_tids[owner]
        vals = vals * thread_weight[owner]

    num_buckets, capacity = _table_geometry(flat.vocabulary_size)
    hash_ops, hash_mem, conflicts, out_keys, out_vals = _hash_program(
        keys, vals, num_buckets, capacity
    )
    ops = np.full(num_threads, wc.MASK_CHECK_OPS, dtype=_F64)
    mem = np.full(num_threads, 8.0, dtype=_F64)
    ops[len(assignments):] = 0.0
    mem[len(assignments):] = 0.0
    ops += _thread_sums(owner, wc.SYMBOL_VISIT_OPS + hash_ops, num_threads)
    mem += _thread_sums(owner, wc.SYMBOL_VISIT_BYTES + hash_mem, num_threads)
    atomics = _thread_sums(owner, np.ones(len(owner), dtype=_F64), num_threads)
    device.launch_bulk(
        "reduceResultKernel",
        num_threads,
        thread_ops=ops,
        thread_memory_bytes=mem,
        thread_atomic_ops=atomics,
        atomic_conflicts=conflicts,
    )
    return dict(zip(out_keys.tolist(), out_vals.tolist()))


def _file_column_counts(
    flat: FlattenedLayout, matrix: np.ndarray, file_index: int
) -> Dict[int, int]:
    """One file's word counts: scaled rule tables + the root's own words."""
    col = matrix[:, file_index]
    rules = np.flatnonzero(col).astype(_I64)
    owner, keys, vals = flat.gather_local_words(
        rules, np.zeros(len(rules), dtype=_I64), flat.lw_count[rules]
    )
    vals = vals * col[rules][owner]
    lo, hi = int(flat.rw_off[file_index]), int(flat.rw_off[file_index + 1])
    if hi > lo:
        keys = np.concatenate([keys, flat.rw_keys[lo:hi]])
        vals = np.concatenate([vals, flat.rw_vals[lo:hi]])
    if not len(keys):
        return {}
    uniq, inv = np.unique(keys, return_inverse=True)
    sums = np.zeros(len(uniq), dtype=_I64)
    np.add.at(sums, inv, vals)
    return dict(zip(uniq.tolist(), sums.tolist()))


def topdown_per_file_counts_vec(
    layout: DeviceRuleLayout,
    scheduler: FineGrainedScheduler,
    device: GPUDevice,
    file_weights: Sequence[Dict[int, int]],
    file_indices: Optional[Sequence[int]] = None,
) -> List[Dict[int, int]]:
    """Bulk port of the top-down per-file reduce kernels.

    Covers both the unfiltered pair (``reduceFileResultKernel`` +
    ``rootWordsKernel``) and the restricted single-launch
    ``reduceFileSubsetKernel``.
    """
    flat = flattened(layout)
    n = flat.num_rules
    matrix = _dense_file_weights(flat, file_weights)
    per_file_counts: List[Dict[int, int]] = [dict() for _ in range(flat.num_files)]

    if file_indices is not None:
        allowed_order = sorted(frozenset(file_indices))
        allowed_cols = np.asarray(allowed_order, dtype=_I64)
        sub = matrix[:, allowed_cols] if len(allowed_cols) else matrix[:, :0]
        sub_nnz = np.count_nonzero(sub, axis=1).astype(_I64)
        rule_ids = (np.flatnonzero(sub_nnz[1:]) + 1).tolist() if n > 1 else []
        items = [int(flat.lw_count[r]) for r in rule_ids]
        assignments = scheduler.partition_items(rule_ids, items) if rule_ids else []
        num_threads = max(1, len(assignments) + len(allowed_order))
        ops = np.zeros(num_threads, dtype=_F64)
        mem = np.zeros(num_threads, dtype=_F64)
        atomics = np.zeros(num_threads, dtype=_F64)
        if assignments:
            rules, starts, ends = _assignment_arrays(assignments)
            spans = np.maximum(0, ends - starts).astype(_F64)
            spread = sub_nnz[rules].astype(_F64)
            a = np.arange(len(assignments))
            ops[a] = wc.MASK_CHECK_OPS + spans * (
                wc.SYMBOL_VISIT_OPS + wc.HASH_UPDATE_OPS * spread
            )
            mem[a] = 8.0 + spans * (
                wc.SYMBOL_VISIT_BYTES + wc.HASH_UPDATE_BYTES * spread
            )
            atomics[a] = spans * spread
        file_tids = len(assignments) + np.arange(len(allowed_order))
        ops[file_tids] = wc.HASH_UPDATE_OPS * flat.rw_count[allowed_cols]
        mem[file_tids] = wc.HASH_UPDATE_BYTES * flat.rw_count[allowed_cols]
        device.launch_bulk(
            "reduceFileSubsetKernel",
            num_threads,
            thread_ops=ops,
            thread_memory_bytes=mem,
            thread_atomic_ops=atomics,
        )
        for file_index in allowed_order:
            per_file_counts[file_index] = _file_column_counts(flat, matrix, file_index)
        return per_file_counts

    rule_ids = list(range(1, n)) if n > 1 else []
    assignments = flat.assignments(scheduler, "file") if rule_ids else []
    if assignments:
        rules, starts, ends = _assignment_arrays(assignments)
        spans = np.maximum(0, ends - starts).astype(_F64)
        spread = np.count_nonzero(matrix, axis=1).astype(_F64)[rules]
        ops = wc.MASK_CHECK_OPS + spans * (wc.SYMBOL_VISIT_OPS + wc.HASH_UPDATE_OPS * spread)
        mem = 8.0 + spans * (wc.SYMBOL_VISIT_BYTES + wc.HASH_UPDATE_BYTES * spread)
        atomics = spans * spread
        device.launch_bulk(
            "reduceFileResultKernel",
            len(assignments),
            thread_ops=ops,
            thread_memory_bytes=mem,
            thread_atomic_ops=atomics,
        )

    num_threads = max(1, flat.num_files)
    ops = np.zeros(num_threads, dtype=_F64)
    mem = np.zeros(num_threads, dtype=_F64)
    ops[: flat.num_files] = wc.HASH_UPDATE_OPS * flat.rw_count
    mem[: flat.num_files] = wc.HASH_UPDATE_BYTES * flat.rw_count
    device.launch_bulk(
        "rootWordsKernel", num_threads, thread_ops=ops, thread_memory_bytes=mem
    )
    for file_index in range(flat.num_files):
        per_file_counts[file_index] = _file_column_counts(flat, matrix, file_index)
    return per_file_counts


# ----------------------------------------------------------------------------------------
# Bottom-up traversal (Algorithm 2)
# ----------------------------------------------------------------------------------------

def _launch_bottomup_init_mask(flat: FlattenedLayout, device: GPUDevice) -> None:
    n = flat.num_rules
    device.launch_bulk(
        "initBottomUpMaskKernel",
        n,
        thread_ops=np.full(n, wc.MASK_CHECK_OPS, dtype=_F64),
        thread_memory_bytes=np.full(n, 8.0, dtype=_F64),
    )


def prepare_bottomup_vec(layout: DeviceRuleLayout, device: GPUDevice) -> List[int]:
    """Bulk port of ``genRuleParentsKernel`` + the local-table bound pass."""
    flat = flattened(layout)
    n = flat.num_rules
    edges = flat.sr_count.astype(_F64)
    device.launch_bulk(
        "genRuleParentsKernel",
        n,
        thread_ops=wc.EDGE_VISIT_OPS * edges,
        thread_memory_bytes=wc.EDGE_VISIT_BYTES * edges,
    )

    _launch_bottomup_init_mask(flat, device)

    bounds = np.zeros(n, dtype=_I64)
    cur_out = np.zeros(n, dtype=_I64)
    pending = sorted(np.flatnonzero(flat.num_out == 0))
    while True:
        ops = np.full(n, wc.MASK_CHECK_OPS, dtype=_F64)
        mem = np.full(n, 4.0, dtype=_F64)
        atomics = np.zeros(n, dtype=_F64)
        touch_counts = np.zeros(n, dtype=_I64)
        heap = [int(r) for r in pending]
        heapq.heapify(heap)
        pending = []
        hit_any = False
        while heap:
            r = heapq.heappop(heap)
            if r == 0:
                # The root only terminates the traversal; no extra work.
                continue
            lo, hi = int(flat.sr_off[r]), int(flat.sr_off[r + 1])
            cs = flat.sr_child[lo:hi]
            degree = hi - lo
            bounds[r] = min(
                int(flat.lw_count[r]) + int(bounds[cs].sum()), flat.vocabulary_size
            )
            plo, phi = int(flat.par_off[r]), int(flat.par_off[r + 1])
            ps = flat.par_ids[plo:phi]
            num_parents = phi - plo
            if num_parents:
                cur_out[ps] += 1
                touch_counts[ps] += 1
                newly = ps[cur_out[ps] == flat.num_out[ps]]
            else:
                newly = ()
            ops[r] += (
                wc.SYMBOL_VISIT_OPS
                + wc.EDGE_VISIT_OPS * degree
                + (wc.WEIGHT_UPDATE_OPS + 1.0) * num_parents
            )
            mem[r] += 8.0 + wc.EDGE_VISIT_BYTES * degree + 16.0 * num_parents
            atomics[r] += float(num_parents)
            for parent in newly:
                hit_any = True
                p = int(parent)
                if p > r:
                    heapq.heappush(heap, p)
                else:
                    pending.append(p)
        conflicts = float(np.maximum(0, touch_counts - 1).sum())
        device.launch_bulk(
            "genLocTblBoundKernel",
            n,
            thread_ops=ops,
            thread_memory_bytes=mem,
            thread_atomic_ops=atomics,
            atomic_conflicts=conflicts,
        )
        if not hit_any:
            break
    return bounds.tolist()


class LocalTables(list):
    """``List[Dict[int, int]]`` of per-rule tables + flat array mirrors.

    ``key_arrays[r]`` / ``val_arrays[r]`` hold rule ``r``'s table in its
    dict (insertion) order, which downstream reduce kernels depend on
    for bit-identical hash-table charge streams.
    """

    key_arrays: List[np.ndarray]
    val_arrays: List[np.ndarray]


def _table_arrays(
    local_tables: Sequence[Dict[int, int]]
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    keys = getattr(local_tables, "key_arrays", None)
    vals = getattr(local_tables, "val_arrays", None)
    if keys is not None and vals is not None:
        return keys, vals
    keys = [np.asarray(list(t.keys()), dtype=_I64) for t in local_tables]
    vals = [np.asarray(list(t.values()), dtype=_I64) for t in local_tables]
    return keys, vals


def build_local_tables_vec(
    layout: DeviceRuleLayout, device: GPUDevice
) -> LocalTables:
    """Bulk port of the ``genLocTblKernel`` wavefront (Algorithm 2's build)."""
    flat = flattened(layout)
    n = flat.num_rules
    _launch_bottomup_init_mask(flat, device)

    key_arrays: List[np.ndarray] = [np.zeros(0, dtype=_I64) for _ in range(n)]
    val_arrays: List[np.ndarray] = [np.zeros(0, dtype=_I64) for _ in range(n)]
    cur_out = np.zeros(n, dtype=_I64)
    pending = sorted(np.flatnonzero(flat.num_out == 0))
    while True:
        ops = np.full(n, wc.MASK_CHECK_OPS, dtype=_F64)
        mem = np.full(n, 4.0, dtype=_F64)
        atomics = np.zeros(n, dtype=_F64)
        touch_counts = np.zeros(n, dtype=_I64)
        heap = [int(r) for r in pending]
        heapq.heapify(heap)
        pending = []
        hit_any = False
        while heap:
            r = heapq.heappop(heap)
            if r == 0:
                # Results are gathered at level-2 nodes, never at the root.
                continue
            lo, hi = int(flat.lw_off[r]), int(flat.lw_off[r + 1])
            key_parts = [flat.lw_keys[lo:hi]]
            val_parts = [flat.lw_vals[lo:hi]]
            own_entries = hi - lo
            slo, shi = int(flat.sr_off[r]), int(flat.sr_off[r + 1])
            child_entries = 0
            for child, freq in zip(
                flat.sr_child[slo:shi].tolist(), flat.sr_freq[slo:shi].tolist()
            ):
                child_keys = key_arrays[child]
                child_entries += len(child_keys)
                if len(child_keys):
                    key_parts.append(child_keys)
                    val_parts.append(val_arrays[child] * freq)
            merged_keys = np.concatenate(key_parts)
            merged_vals = np.concatenate(val_parts)
            if len(merged_keys):
                uniq, first_idx, inv = np.unique(
                    merged_keys, return_index=True, return_inverse=True
                )
                sums = np.zeros(len(uniq), dtype=_I64)
                np.add.at(sums, inv, merged_vals)
                order = np.argsort(first_idx, kind="stable")
                key_arrays[r] = uniq[order]
                val_arrays[r] = sums[order]
            degree = shi - slo
            plo, phi = int(flat.par_off[r]), int(flat.par_off[r + 1])
            ps = flat.par_ids[plo:phi]
            num_parents = phi - plo
            if num_parents:
                cur_out[ps] += 1
                touch_counts[ps] += 1
                newly = ps[cur_out[ps] == flat.num_out[ps]]
            else:
                newly = ()
            ops[r] += (
                wc.HASH_UPDATE_OPS * (own_entries + child_entries)
                + wc.EDGE_VISIT_OPS * degree
                + (wc.WEIGHT_UPDATE_OPS + 1.0) * num_parents
            )
            mem[r] += (
                wc.HASH_UPDATE_BYTES * (own_entries + child_entries)
                + wc.EDGE_VISIT_BYTES * degree
                + 16.0 * num_parents
            )
            atomics[r] += float(num_parents)
            for parent in newly:
                hit_any = True
                p = int(parent)
                if p > r:
                    heapq.heappush(heap, p)
                else:
                    pending.append(p)
        conflicts = float(np.maximum(0, touch_counts - 1).sum())
        device.launch_bulk(
            "genLocTblKernel",
            n,
            thread_ops=ops,
            thread_memory_bytes=mem,
            thread_atomic_ops=atomics,
            atomic_conflicts=conflicts,
        )
        if not hit_any:
            break

    tables = LocalTables(
        dict(zip(key_arrays[r].tolist(), val_arrays[r].tolist())) for r in range(n)
    )
    tables.key_arrays = key_arrays
    tables.val_arrays = val_arrays
    return tables


def bottomup_word_count_reduce(
    layout: DeviceRuleLayout,
    device: GPUDevice,
    local_tables: Sequence[Dict[int, int]],
) -> Dict[int, int]:
    """Bulk port of the bottom-up ``reduceResultKernel``."""
    flat = flattened(layout)
    key_arrays, val_arrays = _table_arrays(local_tables)
    num_threads = 1 + len(flat.level2_child)

    # Charge-order op stream: the root's own terminal words (thread 0),
    # then each level-2 child's table scaled by its root frequency.
    lo, hi = int(flat.lw_off[0]), int(flat.lw_off[1])
    key_parts = [flat.lw_keys[lo:hi]]
    val_parts = [flat.lw_vals[lo:hi]]
    owner_parts = [np.zeros(hi - lo, dtype=_I64)]
    for index, (child, freq) in enumerate(
        zip(flat.level2_child.tolist(), flat.level2_freq.tolist())
    ):
        child_keys = key_arrays[child]
        if len(child_keys):
            key_parts.append(child_keys)
            val_parts.append(val_arrays[child] * freq)
            owner_parts.append(np.full(len(child_keys), 1 + index, dtype=_I64))
    keys = np.concatenate(key_parts)
    vals = np.concatenate(val_parts)
    owner = np.concatenate(owner_parts)

    num_buckets, capacity = _table_geometry(flat.vocabulary_size)
    hash_ops, hash_mem, conflicts, out_keys, out_vals = _hash_program(
        keys, vals, num_buckets, capacity
    )
    ops = np.full(num_threads, wc.MASK_CHECK_OPS, dtype=_F64)
    mem = np.full(num_threads, 8.0, dtype=_F64)
    ops[0] = 0.0
    mem[0] = 0.0
    ops += _thread_sums(owner, wc.SYMBOL_VISIT_OPS + hash_ops, num_threads)
    mem += _thread_sums(owner, wc.SYMBOL_VISIT_BYTES + hash_mem, num_threads)
    atomics = _thread_sums(owner, np.ones(len(owner), dtype=_F64), num_threads)
    device.launch_bulk(
        "reduceResultKernel",
        num_threads,
        thread_ops=ops,
        thread_memory_bytes=mem,
        thread_atomic_ops=atomics,
        atomic_conflicts=conflicts,
    )
    return dict(zip(out_keys.tolist(), out_vals.tolist()))


def bottomup_per_file_counts_reduce(
    layout: DeviceRuleLayout,
    device: GPUDevice,
    local_tables: Sequence[Dict[int, int]],
    file_indices: Optional[Sequence[int]] = None,
) -> List[Dict[int, int]]:
    """Bulk port of the bottom-up ``reduceFileResultKernel``."""
    flat = flattened(layout)
    targets = sorted(set(file_indices)) if file_indices is not None else None

    # The unfiltered contribution stream (which child table feeds which
    # file, scaled by which frequency) is a pure function of the layout
    # and the session's cached local tables, so assemble it once per
    # local-tables build; only the merged sums and the per-file result
    # dicts are recomputed per query.
    if targets is None:
        cached = getattr(flat, "file_reduce_geom", None)
        if cached is not None and cached[0] is local_tables:
            (
                num_threads,
                ops,
                mem,
                inv,
                vals,
                num_unique,
                words_list,
                group_slices,
            ) = cached[1]
            per_file_counts = [dict() for _ in range(flat.num_files)]
            sums_list = (
                np.bincount(inv, weights=vals, minlength=num_unique)
                .astype(_I64)
                .tolist()
            )
            for file_index, start, end in group_slices:
                per_file_counts[file_index] = dict(
                    zip(words_list[start:end], sums_list[start:end])
                )
            device.launch_bulk(
                "reduceFileResultKernel",
                num_threads,
                thread_ops=ops,
                thread_memory_bytes=mem,
            )
            return per_file_counts

    key_arrays, val_arrays = _table_arrays(local_tables)
    table_sizes = np.asarray([len(k) for k in key_arrays], dtype=_I64)
    per_file_counts: List[Dict[int, int]] = [dict() for _ in range(flat.num_files)]

    files = targets if targets is not None else list(range(flat.num_files))
    num_threads = max(1, len(files))
    ops = np.zeros(num_threads, dtype=_F64)
    mem = np.zeros(num_threads, dtype=_F64)
    vocab = max(1, int(flat.vocabulary_size))
    key_parts: List[np.ndarray] = []
    val_parts: List[np.ndarray] = []
    owner_parts: List[np.ndarray] = []
    for tid, file_index in enumerate(files):
        if file_index >= flat.num_files:
            continue
        rwc = int(flat.rw_count[file_index])
        lo, hi = int(flat.rc_off[file_index]), int(flat.rc_off[file_index + 1])
        children = flat.rc_child[lo:hi]
        degree = hi - lo
        entries = int(table_sizes[children].sum())
        ops[tid] = (
            wc.HASH_UPDATE_OPS * (rwc + entries) + wc.EDGE_VISIT_OPS * degree
        )
        mem[tid] = (
            wc.HASH_UPDATE_BYTES * (rwc + entries) + wc.EDGE_VISIT_BYTES * degree
        )
        # Contribution stream for this file (merged globally below).
        rlo, rhi = int(flat.rw_off[file_index]), int(flat.rw_off[file_index + 1])
        if rhi > rlo:
            key_parts.append(flat.rw_keys[rlo:rhi])
            val_parts.append(flat.rw_vals[rlo:rhi])
            owner_parts.append(np.full(rhi - rlo, file_index, dtype=_I64))
        for child, freq in zip(children.tolist(), flat.rc_freq[lo:hi].tolist()):
            child_keys = key_arrays[child]
            if len(child_keys):
                key_parts.append(child_keys)
                val_parts.append(val_arrays[child] * freq)
                owner_parts.append(np.full(len(child_keys), file_index, dtype=_I64))
    if key_parts:
        # One global merge instead of one per file: word ids are always
        # < vocabulary_size, so (file, word) packs into a single int64
        # and the sorted unique keys fall into contiguous file groups.
        keys = np.concatenate(key_parts)
        vals = np.concatenate(val_parts)
        owners = np.concatenate(owner_parts)
        combined = owners * vocab + keys
        uniq, inv = np.unique(combined, return_inverse=True)
        sums = np.bincount(
            inv.reshape(-1), weights=vals, minlength=len(uniq)
        ).astype(_I64)
        uniq_files = uniq // vocab
        uniq_words = uniq - uniq_files * vocab
        boundaries = np.flatnonzero(np.diff(uniq_files)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(uniq)]))
        words_list = uniq_words.tolist()
        sums_list = sums.tolist()
        group_slices = [
            (int(file_index), start, end)
            for start, end, file_index in zip(
                starts.tolist(), ends.tolist(), uniq_files[starts].tolist()
            )
        ]
        for file_index, start, end in group_slices:
            per_file_counts[file_index] = dict(
                zip(words_list[start:end], sums_list[start:end])
            )
        if targets is None:
            flat.file_reduce_geom = (
                local_tables,
                (
                    num_threads,
                    ops,
                    mem,
                    inv.reshape(-1),
                    vals,
                    len(uniq),
                    words_list,
                    group_slices,
                ),
            )
    device.launch_bulk(
        "reduceFileResultKernel", num_threads, thread_ops=ops, thread_memory_bytes=mem
    )
    return per_file_counts


# ----------------------------------------------------------------------------------------
# Sequence counting (Figure 8)
# ----------------------------------------------------------------------------------------

class _Skeleton:
    """Flat-array skeleton of one symbol sequence (see ``_build_skeleton``).

    ``off[i]`` is the skeleton row where element ``i``'s contribution
    starts, so any element slice of the source maps to a row slice here.
    Window validity over the *full* skeleton is precomputed once; a
    thread's windows are a slice of it further masked by its element
    ownership range.
    """

    __slots__ = ("words", "elem", "inside", "off", "base_valid", "first_elem", "length")

    def __init__(self, symbols: Sequence[int], buffers, sequence_length: int) -> None:
        from repro.compression.grammar import is_rule_ref, rule_ref_id

        words: List[int] = []
        elem: List[int] = []
        inside: List[bool] = []
        gaps: List[bool] = []
        off = np.zeros(len(symbols) + 1, dtype=_I64)
        for local_index, symbol in enumerate(symbols):
            off[local_index] = len(words)
            if not is_rule_ref(symbol):
                words.append(symbol)
                elem.append(local_index)
                inside.append(False)
                gaps.append(False)
                continue
            child = rule_ref_id(symbol)
            short = buffers.short_expansions[child]
            if short is not None:
                for word in short:
                    words.append(word)
                    elem.append(local_index)
                    inside.append(True)
                    gaps.append(False)
                continue
            for word in buffers.heads[child]:
                words.append(word)
                elem.append(local_index)
                inside.append(True)
                gaps.append(False)
            words.append(-1)
            elem.append(-1)
            inside.append(False)
            gaps.append(True)
            for word in buffers.tails[child]:
                words.append(word)
                elem.append(local_index)
                inside.append(True)
                gaps.append(False)
        off[len(symbols)] = len(words)
        self.off = off
        self.words = np.asarray(words, dtype=_I64) if words else np.zeros(0, dtype=_I64)
        self.elem = np.asarray(elem, dtype=_I64) if elem else np.zeros(0, dtype=_I64)
        self.inside = np.asarray(inside, dtype=bool)
        self.length = len(words)

        length = sequence_length
        total_windows = max(0, self.length - length + 1)
        gap_arr = np.asarray(gaps, dtype=_I64) if gaps else np.zeros(0, dtype=_I64)
        gapc = np.zeros(self.length + 1, dtype=_I64)
        np.cumsum(gap_arr, out=gapc[1:])
        has_gap = (gapc[length:] - gapc[:-length]) > 0 if total_windows else np.zeros(0, dtype=bool)
        if total_windows:
            first_inside = self.inside[:total_windows]
            last_inside = self.inside[length - 1 : length - 1 + total_windows]
            same_elem = (
                self.elem[:total_windows] == self.elem[length - 1 : length - 1 + total_windows]
            )
            contained = first_inside & last_inside & same_elem
            self.base_valid = ~has_gap & ~contained
            self.first_elem = self.elem[:total_windows]
        else:
            self.base_valid = np.zeros(0, dtype=bool)
            self.first_elem = np.zeros(0, dtype=_I64)


def _skeleton_cache(buffers, layout: DeviceRuleLayout) -> Dict:
    cache = getattr(buffers, "_vec_skeletons", None)
    if cache is None or cache.get("layout") is not layout:
        cache = {"layout": layout}
        buffers._vec_skeletons = cache  # type: ignore[attr-defined]
    return cache


def _rule_skeleton(cache: Dict, layout: DeviceRuleLayout, buffers, rule_id: int) -> _Skeleton:
    skeleton = cache.get(rule_id)
    if skeleton is None:
        skeleton = _Skeleton(layout.rule_bodies[rule_id], buffers, buffers.sequence_length)
        cache[rule_id] = skeleton
    return skeleton


def _root_skeleton(cache: Dict, layout: DeviceRuleLayout, buffers) -> _Skeleton:
    skeleton = cache.get("root")
    if skeleton is None:
        skeleton = _Skeleton(layout.root_symbols, buffers, buffers.sequence_length)
        cache["root"] = skeleton
    return skeleton


def _windows_for_span(
    skeleton: _Skeleton,
    sequence_length: int,
    element_start: int,
    element_end: int,
    extended_end: int,
) -> Tuple[int, int, np.ndarray]:
    """``(num_elements, num_window_starts, valid_window_rows)`` for one thread.

    The thread scans elements ``[element_start, extended_end)`` and owns
    windows whose first word's element lies in
    ``[element_start, element_end)`` — exactly the scalar slicing.
    """
    lo = int(skeleton.off[element_start])
    hi = int(skeleton.off[extended_end])
    num_windows = max(0, (hi - lo) - sequence_length + 1)
    if num_windows == 0:
        return extended_end - element_start, 0, np.zeros(0, dtype=_I64)
    valid = (
        skeleton.base_valid[lo : lo + num_windows]
        & (skeleton.first_elem[lo : lo + num_windows] >= element_start)
        & (skeleton.first_elem[lo : lo + num_windows] < element_end)
    )
    return extended_end - element_start, num_windows, lo + np.flatnonzero(valid).astype(_I64)


def sequence_counts_vec(
    layout: DeviceRuleLayout,
    scheduler: FineGrainedScheduler,
    device: GPUDevice,
    buffers,
    weights: Sequence[int],
    sequence_length: int,
    file_indices: Optional[Sequence[int]] = None,
) -> Dict[Tuple[int, ...], int]:
    """Bulk port of the Figure-8 sequence kernels (rule + root + merge)."""
    flat = flattened(layout)
    allowed = frozenset(file_indices) if file_indices is not None else None
    overlap = sequence_length - 1
    cache = _skeleton_cache(buffers, layout)
    window_offsets = np.arange(sequence_length, dtype=_I64)

    weights_arr = np.asarray(weights, dtype=_I64)
    # Unfiltered queries always run the same assignment set against the
    # same weights, so the launch arrays and the concatenated window
    # stream are pure functions of (layout, scheduler, length).  Cache
    # them on the session's sequence buffers: repeated sequence queries
    # then skip the per-assignment Python loops while replaying exactly
    # the same simulated launches.
    stream = None
    if allowed is None:
        stream = cache.get("stream")
        if stream is not None and not np.array_equal(stream["weights"], weights_arr):
            stream = None
    if stream is not None:
        rule_launch = stream["rule_launch"]
        if rule_launch is not None:
            device.launch_bulk(
                "sequenceRuleKernel",
                rule_launch[0],
                thread_ops=rule_launch[1],
                thread_memory_bytes=rule_launch[2],
            )
        root_launch = stream["root_launch"]
        device.launch_bulk(
            "sequenceRootKernel",
            root_launch[0],
            thread_ops=root_launch[1],
            thread_memory_bytes=root_launch[2],
        )
        mat = stream["mat"]
        values = stream["values"]
        return _sequence_merge(layout, device, mat, values, sequence_length, stream=stream)

    key_parts: List[np.ndarray] = []
    weight_parts: List[np.ndarray] = []
    rule_launch = None

    if allowed is None:
        assignments = flat.assignments(scheduler, "sequence")
    else:
        rule_ids = [r for r in range(1, layout.num_rules) if weights[r] != 0]
        items = [int(flat.rule_lengths[r]) for r in rule_ids]
        assignments = scheduler.partition_items(rule_ids, items) if rule_ids else []

    if assignments:
        num_threads = len(assignments)
        ops = np.full(num_threads, wc.MASK_CHECK_OPS, dtype=_F64)
        mem = np.full(num_threads, 8.0, dtype=_F64)
        for tid, assignment in enumerate(assignments):
            weight = int(weights[assignment.rule_id])
            if weight == 0 or assignment.span <= 0:
                continue
            skeleton = _rule_skeleton(cache, layout, buffers, assignment.rule_id)
            body_length = int(flat.rule_lengths[assignment.rule_id])
            extended_end = min(body_length, assignment.end + overlap)
            num_elements, num_windows, valid_rows = _windows_for_span(
                skeleton, sequence_length, assignment.start, assignment.end, extended_end
            )
            num_valid = len(valid_rows)
            ops[tid] += (
                wc.SYMBOL_VISIT_OPS * num_elements
                + wc.SYMBOL_VISIT_OPS * num_windows
                + wc.HASH_UPDATE_OPS * num_valid
            )
            mem[tid] += (
                wc.SYMBOL_VISIT_BYTES * num_elements + wc.HASH_UPDATE_BYTES * num_valid
            )
            if num_valid:
                key_parts.append(skeleton.words[valid_rows[:, None] + window_offsets])
                weight_parts.append(np.full(num_valid, weight, dtype=_I64))
        rule_launch = (num_threads, ops, mem)
        device.launch_bulk(
            "sequenceRuleKernel", num_threads, thread_ops=ops, thread_memory_bytes=mem
        )

    # Root segments, chunked exactly like the scalar path.
    chunk = max(32, int(scheduler.oversize_threshold * max(1.0, layout.average_rule_length)))
    root_work: List[Tuple[int, int, int]] = []
    for file_index, (segment_start, segment_end) in enumerate(layout.root_segments):
        if allowed is not None and file_index not in allowed:
            continue
        length = segment_end - segment_start
        for offset in range(0, max(1, length), chunk):
            start = segment_start + offset
            end = min(segment_end, start + chunk)
            root_work.append((file_index, start, end))

    num_threads = max(1, len(root_work))
    ops = np.zeros(num_threads, dtype=_F64)
    mem = np.zeros(num_threads, dtype=_F64)
    root_skeleton = _root_skeleton(cache, layout, buffers) if root_work else None
    for tid, (file_index, start, end) in enumerate(root_work):
        _segment_start, segment_end = layout.root_segments[file_index]
        extended_end = min(segment_end, end + overlap)
        num_elements, num_windows, valid_rows = _windows_for_span(
            root_skeleton, sequence_length, start, end, extended_end
        )
        num_valid = len(valid_rows)
        ops[tid] = (
            wc.SYMBOL_VISIT_OPS * num_elements
            + wc.SYMBOL_VISIT_OPS * num_windows
            + wc.HASH_UPDATE_OPS * num_valid
        )
        mem[tid] = wc.SYMBOL_VISIT_BYTES * num_elements + wc.HASH_UPDATE_BYTES * num_valid
        if num_valid:
            key_parts.append(root_skeleton.words[valid_rows[:, None] + window_offsets])
            weight_parts.append(np.ones(num_valid, dtype=_I64))
    root_launch = (num_threads, ops, mem)
    device.launch_bulk(
        "sequenceRootKernel", num_threads, thread_ops=ops, thread_memory_bytes=mem
    )

    if key_parts:
        mat = np.concatenate(key_parts, axis=0)
        values = np.concatenate(weight_parts)
    else:
        mat = np.zeros((0, sequence_length), dtype=_I64)
        values = np.zeros(0, dtype=_I64)
    stream = None
    if allowed is None:
        stream = {
            "weights": weights_arr,
            "rule_launch": rule_launch,
            "root_launch": root_launch,
            "mat": mat,
            "values": values,
        }
        cache["stream"] = stream
    return _sequence_merge(layout, device, mat, values, sequence_length, stream=stream)


def _sequence_merge(
    layout: DeviceRuleLayout,
    device: GPUDevice,
    mat: np.ndarray,
    values: np.ndarray,
    sequence_length: int,
    stream: Optional[Dict] = None,
) -> Dict[Tuple[int, ...], int]:
    """Fold the window stream into interned (first-occurrence ordered)
    keys, then replay the global-table merge kernel.

    The interning geometry (which window row maps to which unique key,
    and the first-occurrence key order) is a pure function of the
    window stream, so when a cached ``stream`` is supplied it is
    computed once and reattached; only the per-query sums and the
    merge-kernel replay stay live.
    """
    geom = stream.get("merge_geom") if stream is not None else None
    if geom is not None:
        inv, order, num_unique, row_tuples = geom
        num_entries = len(row_tuples)
        if num_entries:
            sums = np.bincount(inv, weights=values, minlength=num_unique).astype(_I64)
            ordered_sums = sums[order]
        else:
            ordered_sums = np.zeros(0, dtype=_I64)
    elif len(mat):
        # Valid windows never contain gap markers, so every entry of
        # ``mat`` is a word id in ``[0, vocabulary_size)``.  When the
        # packed key fits an int64, collapse each l-gram row to a single
        # integer: 1-D ``np.unique`` is several times faster than the
        # row-wise (``axis=0``) form.
        base = max(2, int(layout.vocabulary_size))
        if base ** sequence_length < (1 << 62):
            packed = mat[:, 0].copy()
            for column in range(1, sequence_length):
                packed *= base
                packed += mat[:, column]
            uniq, first_idx, inv = np.unique(
                packed, return_index=True, return_inverse=True
            )
            unique_rows = mat[first_idx]
        else:
            uniq, first_idx, inv = np.unique(
                mat, axis=0, return_index=True, return_inverse=True
            )
            unique_rows = uniq
        inv = np.asarray(inv, dtype=_I64).reshape(-1)
        order = np.argsort(first_idx, kind="stable")
        sums = np.bincount(inv, weights=values, minlength=len(first_idx)).astype(_I64)
        ordered_sums = sums[order]
        row_tuples = list(map(tuple, unique_rows[order].tolist()))
        num_entries = len(row_tuples)
        if stream is not None:
            stream["merge_geom"] = (inv, order, len(first_idx), row_tuples)
    else:
        row_tuples = []
        ordered_sums = np.zeros(0, dtype=_I64)
        num_entries = 0
        if stream is not None:
            stream["merge_geom"] = (
                np.zeros(0, dtype=_I64),
                np.zeros(0, dtype=_I64),
                0,
                row_tuples,
            )

    num_threads = max(1, num_entries)
    num_buckets, capacity = _table_geometry(max(1, num_entries))
    hash_ops, hash_mem, conflicts, _out_keys, out_vals = _hash_program(
        np.arange(num_entries, dtype=_I64), ordered_sums, num_buckets, capacity
    )
    ops = np.zeros(num_threads, dtype=_F64)
    mem = np.zeros(num_threads, dtype=_F64)
    atomics = np.zeros(num_threads, dtype=_F64)
    if num_entries:
        ops[:num_entries] = wc.HASH_UPDATE_OPS + hash_ops
        mem[:num_entries] = wc.HASH_UPDATE_BYTES + hash_mem
        atomics[:num_entries] = 1.0
    device.launch_bulk(
        "sequenceMergeKernel",
        num_threads,
        thread_ops=ops,
        thread_memory_bytes=mem,
        thread_atomic_ops=atomics,
        atomic_conflicts=conflicts,
    )
    return dict(zip(row_tuples, out_vals.tolist()))


# ----------------------------------------------------------------------------------------
# Relational analytics (vector ports of the traversal.py relational kernels)
# ----------------------------------------------------------------------------------------

def build_relational_tables_vec(
    layout: DeviceRuleLayout, device: GPUDevice, schema, dictionary
):
    """Bulk port of the ``relParseKernel`` wavefront.

    The per-rule parse states themselves come from the same pure fold
    (:func:`repro.relational.compute.fold_symbol_states`) the scalar
    kernel uses; only the charge accounting is replayed as per-round
    thread vectors, exactly mirroring :func:`build_local_tables_vec`.
    """
    from repro.relational import compute as rc

    flat = flattened(layout)
    n = flat.num_rules
    device.launch_bulk(
        "initRelationalMaskKernel",
        n,
        thread_ops=np.full(n, wc.MASK_CHECK_OPS, dtype=_F64),
        thread_memory_bytes=np.full(n, 8.0, dtype=_F64),
    )

    anchors = rc.anchor_ids(schema, dictionary)
    caps = rc.schema_caps(schema)
    body_lengths = np.asarray(
        [len(body) for body in layout.rule_bodies], dtype=_F64
    )
    states = [rc.empty_state(len(anchors)) for _ in range(n)]
    cur_out = np.zeros(n, dtype=_I64)
    pending = sorted(np.flatnonzero(flat.num_out == 0))
    while True:
        ops = np.full(n, wc.MASK_CHECK_OPS, dtype=_F64)
        mem = np.full(n, 4.0, dtype=_F64)
        atomics = np.zeros(n, dtype=_F64)
        touch_counts = np.zeros(n, dtype=_I64)
        heap = [int(r) for r in pending]
        heapq.heapify(heap)
        pending = []
        hit_any = False
        while heap:
            r = heapq.heappop(heap)
            if r == 0:
                # Per-file states come from the root segments, never
                # from the root rule itself.
                continue
            states[r] = rc.fold_symbol_states(
                layout.rule_bodies[r], states, anchors, caps
            )
            slo, shi = int(flat.sr_off[r]), int(flat.sr_off[r + 1])
            degree = shi - slo
            plo, phi = int(flat.par_off[r]), int(flat.par_off[r + 1])
            ps = flat.par_ids[plo:phi]
            num_parents = phi - plo
            if num_parents:
                cur_out[ps] += 1
                touch_counts[ps] += 1
                newly = ps[cur_out[ps] == flat.num_out[ps]]
            else:
                newly = ()
            ops[r] += (
                wc.SYMBOL_VISIT_OPS * body_lengths[r]
                + wc.EDGE_VISIT_OPS * degree
                + (wc.WEIGHT_UPDATE_OPS + 1.0) * num_parents
            )
            mem[r] += (
                wc.SYMBOL_VISIT_BYTES * body_lengths[r]
                + wc.EDGE_VISIT_BYTES * degree
                + 16.0 * num_parents
            )
            atomics[r] += float(num_parents)
            for parent in newly:
                hit_any = True
                p = int(parent)
                if p > r:
                    heapq.heappush(heap, p)
                else:
                    pending.append(p)
        conflicts = float(np.maximum(0, touch_counts - 1).sum())
        device.launch_bulk(
            "relParseKernel",
            n,
            thread_ops=ops,
            thread_memory_bytes=mem,
            thread_atomic_ops=atomics,
            atomic_conflicts=conflicts,
        )
        if not hit_any:
            break
    return states


def assemble_relational_rows_vec(
    layout: DeviceRuleLayout, device: GPUDevice, schema, states, dictionary
):
    """Bulk port of ``relAssembleRowsKernel`` (one thread per file)."""
    from repro.relational import compute as rc

    anchors = rc.anchor_ids(schema, dictionary)
    caps = rc.schema_caps(schema)
    num_fields = len(schema.fields)
    num_files = layout.num_files
    num_threads = max(1, num_files)
    seg_lengths = np.zeros(num_threads, dtype=_F64)
    rows = [None] * num_files
    for file_index, (start, end) in enumerate(layout.root_segments):
        seg_lengths[file_index] = float(end - start)
        state = rc.fold_symbol_states(
            layout.root_symbols[start:end], states, anchors, caps
        )
        rows[file_index] = rc.typed_row(
            rc.extract_symbols(state, schema), schema, decode=dictionary.decode
        )
    ops = wc.SYMBOL_VISIT_OPS * seg_lengths
    mem = wc.SYMBOL_VISIT_BYTES * seg_lengths
    if num_files:
        ops[:num_files] += wc.HASH_UPDATE_OPS * num_fields
        mem[:num_files] += wc.HASH_UPDATE_BYTES * num_fields
    device.launch_bulk(
        "relAssembleRowsKernel",
        num_threads,
        thread_ops=ops,
        thread_memory_bytes=mem,
    )
    return rows


def relational_filter_aggregate_vec(
    layout: DeviceRuleLayout,
    device: GPUDevice,
    spec,
    rows,
    file_indices=None,
):
    """Bulk port of ``relFilterKernel`` + ``relAggregateKernel``."""
    from repro.relational import compute as rc

    schema = spec.schema
    targets = (
        sorted(set(file_indices))
        if file_indices is not None
        else list(range(layout.num_files))
    )
    num_targets = len(targets)
    num_threads = max(1, num_targets)
    num_conditions = len(spec.predicate)
    num_aggs = len(spec.aggregates)
    group_index = (
        schema.field_index(spec.group_by) if spec.group_by is not None else None
    )

    passed = [rc.evaluate_predicate(rows[file_index], spec) for file_index in targets]
    ops = np.zeros(num_threads, dtype=_F64)
    mem = np.zeros(num_threads, dtype=_F64)
    if num_targets:
        ops[:num_targets] = wc.MASK_CHECK_OPS + wc.WEIGHT_UPDATE_OPS * num_conditions
        mem[:num_targets] = 4.0 + 8.0 * num_conditions
    device.launch_bulk(
        "relFilterKernel",
        num_threads,
        thread_ops=ops,
        thread_memory_bytes=mem,
    )

    # Host-side group directory (slot per distinct group, insertion order)
    # and per-group contributing-row counts for conflict accounting.
    slots: Dict = {}
    group_sizes: List[int] = []
    contributes = np.zeros(num_threads, dtype=bool)
    for position, file_index in enumerate(targets):
        if not passed[position]:
            continue
        group = None if group_index is None else rows[file_index][group_index]
        if group_index is not None and group is None:
            continue
        slot = slots.get(group)
        if slot is None:
            slots[group] = len(slots)
            group_sizes.append(0)
            slot = slots[group]
        group_sizes[slot] += 1
        contributes[position] = True
    device.record.host_counter.charge(
        compute_ops=2.0 * num_targets, memory_bytes=8.0 * max(1, len(slots))
    )

    ops = np.zeros(num_threads, dtype=_F64)
    mem = np.zeros(num_threads, dtype=_F64)
    atomics = np.zeros(num_threads, dtype=_F64)
    if num_targets:
        ops[:num_targets] = wc.MASK_CHECK_OPS
        mem[:num_targets] = 4.0
    ops[contributes] += wc.HASH_UPDATE_OPS + (wc.WEIGHT_UPDATE_OPS + 1.0) * num_aggs
    mem[contributes] += wc.HASH_UPDATE_BYTES + 16.0 * num_aggs
    atomics[contributes] = float(num_aggs)
    conflicts = float(num_aggs * sum(max(0, size - 1) for size in group_sizes))
    device.launch_bulk(
        "relAggregateKernel",
        num_threads,
        thread_ops=ops,
        thread_memory_bytes=mem,
        thread_atomic_ops=atomics,
        atomic_conflicts=conflicts,
    )
    return rc.execute_relational([rows[file_index] for file_index in targets], spec)
