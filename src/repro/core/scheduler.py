"""Fine-grained thread-level workload scheduling (paper section IV-B).

The paper explores two partitioning designs (Figure 4):

* **vertical partitioning** — split the DAG from the root and give each
  thread a vertical slice; rules reachable from several slices are
  scanned repeatedly, which wastes work (Figure 4(a)); and
* **fine-grained thread-level scheduling** — one thread per rule, with
  a *group* of threads for oversized rules (by default a rule gets
  extra threads when it holds more than 16x the average number of
  elements per thread), and a mask per rule to encode readiness
  (Figure 4(b)).  This is the design G-TADOC adopts.

This module implements both: the fine-grained scheduler drives the real
engine, and the vertical scheduler exists for the ablation benchmark
that shows why it was abandoned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.layout import DeviceRuleLayout

__all__ = ["ThreadAssignment", "FineGrainedScheduler", "VerticalPartitioningScheduler"]

#: Paper default: a rule gets extra threads once it exceeds 16x the
#: average number of elements per thread.
DEFAULT_OVERSIZE_THRESHOLD = 16.0


@dataclass(frozen=True)
class ThreadAssignment:
    """One simulated GPU thread's share of a rule body."""

    thread_id: int
    rule_id: int
    #: Half-open slice of the rule body this thread scans.
    start: int
    end: int
    #: Number of threads cooperating on the same rule.
    group_size: int

    @property
    def span(self) -> int:
        return self.end - self.start


class FineGrainedScheduler:
    """Assign one thread per rule, and thread groups to oversized rules."""

    def __init__(
        self,
        layout: DeviceRuleLayout,
        oversize_threshold: float = DEFAULT_OVERSIZE_THRESHOLD,
        max_group_size: int = 256,
    ) -> None:
        if oversize_threshold <= 0:
            raise ValueError("oversize_threshold must be positive")
        if max_group_size < 1:
            raise ValueError("max_group_size must be >= 1")
        self.layout = layout
        self.oversize_threshold = oversize_threshold
        self.max_group_size = max_group_size
        # Group sizes are a pure function of the (immutable) layout and
        # the two thresholds; computed once, reused by every launch.
        self._group_sizes: List[int] = []

    # -- group sizing -------------------------------------------------------------------
    def _sizes(self) -> List[int]:
        if not self._group_sizes:
            limit = self.oversize_threshold * max(1.0, self.layout.average_rule_length)
            sizes = []
            for length in self.layout.rule_lengths:
                if length <= limit:
                    sizes.append(1)
                else:
                    sizes.append(min(int(length // limit) + 1, self.max_group_size))
            self._group_sizes = sizes
        return self._group_sizes

    def group_size_for(self, rule_id: int) -> int:
        """Number of threads allocated to ``rule_id``."""
        return self._sizes()[rule_id]

    def thread_assignments(self, rule_ids: Sequence[int]) -> List[ThreadAssignment]:
        """Build the flat thread -> (rule, slice) mapping for a kernel launch."""
        assignments: List[ThreadAssignment] = []
        thread_id = 0
        for rule_id in rule_ids:
            length = self.layout.rule_lengths[rule_id]
            group = self.group_size_for(rule_id)
            if group == 1 or length == 0:
                assignments.append(
                    ThreadAssignment(thread_id, rule_id, 0, length, group_size=1)
                )
                thread_id += 1
                continue
            base = length // group
            remainder = length % group
            cursor = 0
            for lane in range(group):
                span = base + (1 if lane < remainder else 0)
                assignments.append(
                    ThreadAssignment(thread_id, rule_id, cursor, cursor + span, group_size=group)
                )
                cursor += span
                thread_id += 1
        return assignments

    def total_threads(self, rule_ids: Sequence[int]) -> int:
        return sum(self.group_size_for(rule_id) for rule_id in rule_ids)

    def partition_items(
        self, rule_ids: Sequence[int], items_per_rule: Sequence[int]
    ) -> List[ThreadAssignment]:
        """Partition arbitrary per-rule work items across each rule's thread group.

        ``items_per_rule[i]`` is the number of work items rule
        ``rule_ids[i]`` has for this kernel (body symbols, local-table
        entries, root elements, ...).  The rule's thread-group size is
        still decided by its body length, as in the paper; the items are
        then split evenly across the group.
        """
        if len(rule_ids) != len(items_per_rule):
            raise ValueError("rule_ids and items_per_rule must have the same length")
        assignments: List[ThreadAssignment] = []
        thread_id = 0
        for rule_id, item_count in zip(rule_ids, items_per_rule):
            group = self.group_size_for(rule_id)
            if group == 1 or item_count <= 1:
                assignments.append(
                    ThreadAssignment(thread_id, rule_id, 0, item_count, group_size=1)
                )
                thread_id += 1
                continue
            group = min(group, item_count)
            base = item_count // group
            remainder = item_count % group
            cursor = 0
            for lane in range(group):
                span = base + (1 if lane < remainder else 0)
                assignments.append(
                    ThreadAssignment(
                        thread_id, rule_id, cursor, cursor + span, group_size=group
                    )
                )
                cursor += span
                thread_id += 1
        return assignments

    def summary(self) -> Dict[str, float]:
        """Scheduling statistics (used by reports and tests)."""
        groups = self._sizes()[: self.layout.num_rules]
        return {
            "rules": float(self.layout.num_rules),
            "threads": float(sum(groups)),
            "grouped_rules": float(sum(1 for group in groups if group > 1)),
            "max_group_size": float(max(groups) if groups else 0),
            "average_rule_length": self.layout.average_rule_length,
        }


class VerticalPartitioningScheduler:
    """The abandoned design of Figure 4(a), kept for the ablation study.

    The DAG is split vertically from the root: each thread owns a
    contiguous slice of root elements and traverses everything reachable
    from it.  Rules reachable from several slices are scanned once *per
    slice*, so the scheduler reports how much redundant work that
    causes.
    """

    def __init__(self, layout: DeviceRuleLayout, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.layout = layout
        self.num_partitions = num_partitions

    def partition_root(self) -> List[List[int]]:
        """Split root element positions into ``num_partitions`` contiguous slices."""
        elements = self.layout.root_elements
        if not elements:
            return [[] for _ in range(self.num_partitions)]
        per_partition = max(1, (len(elements) + self.num_partitions - 1) // self.num_partitions)
        partitions: List[List[int]] = []
        for start in range(0, len(elements), per_partition):
            partitions.append(list(range(start, min(start + per_partition, len(elements)))))
        while len(partitions) < self.num_partitions:
            partitions.append([])
        return partitions

    def reachable_rules(self, element_positions: Sequence[int]) -> List[int]:
        """Rules reachable from the given root elements (repetition collapsed)."""
        seen = set()
        stack: List[int] = []
        for position in element_positions:
            element = self.layout.root_elements[position]
            if element.is_rule:
                from repro.compression.grammar import rule_ref_id

                stack.append(rule_ref_id(element.symbol))
        while stack:
            rule_id = stack.pop()
            if rule_id in seen:
                continue
            seen.add(rule_id)
            for child, _count in self.layout.subrules[rule_id]:
                if child not in seen:
                    stack.append(child)
        return sorted(seen)

    def redundancy_factor(self) -> float:
        """How many times the average rule is scanned across partitions."""
        partitions = self.partition_root()
        total_scans = 0
        distinct: set = set()
        for partition in partitions:
            reachable = self.reachable_rules(partition)
            total_scans += len(reachable)
            distinct.update(reachable)
        if not distinct:
            return 1.0
        return total_scans / len(distinct)
