"""Adaptive traversal-strategy selection (paper §IV-B, inherited from TADOC).

The optimal traversal direction depends on both the data and the task
(section VI-C gives term vector as the example: top-down wins on the
4-file dataset B, bottom-up wins on the many-file dataset A).  The
selector estimates the dominant cost term of each direction from the
DAG statistics and picks the cheaper one; the engine also accepts an
explicit override so benchmarks can force either direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

from repro.analytics.base import Task
from repro.core.layout import DeviceRuleLayout

__all__ = ["TraversalStrategy", "StrategyDecision", "TraversalStrategySelector"]


class TraversalStrategy(str, Enum):
    """Traversal direction for the DAG traversal phase."""

    TOP_DOWN = "top_down"
    BOTTOM_UP = "bottom_up"


@dataclass(frozen=True)
class StrategyDecision:
    """The selector's decision plus the cost estimates that produced it."""

    strategy: TraversalStrategy
    estimated_costs: Dict[str, float]
    reason: str


class TraversalStrategySelector:
    """Pick a traversal direction from the DAG shape and the task."""

    def __init__(self, layout: DeviceRuleLayout) -> None:
        self.layout = layout

    # -- cost estimates ----------------------------------------------------------------
    # The layout is immutable after construction, so the corpus-wide
    # sums feeding the estimates are computed once and kept on it.
    def _edges(self) -> float:
        cached = self.layout.__dict__.get("_selector_edges")
        if cached is None:
            cached = float(sum(len(children) for children in self.layout.subrules))
            self.layout.__dict__["_selector_edges"] = cached
        return cached

    def _local_word_entries(self) -> float:
        cached = self.layout.__dict__.get("_selector_local_word_entries")
        if cached is None:
            cached = float(sum(len(words) for words in self.layout.local_words))
            self.layout.__dict__["_selector_local_word_entries"] = cached
        return cached

    def _estimate_top_down(self, task: Task) -> float:
        """Top-down cost: weight propagation over edges plus the reduce."""
        edges = self._edges()
        entries = self._local_word_entries()
        if task.is_file_sensitive:
            # File information travels with every propagated weight; its
            # volume grows with the number of files that actually reach a
            # rule, approximated here by the file count.
            file_factor = max(1.0, float(self.layout.num_files) * 0.5)
            return edges * file_factor + entries * file_factor
        return edges + entries

    def _estimate_bottom_up(self, task: Task) -> float:
        """Bottom-up cost: building subtree-complete local tables."""
        entries = self._local_word_entries()
        edges = self._edges()
        # Merging children tables repeatedly is the dominant term; local
        # tables are bounded by the vocabulary.
        table_factor = min(
            float(self.layout.vocabulary_size),
            max(1.0, entries / max(1.0, float(self.layout.num_rules))) * 4.0,
        )
        cost = edges * table_factor + entries
        if task.is_file_sensitive:
            # The per-file reduce touches the root's per-file sub-rule lists.
            root_entries = self.layout.__dict__.get("_selector_root_subrule_entries")
            if root_entries is None:
                root_entries = float(
                    sum(len(table) for table in self.layout.root_subrule_freq_per_file)
                )
                self.layout.__dict__["_selector_root_subrule_entries"] = root_entries
            cost += root_entries * table_factor * 0.1
        return cost

    # -- public API ------------------------------------------------------------------------
    def select(self, task: Task) -> StrategyDecision:
        """Choose the traversal strategy for ``task`` on this layout."""
        if task is Task.RELATIONAL:
            # Relational parse states compose leaves-first (a monoid over
            # rule bodies) and are memoized per schema on the session, so
            # only the bottom-up direction exists for this plan.
            return StrategyDecision(
                strategy=TraversalStrategy.BOTTOM_UP,
                estimated_costs={},
                reason="relational parse states are built bottom-up and memoized per schema",
            )
        if task is Task.SEQUENCE_COUNT:
            # Sequence counting has its own head/tail pipeline; the DAG scan
            # it needs (rule weights) is a top-down pass.
            return StrategyDecision(
                strategy=TraversalStrategy.TOP_DOWN,
                estimated_costs={},
                reason="sequence support uses the head/tail pipeline with a top-down weight pass",
            )
        top_down = self._estimate_top_down(task)
        bottom_up = self._estimate_bottom_up(task)
        if top_down <= bottom_up:
            strategy = TraversalStrategy.TOP_DOWN
            reason = "estimated top-down cost is lower"
        else:
            strategy = TraversalStrategy.BOTTOM_UP
            reason = "estimated bottom-up cost is lower"
        return StrategyDecision(
            strategy=strategy,
            estimated_costs={"top_down": top_down, "bottom_up": bottom_up},
            reason=reason,
        )
