"""Long-lived device session state: build once, serve many queries.

TADOC's compressed data structures are meant to be built once and then
reused across many analytics queries, and the paper's Figure 3 draws the
same line on the GPU: the initialization phase *prepares* device state
that the traversal phase only *consumes*.  The seed engine nevertheless
re-ran the whole initialization phase — and rebuilt every shared
traversal structure — on each :meth:`GTadoc.run` call.

:class:`DeviceSession` is the serving-path fix.  It owns the long-lived
pieces of a G-TADOC deployment:

* the device layout (:class:`~repro.core.layout.DeviceRuleLayout`),
* the init-phase prep record (data-structure preparation kernel, host
  control work, and the PCIe transfer for datasets that do not fit in
  GPU memory),
* the bottom-up local-table bounds and the subtree-complete local
  tables themselves,
* the top-down rule weights and per-file weight tables,
* per-length sequence head/tail buffers, and
* one shared self-maintained :class:`~repro.gpusim.memory_pool.MemoryPool`.

Each piece is built lazily, exactly once, on its own
:class:`~repro.perf.counters.GpuRunRecord`; the session queues those
construction records so a batch of tasks can charge them a single time
(:meth:`drain_new_records`) while every task's own record reflects only
its marginal traversal work.  :meth:`configure` invalidates the cached
state when the engine configuration changes (the layout survives — it
does not depend on the configuration).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.lockcheck import make_lock
from repro.compression.compressor import CompressedCorpus
from repro.core.layout import DeviceRuleLayout
from repro.core.scheduler import DEFAULT_OVERSIZE_THRESHOLD, FineGrainedScheduler
from repro.core.sequence import build_sequence_buffers, head_tail_upper_limit
from repro.core.traversal import (
    assemble_relational_rows,
    build_local_tables_bottomup,
    build_relational_tables,
    compute_file_weights_topdown,
    compute_rule_weights_topdown,
    prepare_bottomup,
)
from repro.gpusim.device import GPUDevice
from repro.gpusim.memory_pool import MemoryPool
from repro.perf import workcosts as wc
from repro.perf.counters import GpuRunRecord

__all__ = [
    "GTadocConfig",
    "StateKey",
    "BASE_INIT",
    "BOTTOMUP_BOUNDS",
    "LOCAL_TABLES",
    "RULE_WEIGHTS",
    "FILE_WEIGHTS",
    "sequence_buffers_key",
    "relational_tables_key",
    "relational_rows_key",
    "DeviceSession",
]


@dataclass(frozen=True)
class GTadocConfig:
    """Tunable parameters of the engine (paper §IV-B "Parameter selection")."""

    #: Sequence length for sequence-sensitive tasks.
    sequence_length: int = 3
    #: A rule gets a thread group once it exceeds this multiple of the
    #: average elements-per-thread (paper default: 16).
    oversize_threshold: float = DEFAULT_OVERSIZE_THRESHOLD
    #: Upper bound on a rule's thread-group size.
    max_group_size: int = 256
    #: Manage per-rule buffers through the self-maintained memory pool.
    use_memory_pool: bool = True
    #: Charge PCIe transfers of the compressed data (large datasets that do
    #: not fit in GPU memory; see §VI-A "Methodology").
    needs_pcie_transfer: bool = False
    #: Kernel execution mode: ``"vector"`` runs the hot kernels as numpy
    #: bulk array operations (:mod:`repro.core.vectorized`), ``"scalar"``
    #: interprets every simulated thread in Python.  Results and recorded
    #: :class:`~repro.perf.counters.KernelStats` are bit-identical; the
    #: scalar path is kept for equivalence testing and as the reference.
    kernel_mode: str = "vector"

    def __post_init__(self) -> None:
        if self.kernel_mode not in ("scalar", "vector"):
            raise ValueError(f"kernel_mode must be 'scalar' or 'vector', got {self.kernel_mode!r}")


@dataclass(frozen=True)
class StateKey:
    """Identity of one piece of cached session state.

    ``param`` disambiguates parameterised families: the sequence-length
    of per-length head/tail buffers, or the (hashable, frozen)
    :class:`~repro.relational.spec.RowSchema` of relational parse state.
    """

    kind: str
    param: Optional[Any] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.kind if self.param is None else f"{self.kind}[{self.param}]"


#: Figure 3's left box: data-structure prep, host control, PCIe transfer.
BASE_INIT = StateKey("base_init")
#: Light-weight scanning half of Algorithm 2 (parents + local-table bounds).
BOTTOMUP_BOUNDS = StateKey("bottomup_bounds")
#: Subtree-complete per-rule local word tables (Algorithm 2's build pass).
LOCAL_TABLES = StateKey("local_tables")
#: Scalar rule occurrence weights (Algorithm 1's propagation).
RULE_WEIGHTS = StateKey("rule_weights")
#: Per-rule ``{file index: occurrences}`` weight tables (file-sensitive tasks).
FILE_WEIGHTS = StateKey("file_weights")


def sequence_buffers_key(sequence_length: int) -> StateKey:
    """State key of the head/tail buffers for one sequence length."""
    return StateKey("sequence_buffers", int(sequence_length))


def relational_tables_key(schema: Any) -> StateKey:
    """State key of one schema's per-rule relational parse states."""
    return StateKey("relational_tables", schema)


def relational_rows_key(schema: Any) -> StateKey:
    """State key of one schema's assembled per-file typed rows."""
    return StateKey("relational_rows", schema)


#: State built during the Figure-3 initialization phase; everything else
#: is shared graph-traversal state.
_INIT_PHASE_KINDS = frozenset({"base_init", "bottomup_bounds", "sequence_buffers"})


@dataclass
class _CachedState:
    """One built piece of state plus the work it took to build."""

    key: StateKey
    value: Any
    record: GpuRunRecord
    phase: str  # "initialization" | "traversal"


class DeviceSession:
    """Long-lived, lazily-built, cached device state for one corpus."""

    def __init__(
        self,
        compressed: CompressedCorpus,
        config: Optional[GTadocConfig] = None,
        layout: Optional[DeviceRuleLayout] = None,
    ) -> None:
        self.compressed = compressed
        self.config = config or GTadocConfig()
        self._layout = layout
        self._scheduler: Optional[FineGrainedScheduler] = None
        self._memory_pool: Optional[MemoryPool] = None
        self._memory_pool_built = False
        self._states: Dict[StateKey, _CachedState] = {}
        self._pending: List[_CachedState] = []
        #: Corpus epoch the cached state (and layout) was built against.
        self._built_version = compressed.version
        # Re-entrant so a batch can hold the lock across several
        # ensure/state/drain calls (the engine and the serving layer do).
        self._lock = make_lock("session", reentrant=True)

    @property
    def lock(self) -> threading.RLock:
        """The session's lock; hold it to make a multi-call sequence atomic.

        Every state-touching method acquires it internally, so single
        calls are always safe.  Callers that need *attribution* to be
        atomic as well — e.g. a batch that drains construction records
        after running its tasks — hold the lock across the whole
        sequence (it is re-entrant).
        """
        return self._lock

    # -- shared pieces -----------------------------------------------------------------
    @property
    def layout(self) -> DeviceRuleLayout:
        """The device layout (built once, survives invalidation)."""
        with self._lock:
            if self._layout is None:
                with self.compressed.lock:
                    self._layout = DeviceRuleLayout.from_compressed(self.compressed)
            return self._layout

    @property
    def scheduler(self) -> FineGrainedScheduler:
        """The fine-grained thread scheduler for the current config."""
        with self._lock:
            if self._scheduler is None:
                self._scheduler = FineGrainedScheduler(
                    self.layout,
                    oversize_threshold=self.config.oversize_threshold,
                    max_group_size=self.config.max_group_size,
                )
            return self._scheduler

    @property
    def memory_pool(self) -> Optional[MemoryPool]:
        """The shared self-maintained pool (``None`` when disabled)."""
        with self._lock:
            if not self._memory_pool_built:
                self._memory_pool_built = True
                if self.config.use_memory_pool:
                    layout = self.layout
                    sequence_slack = layout.num_rules * (4 * self.config.sequence_length + 8)
                    capacity = 4 * layout.estimated_local_table_entries() + sequence_slack + 4096
                    self._memory_pool = MemoryPool(capacity=capacity)
            return self._memory_pool

    @property
    def memory_pool_bytes(self) -> int:
        """Bytes currently carved out of the pool (0 when disabled/unused)."""
        if self._memory_pool is None:
            return 0
        return self._memory_pool.used_bytes

    # -- lifecycle --------------------------------------------------------------------------
    def fresh(self) -> "DeviceSession":
        """A state-free session sharing this session's layout.

        Used by :meth:`GTadoc.run` so a single-task run still performs the
        full per-query work (the seed semantics benchmarks compare against),
        without re-flattening the grammar into a new layout.
        """
        with self._lock:
            session = DeviceSession(self.compressed, self.config, layout=self._layout)
            # The shared layout belongs to this session's built epoch, not
            # necessarily the corpus's current one.
            session._built_version = self._built_version
            return session

    def configure(self, config: GTadocConfig) -> None:
        """Adopt ``config``; invalidate cached state if it differs."""
        with self._lock:
            if config != self.config:
                self.config = config
                self.invalidate()

    def invalidate(self) -> None:
        """Drop every cached piece of state except the layout."""
        with self._lock:
            self._states.clear()
            self._pending.clear()
            self._scheduler = None
            self._memory_pool = None
            self._memory_pool_built = False

    # -- incremental corpus maintenance ------------------------------------------------------
    @property
    def built_version(self) -> int:
        """Corpus epoch this session's cached state was built against."""
        with self._lock:
            return self._built_version

    def sync_with_corpus(self) -> str:
        """Catch the session up with its (possibly mutated) corpus.

        Returns ``"none"`` (already current), ``"delta"`` (cached state
        was delta-updated in place for the changed rules only), or
        ``"rebuild"`` (cached state was dropped for a full lazy rebuild
        — the correctness fallback whenever the mutation was not a
        prefix-stable append or the delta would not be cheaper).
        """
        with self._lock:
            corpus = self.compressed
            with corpus.lock:
                version = corpus.version
                if version == self._built_version:
                    return "none"
                if self._layout is None or not self._states:
                    # Nothing built yet: just adopt the new epoch.
                    self.invalidate()
                    self._layout = None
                    self._built_version = version
                    return "rebuild"
                kinds = corpus.mutations_since(self._built_version)
                if kinds is None or any(kind != "append" for kind in kinds):
                    self._rebuild_for(version)
                    return "rebuild"
                from repro.core.delta import compute_grammar_delta

                delta = compute_grammar_delta(self._layout, corpus)
                if delta is None or delta.changed_fraction > 0.5:
                    self._rebuild_for(version)
                    return "rebuild"
                self._apply_delta(delta)
                self._built_version = version
                return "delta"

    def _rebuild_for(self, version: int) -> None:
        self.invalidate()
        self._layout = None
        self._built_version = version

    def _apply_delta(self, delta) -> None:
        """Delta-update every cached state family for the changed rules.

        Each updated family gets a fresh construction record queued on
        the pending list, so the (small) delta work is attributed to the
        next batch exactly like first-time construction would be.
        """
        from repro.core import delta as gd
        from repro.core.traversal import allocate_local_tables

        self._layout = delta.new_layout
        self._scheduler = None

        def rebuilt(key: StateKey, value: Any, record: GpuRunRecord) -> None:
            phase = "initialization" if key.kind in _INIT_PHASE_KINDS else "traversal"
            entry = _CachedState(key=key, value=value, record=record, phase=phase)
            self._states[key] = entry
            self._pending.append(entry)

        def device_for(record: GpuRunRecord) -> GPUDevice:
            return GPUDevice(record=record, kernel_mode=self.config.kernel_mode)

        # The pool's owner ids are rule ids, which the new epoch renumbers:
        # re-carve a fresh pool for the new layout (host-side bookkeeping,
        # no kernels), sized by the same policy as first construction.
        old_states = dict(self._states)
        self._memory_pool = None
        self._memory_pool_built = False
        pool = self.memory_pool  # rebuilt against the new layout

        if BASE_INIT in old_states:
            record = GpuRunRecord()
            rebuilt(BASE_INIT, gd.delta_prep(delta, device_for(record)), record)

        bounds: Optional[List[int]] = None
        if BOTTOMUP_BOUNDS in old_states:
            record = GpuRunRecord()
            bounds = gd.delta_bounds(delta, old_states[BOTTOMUP_BOUNDS].value, device_for(record))
            if pool is not None:
                allocate_local_tables(pool, bounds)
            rebuilt(BOTTOMUP_BOUNDS, bounds, record)

        if LOCAL_TABLES in old_states:
            record = GpuRunRecord()
            rebuilt(
                LOCAL_TABLES,
                gd.delta_local_tables(delta, old_states[LOCAL_TABLES].value, device_for(record)),
                record,
            )

        if RULE_WEIGHTS in old_states:
            record = GpuRunRecord()
            rebuilt(
                RULE_WEIGHTS,
                gd.delta_rule_weights(delta, old_states[RULE_WEIGHTS].value, device_for(record)),
                record,
            )

        if FILE_WEIGHTS in old_states:
            record = GpuRunRecord()
            rebuilt(
                FILE_WEIGHTS,
                gd.delta_file_weights(delta, old_states[FILE_WEIGHTS].value, device_for(record)),
                record,
            )

        for key, entry in old_states.items():
            if key.kind == "sequence_buffers":
                if pool is not None:
                    self._reserve_sequence_capacity(pool, key.param)
                    self._allocate_sequence_owners(pool, key.param)
                record = GpuRunRecord()
                rebuilt(
                    key, gd.delta_sequence_buffers(delta, entry.value, device_for(record)), record
                )
            elif key.kind == "relational_tables":
                record = GpuRunRecord()
                states = gd.delta_relational_tables(
                    delta, entry.value, key.param, self.compressed.dictionary, device_for(record)
                )
                if states is None:
                    # New anchor words: the schema's states cannot survive;
                    # drop them for a lazy rebuild on next use.
                    self._states.pop(key, None)
                else:
                    rebuilt(key, states, record)
            elif key.kind == "relational_rows":
                # Rows cover every file (old and new): always rebuilt, but
                # lazily — assembling them is a single launch.
                self._states.pop(key, None)

    def _allocate_sequence_owners(self, pool: MemoryPool, sequence_length: int) -> None:
        """Carve one length's head/tail buffers out of the pool (idempotent)."""
        layout = self.layout
        limit = max(0, sequence_length - 1)
        for rule_id in range(1, layout.num_rules):
            owner = f"headTail[l={sequence_length}][{rule_id}]"
            if pool.allocation_of(owner) is not None:
                continue
            upper = head_tail_upper_limit(
                layout.rule_lengths[rule_id], len(layout.subrules[rule_id]), sequence_length
            )
            pool.allocate(owner, max(1, 2 * limit + max(0, upper)))

    # -- cached state -------------------------------------------------------------------------
    def has_state(self, key: StateKey) -> bool:
        with self._lock:
            return key in self._states

    @property
    def cached_keys(self) -> Tuple[StateKey, ...]:
        with self._lock:
            return tuple(self._states)

    def ensure(self, *keys: StateKey) -> None:
        """Build any of ``keys`` not yet cached (dependencies included)."""
        with self._lock:
            for key in keys:
                self._ensure(key)

    def state(self, key: StateKey) -> Any:
        """The cached value for ``key``, building it on first use."""
        with self._lock:
            return self._ensure(key).value

    def drain_new_records(self) -> Tuple[GpuRunRecord, GpuRunRecord]:
        """Collect construction work queued since the last drain.

        Returns ``(init_record, shared_traversal_record)``: the first holds
        Figure-3 initialization-phase work, the second shared traversal
        structures (local tables, rule/file weights).  Draining charges each
        piece of state exactly once over the session's lifetime.  Callers
        that must attribute the drained work to a specific batch hold
        :attr:`lock` across the batch's ensure/traverse/drain sequence.
        """
        with self._lock:
            init_record = GpuRunRecord()
            shared_record = GpuRunRecord()
            for entry in self._pending:
                target = init_record if entry.phase == "initialization" else shared_record
                target.merge(entry.record)
            self._pending.clear()
            return init_record, shared_record

    # -- builders ----------------------------------------------------------------------------------
    def _ensure(self, key: StateKey) -> _CachedState:
        with self._lock:
            cached = self._states.get(key)
            if cached is not None:
                return cached
            # Dependencies are ensured first so the pending queue stays in
            # construction order (bounds before tables, etc.).
            if key == LOCAL_TABLES:
                self._ensure(BOTTOMUP_BOUNDS)
            elif key.kind == "relational_rows":
                self._ensure(relational_tables_key(key.param))
            record = GpuRunRecord()
            device = GPUDevice(record=record, kernel_mode=self.config.kernel_mode)
            value = self._build(key, device)
            phase = "initialization" if key.kind in _INIT_PHASE_KINDS else "traversal"
            entry = _CachedState(key=key, value=value, record=record, phase=phase)
            self._states[key] = entry
            self._pending.append(entry)
            return entry

    def _build(self, key: StateKey, device: GPUDevice) -> Any:
        layout = self.layout
        if key == BASE_INIT:
            return self._build_base_init(device)
        if key == BOTTOMUP_BOUNDS:
            return prepare_bottomup(layout, device, self.memory_pool)
        if key == LOCAL_TABLES:
            bounds = self._states[BOTTOMUP_BOUNDS].value
            local_tables, _bounds = build_local_tables_bottomup(
                layout, device, memory_pool=self.memory_pool, bounds=bounds
            )
            return local_tables
        if key == RULE_WEIGHTS:
            return compute_rule_weights_topdown(layout, device)
        if key == FILE_WEIGHTS:
            return compute_file_weights_topdown(layout, device)
        if key.kind == "relational_tables":
            return build_relational_tables(
                layout, device, key.param, self.compressed.dictionary
            )
        if key.kind == "relational_rows":
            states = self._states[relational_tables_key(key.param)].value
            return assemble_relational_rows(
                layout, device, key.param, states, self.compressed.dictionary
            )
        if key.kind == "sequence_buffers":
            # The pool is provisioned for the configured sequence length;
            # other lengths size their requirement and grow the pool in one
            # step, so their buffers are pooled (and accounted) too.
            pool = self.memory_pool
            if pool is not None:
                self._reserve_sequence_capacity(pool, key.param)
            return build_sequence_buffers(layout, device, key.param, memory_pool=pool)
        raise KeyError(f"unknown session state: {key!r}")

    def _reserve_sequence_capacity(self, pool: MemoryPool, sequence_length: int) -> None:
        """Size the pool for one length's head/tail buffers before building them."""
        layout = self.layout
        limit = max(0, sequence_length - 1)
        needed = 0
        for rule_id in range(1, layout.num_rules):
            if pool.allocation_of(f"headTail[l={sequence_length}][{rule_id}]") is not None:
                continue
            upper = head_tail_upper_limit(
                layout.rule_lengths[rule_id], len(layout.subrules[rule_id]), sequence_length
            )
            # Worst case one alignment gap per allocation.
            needed += max(1, 2 * limit + max(0, upper)) + pool.alignment
        if needed == 0:
            return
        if sequence_length == self.config.sequence_length:
            # The base capacity already budgets this length; top up only a
            # shortfall.
            if needed > pool.free_words:
                pool.reserve(needed - pool.free_words)
        else:
            # Off-config lengths bring their own capacity in full: the
            # existing free words are headroom budgeted for local tables
            # and the configured length, and must stay available to them.
            pool.reserve(needed)

    def _build_base_init(self, device: GPUDevice) -> bool:
        """Initialization work every task shares (Figure 3, left box)."""
        layout = self.layout
        if self.config.needs_pcie_transfer:
            device.transfer_to_device(layout.device_footprint_bytes())
        # Host-side control: preparing launch configurations and the result
        # buffers is proportional to the number of rules, not to the data.
        device.record.host_counter.charge(
            compute_ops=4.0 * layout.num_rules, memory_bytes=8.0 * layout.num_rules
        )

        if device.kernel_mode == "vector":
            from repro.core.vectorized import data_structure_prep

            data_structure_prep(layout, device)
            return True

        def prep_kernel(tid: int, ctx) -> None:
            rule_id = tid
            if rule_id >= layout.num_rules:
                return
            # Each thread formats its rule's adjacency and local word table
            # into the device layout (the "data structure preparation" +
            # "light-weight scanning" box of Figure 3).
            length = layout.rule_lengths[rule_id]
            ctx.charge(
                ops=wc.SYMBOL_VISIT_OPS * length + wc.MASK_CHECK_OPS,
                memory_bytes=wc.SYMBOL_VISIT_BYTES * length,
            )

        device.launch("dataStructurePrepKernel", prep_kernel, max(1, layout.num_rules))
        return True
