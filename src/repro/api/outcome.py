"""The :class:`RunOutcome` of a query plus its normalized perf breakdown.

Engines count work in two different currencies —
:class:`~repro.perf.counters.GpuRunRecord` (per-kernel launches) for the
GPU engines and :class:`~repro.perf.counters.CostCounter` (flat scalar
counters) for the CPU/cluster engines.  :class:`PhasePerf` is the common
denominator: kernel launches (zero for CPU engines), total scalar ops
and memory traffic, reported per TADOC phase (initialization and
traversal).  Backend-specific objects stay reachable through
:attr:`RunOutcome.raw` and :attr:`RunOutcome.details`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.analytics.base import Task, TaskResult
from repro.api.query import Query
from repro.perf.counters import CostCounter, GpuRunRecord

__all__ = ["PhasePerf", "RunPerf", "RunOutcome", "perf_from_records", "perf_from_counters"]


@dataclass(frozen=True)
class PhasePerf:
    """Work one phase performed, in engine-independent units."""

    kernel_launches: int = 0
    ops: float = 0.0
    memory_bytes: float = 0.0
    #: Host <-> device transfer bytes (datasets that do not fit in GPU
    #: memory); zero on CPU engines.
    pcie_bytes: float = 0.0

    def __add__(self, other: "PhasePerf") -> "PhasePerf":
        return PhasePerf(
            kernel_launches=self.kernel_launches + other.kernel_launches,
            ops=self.ops + other.ops,
            memory_bytes=self.memory_bytes + other.memory_bytes,
            pcie_bytes=self.pcie_bytes + other.pcie_bytes,
        )


def perf_from_records(*records: GpuRunRecord) -> PhasePerf:
    """Fold GPU run records into one :class:`PhasePerf`."""
    launches = sum(record.num_launches for record in records)
    ops = sum(record.total_ops for record in records)
    memory = sum(
        sum(kernel.memory_bytes for kernel in record.kernels)
        + record.host_counter.memory_bytes
        for record in records
    )
    pcie = sum(record.pcie_bytes for record in records)
    return PhasePerf(kernel_launches=launches, ops=ops, memory_bytes=memory, pcie_bytes=pcie)


def perf_from_counters(*counters: CostCounter) -> PhasePerf:
    """Fold flat CPU cost counters into one :class:`PhasePerf`."""
    return PhasePerf(
        kernel_launches=0,
        ops=sum(counter.total_ops for counter in counters),
        memory_bytes=sum(counter.memory_bytes for counter in counters),
    )


@dataclass(frozen=True)
class RunPerf:
    """Per-phase work of one query, comparable across all backends."""

    initialization: PhasePerf = field(default_factory=PhasePerf)
    traversal: PhasePerf = field(default_factory=PhasePerf)

    @property
    def total(self) -> PhasePerf:
        return self.initialization + self.traversal

    @property
    def kernel_launches(self) -> int:
        return self.total.kernel_launches

    @property
    def ops(self) -> float:
        return self.total.ops


@dataclass(frozen=True)
class RunOutcome:
    """Everything one :meth:`AnalyticsBackend.run` call produces.

    ``result`` is the canonical, query-shaped task result; ``perf`` the
    normalized phase breakdown.  ``raw`` keeps the engine-specific run
    object (e.g. :class:`~repro.core.engine.GTadocRunResult`) for
    callers that need engine internals, and ``details`` carries small
    engine extras (chosen traversal strategy, memory-pool bytes, ...).
    """

    query: Query
    backend: str
    task: Task
    result: TaskResult
    perf: RunPerf = field(default_factory=RunPerf)
    raw: Any = None
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def kernel_launches(self) -> int:
        """Total kernel launches this query caused (0 on CPU backends)."""
        return self.perf.kernel_launches

    @property
    def ops(self) -> float:
        """Total modelled scalar operations this query caused."""
        return self.perf.ops
