"""Unified query API: one ``Query``, one protocol, every engine.

This package is the library's front door (the CompressDirect-style
uniform surface of paper §V):

* :class:`Query` — task + per-query parameters (sequence length, top-k,
  file subset, term filter, traversal override),
* :class:`RunOutcome` — canonical result + normalized per-phase perf
  breakdown, comparable across GPU-record and CPU-counter engines,
* :class:`AnalyticsBackend` — the protocol every engine adapter
  satisfies (``run``, ``run_batch``, ``capabilities``),
* :func:`open_backend` — the named registry over the six engines
  (``gtadoc``, ``cpu``, ``parallel``, ``distributed``,
  ``gpu_uncompressed``, ``reference``).

Quick start::

    from repro import Corpus, compress_corpus
    from repro.api import Query, open_backend

    compressed = compress_corpus(Corpus.from_texts({"a.txt": "..."}))
    backend = open_backend("gtadoc", compressed)
    outcome = backend.run(Query(task="word_count", top_k=10))
    print(outcome.result, outcome.perf.kernel_launches)
"""

from repro.api.backend import AnalyticsBackend, BackendCapabilities
from repro.api.backends import (
    CpuTadocBackend,
    DistributedTadocBackend,
    GpuUncompressedBackend,
    GTadocBackend,
    ParallelTadocBackend,
    ReferenceBackend,
)
from repro.api.outcome import PhasePerf, RunOutcome, RunPerf
from repro.api.query import FrozenExtras, Query, as_query, shape_result
from repro.api.registry import available_backends, open_backend, register_backend

__all__ = [
    "Query",
    "FrozenExtras",
    "as_query",
    "shape_result",
    "RunOutcome",
    "RunPerf",
    "PhasePerf",
    "AnalyticsBackend",
    "BackendCapabilities",
    "open_backend",
    "register_backend",
    "available_backends",
    "GTadocBackend",
    "CpuTadocBackend",
    "ParallelTadocBackend",
    "DistributedTadocBackend",
    "GpuUncompressedBackend",
    "ReferenceBackend",
]
