"""The :class:`Query` value object: one analytics request, any engine.

A query names the task plus every per-request knob the paper's
CompressDirect interface exposes — the sequence length of
sequence-sensitive tasks, a top-k cut for ranked outputs, an optional
file-subset restriction and an optional term filter — so the same
object can be handed to any registered
:class:`~repro.api.backend.AnalyticsBackend`.  Engines receive the
knobs they can execute natively (G-TADOC pushes the sequence length and
the file subset into its traversal programs); the result-shaping knobs
(``top_k``, ``terms``) are applied uniformly here so every backend
returns comparable results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Mapping, Optional, Tuple, Union

import numpy as np

from repro.analytics.base import Task, TaskResult, copy_normalized, normalize_result
from repro.core.strategy import TraversalStrategy
from repro.relational.spec import RelationalQuery

__all__ = ["FrozenExtras", "Query", "as_query", "shape_result", "known_extras_for"]

#: Annotation keys every task accepts: free-form client-side labels
#: (request tracing, cache partitioning).  No engine interprets them,
#: but they participate in equality/hashing like any other extras.
_COMMON_EXTRAS = frozenset({"tag", "trace"})

#: Extras keys each task understands.  Registered tasks reject unknown
#: keys at :class:`Query` construction, so a typo (or an extra aimed at
#: a different task) fails with a clear error instead of being silently
#: ignored or blowing up deep inside plan execution.
_KNOWN_EXTRAS = {task: _COMMON_EXTRAS for task in Task}
_KNOWN_EXTRAS[Task.RELATIONAL] = _COMMON_EXTRAS | {"relational"}


def known_extras_for(task: Task) -> frozenset:
    """The extras keys ``task`` accepts (annotations only for classic tasks)."""
    return _KNOWN_EXTRAS.get(task, _COMMON_EXTRAS)


class FrozenExtras(Mapping):
    """An immutable, hashable mapping of a query's extra knobs.

    A :class:`Query` is meant to be a cache/set key, so its ``extras``
    must hash consistently with equality and must not be mutable after
    the query is published.  The entries are frozen into a sorted tuple
    of ``(key, value)`` pairs at construction: equal extras hash equal
    regardless of insertion order, and there is no mutation surface for
    callers holding a reference.  Keys must be strings and values must
    be hashable (both enforced here, so an unusable query fails at
    construction rather than at cache-insertion time).
    """

    __slots__ = ("_items", "_data")

    def __init__(self, source: Union["FrozenExtras", Mapping, Iterable[Tuple[str, Any]]] = ()):
        if isinstance(source, FrozenExtras):
            self._items: Tuple[Tuple[str, Any], ...] = source._items
            self._data: Mapping[str, Any] = source._data
            return
        data = dict(source)
        for key in data:
            if not isinstance(key, str):
                raise TypeError(f"extras keys must be strings, got {key!r}")
        items = tuple(sorted(data.items()))
        try:
            hash(items)
        except TypeError:
            raise TypeError(
                "extras values must be hashable so the query can be used as a cache key"
            ) from None
        self._items = items
        self._data = data

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenExtras):
            return self._items == other._items
        if isinstance(other, Mapping):
            return self._data == dict(other)
        return NotImplemented

    @property
    def items_tuple(self) -> Tuple[Tuple[str, Any], ...]:
        """The frozen ``(key, value)`` pairs, sorted by key."""
        return self._items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenExtras({dict(self._items)!r})"


def _normalize_names(value: Optional[Iterable[str]], label: str) -> Optional[Tuple[str, ...]]:
    if value is None:
        return None
    if isinstance(value, str):
        value = (value,)
    names = tuple(dict.fromkeys(value))
    if not names:
        raise ValueError(f"{label} filter must name at least one entry")
    return names


@dataclass(frozen=True)
class Query:
    """One analytics request against any backend.

    Parameters
    ----------
    task:
        The analytics task (a :class:`~repro.analytics.base.Task` or its
        string name).
    sequence_length:
        Word-window length for sequence-sensitive tasks; ``None`` uses
        the backend's configured default.
    top_k:
        Keep only ``top_k`` entries along each task's ranked axis: the
        ``top_k`` highest-count entries of sort/word-count/sequence-count
        results, the first ``top_k`` entries of each per-word posting
        list (ranked and plain inverted index), and each file's ``top_k``
        highest-count words in a term vector.
    files:
        Restrict the query to these files (by name).  Backends that
        support native filtering do only the marginal work for the
        subset.
    terms:
        Restrict the result to these words (sequence counts keep
        n-grams made entirely of the given terms).
    traversal:
        Force a DAG traversal direction on backends that expose one
        (the G-TADOC engine); others ignore it.
    extras:
        Task-specific knobs and client annotations.  Every task accepts
        the annotation keys ``tag``/``trace`` (opaque labels no engine
        interprets); :attr:`Task.RELATIONAL` additionally requires the
        ``relational`` key carrying its :class:`RelationalQuery` spec.
        Unknown keys raise :class:`ValueError` at construction.
    """

    task: Task
    sequence_length: Optional[int] = None
    top_k: Optional[int] = None
    files: Optional[Tuple[str, ...]] = None
    terms: Optional[Tuple[str, ...]] = None
    traversal: Optional[TraversalStrategy] = None
    #: Room for future knobs; frozen into a :class:`FrozenExtras` at
    #: construction so it participates in both equality and hashing —
    #: a Query is a safe cache/set key.
    extras: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        task = self.task
        if isinstance(task, str):
            object.__setattr__(self, "task", Task.from_name(task))
        if self.sequence_length is not None and self.sequence_length < 1:
            raise ValueError("sequence_length must be >= 1")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        object.__setattr__(self, "files", _normalize_names(self.files, "files"))
        object.__setattr__(self, "terms", _normalize_names(self.terms, "terms"))
        if self.traversal is not None and not isinstance(self.traversal, TraversalStrategy):
            object.__setattr__(self, "traversal", TraversalStrategy(self.traversal))
        if not isinstance(self.extras, FrozenExtras):
            object.__setattr__(self, "extras", FrozenExtras(self.extras))
        self._validate_extras()

    def _validate_extras(self) -> None:
        """Reject unknown extras and enforce per-task extras contracts."""
        known = known_extras_for(self.task)
        unknown = sorted(set(self.extras) - known)
        if unknown:
            allowed = sorted(known) if known else "none"
            raise ValueError(
                f"unknown extras {unknown} for task {self.task.value!r} "
                f"(allowed extras: {allowed})"
            )
        if self.task is Task.RELATIONAL:
            spec = self.extras.get("relational")
            if not isinstance(spec, RelationalQuery):
                raise ValueError(
                    "relational queries need extras={'relational': RelationalQuery(...)}"
                )
            if self.terms is not None:
                raise ValueError("relational queries do not support a terms filter")
            if self.sequence_length is not None:
                raise ValueError("relational queries do not take a sequence_length")

    @property
    def relational(self) -> Optional[RelationalQuery]:
        """The relational spec carried in extras (``None`` for classic tasks)."""
        return self.extras.get("relational")

    # -- convenience -----------------------------------------------------------------------
    @property
    def is_filtered(self) -> bool:
        """True when the query restricts files or terms."""
        return self.files is not None or self.terms is not None

    def with_task(self, task: Union[Task, str]) -> "Query":
        """The same knobs applied to a different task."""
        return replace(self, task=Task.from_name(task) if isinstance(task, str) else task)

    def describe(self) -> str:
        """A compact human-readable description (CLI/log output)."""
        parts = [self.task.value]
        if self.sequence_length is not None:
            parts.append(f"l={self.sequence_length}")
        if self.top_k is not None:
            parts.append(f"top_k={self.top_k}")
        if self.files is not None:
            parts.append(f"files={len(self.files)}")
        if self.terms is not None:
            parts.append(f"terms={len(self.terms)}")
        if self.traversal is not None:
            parts.append(self.traversal.value)
        return " ".join(parts)


def as_query(query: Union[Query, Task, str]) -> Query:
    """Coerce a task name/enum into a plain :class:`Query`."""
    if isinstance(query, Query):
        return query
    return Query(task=query)


# ----------------------------------------------------------------------------------------
# Uniform result shaping (term filter + top-k), applied by every backend
# ----------------------------------------------------------------------------------------

def _shape_relational(
    result: TaskResult, spec: Optional[RelationalQuery], top_k: Optional[int]
) -> TaskResult:
    """Apply the relational spec's ordering and the query's ``top_k``.

    ``order_by`` sorts descending by the named aggregate with ``None``
    values last; a stable sort over the canonical (group-ascending)
    order keeps ties in group order.  Without an ``order_by`` the
    ``top_k`` cut keeps the first groups in canonical order.
    """
    shaped = list(result)
    if spec is not None and spec.order_by is not None:
        slot = spec.aggregate_labels.index(spec.order_by)
        present = [entry for entry in shaped if entry[1][slot] is not None]
        missing = [entry for entry in shaped if entry[1][slot] is None]
        present.sort(key=lambda entry: entry[1][slot], reverse=True)
        shaped = present + missing
    if top_k is not None:
        shaped = shaped[:top_k]
    return shaped

def _filter_terms(task: Task, result: TaskResult, terms: Tuple[str, ...]) -> TaskResult:
    allowed = set(terms)
    if task in (Task.WORD_COUNT,):
        return {word: count for word, count in result.items() if word in allowed}
    if task is Task.SORT:
        return [(word, count) for word, count in result if word in allowed]
    if task in (Task.INVERTED_INDEX, Task.RANKED_INVERTED_INDEX):
        return {word: entry for word, entry in result.items() if word in allowed}
    if task is Task.TERM_VECTOR:
        return {
            file_name: {word: count for word, count in counts.items() if word in allowed}
            for file_name, counts in result.items()
        }
    if task is Task.SEQUENCE_COUNT:
        return {
            key: count for key, count in result.items() if all(word in allowed for word in key)
        }
    raise ValueError(f"unknown task: {task!r}")  # pragma: no cover - exhaustive over Task


def _truncate_top_k(task: Task, result: TaskResult, top_k: int) -> TaskResult:
    """Cut every task's ranked (or rankable) axis to ``top_k`` entries.

    Per-word/file structures are truncated *within* each entry, mirroring
    ``RANKED_INVERTED_INDEX``: an inverted index keeps each word's first
    ``top_k`` files (name order, the canonical posting order), and a term
    vector keeps each file's ``top_k`` highest-count words (ties broken
    by word, the same order the ranked index uses).
    """
    if task is Task.SORT:
        return result[:top_k]
    # ``heapq.nsmallest`` with the same sort key returns exactly the
    # first ``top_k`` entries of the full sort in O(n log k), which is
    # far cheaper than sorting whole word/sequence tables per query.
    rank = lambda item: (-item[1], item[0])  # noqa: E731
    if task in (Task.WORD_COUNT, Task.SEQUENCE_COUNT):
        if len(result) > 4096 and top_k * 8 < len(result):
            # Large table, small cut: find the k-th largest count with a
            # numpy partition and only rank the entries at or above it
            # (a superset of the true top-k, ties included).
            values = np.fromiter(result.values(), dtype=np.int64, count=len(result))
            threshold = np.partition(values, len(values) - top_k)[len(values) - top_k]
            candidates = [item for item in result.items() if item[1] >= threshold]
            return dict(heapq.nsmallest(top_k, candidates, key=rank))
        return dict(heapq.nsmallest(top_k, result.items(), key=rank))
    if task is Task.RANKED_INVERTED_INDEX:
        return {word: pairs[:top_k] for word, pairs in result.items()}
    if task is Task.INVERTED_INDEX:
        return {word: files[:top_k] for word, files in result.items()}
    if task is Task.TERM_VECTOR:
        return {
            file_name: dict(heapq.nsmallest(top_k, counts.items(), key=rank))
            for file_name, counts in result.items()
        }
    raise ValueError(f"unknown task: {task!r}")  # pragma: no cover - exhaustive over Task


def shape_result(query: Query, result: TaskResult, *, normalized: bool = False) -> TaskResult:
    """Apply the query's result-shaping knobs to a canonical result.

    Shaping is deterministic (results are normalized first), so two
    backends given the same query produce equal shaped results whenever
    their raw results agree.  Callers that hand in a result which is
    *already* canonical (every engine normalizes at its boundary) may
    pass ``normalized=True`` to replace the re-normalization with a
    cheap copy.
    """
    shaped = (
        copy_normalized(query.task, result)
        if normalized
        else normalize_result(query.task, result)
    )
    if query.task is Task.RELATIONAL:
        # Relational shaping is spec-driven (order_by + top_k); a terms
        # filter is rejected at Query construction.
        return _shape_relational(shaped, query.relational, query.top_k)
    if query.terms is not None:
        shaped = _filter_terms(query.task, shaped, query.terms)
    if query.top_k is not None:
        shaped = _truncate_top_k(query.task, shaped, query.top_k)
    return shaped
