"""The :class:`Query` value object: one analytics request, any engine.

A query names the task plus every per-request knob the paper's
CompressDirect interface exposes — the sequence length of
sequence-sensitive tasks, a top-k cut for ranked outputs, an optional
file-subset restriction and an optional term filter — so the same
object can be handed to any registered
:class:`~repro.api.backend.AnalyticsBackend`.  Engines receive the
knobs they can execute natively (G-TADOC pushes the sequence length and
the file subset into its traversal programs); the result-shaping knobs
(``top_k``, ``terms``) are applied uniformly here so every backend
returns comparable results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Optional, Tuple, Union

from repro.analytics.base import Task, TaskResult, normalize_result
from repro.core.strategy import TraversalStrategy

__all__ = ["Query", "as_query", "shape_result"]


def _normalize_names(value: Optional[Iterable[str]], label: str) -> Optional[Tuple[str, ...]]:
    if value is None:
        return None
    if isinstance(value, str):
        value = (value,)
    names = tuple(dict.fromkeys(value))
    if not names:
        raise ValueError(f"{label} filter must name at least one entry")
    return names


@dataclass(frozen=True)
class Query:
    """One analytics request against any backend.

    Parameters
    ----------
    task:
        The analytics task (a :class:`~repro.analytics.base.Task` or its
        string name).
    sequence_length:
        Word-window length for sequence-sensitive tasks; ``None`` uses
        the backend's configured default.
    top_k:
        Keep only the ``top_k`` highest-count entries of ranked outputs
        (sort, word/sequence counts, per-word file rankings).
    files:
        Restrict the query to these files (by name).  Backends that
        support native filtering do only the marginal work for the
        subset.
    terms:
        Restrict the result to these words (sequence counts keep
        n-grams made entirely of the given terms).
    traversal:
        Force a DAG traversal direction on backends that expose one
        (the G-TADOC engine); others ignore it.
    extras:
        Room for future knobs; backends may interpret or ignore them.
    """

    task: Task
    sequence_length: Optional[int] = None
    top_k: Optional[int] = None
    files: Optional[Tuple[str, ...]] = None
    terms: Optional[Tuple[str, ...]] = None
    traversal: Optional[TraversalStrategy] = None
    #: Room for future knobs; excluded from hashing so a Query stays a
    #: usable cache/set key (it still participates in equality).
    extras: Mapping[str, Any] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        task = self.task
        if isinstance(task, str):
            object.__setattr__(self, "task", Task.from_name(task))
        if self.sequence_length is not None and self.sequence_length < 1:
            raise ValueError("sequence_length must be >= 1")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        object.__setattr__(self, "files", _normalize_names(self.files, "files"))
        object.__setattr__(self, "terms", _normalize_names(self.terms, "terms"))
        if self.traversal is not None and not isinstance(self.traversal, TraversalStrategy):
            object.__setattr__(self, "traversal", TraversalStrategy(self.traversal))

    # -- convenience -----------------------------------------------------------------------
    @property
    def is_filtered(self) -> bool:
        """True when the query restricts files or terms."""
        return self.files is not None or self.terms is not None

    def with_task(self, task: Union[Task, str]) -> "Query":
        """The same knobs applied to a different task."""
        return replace(self, task=Task.from_name(task) if isinstance(task, str) else task)

    def describe(self) -> str:
        """A compact human-readable description (CLI/log output)."""
        parts = [self.task.value]
        if self.sequence_length is not None:
            parts.append(f"l={self.sequence_length}")
        if self.top_k is not None:
            parts.append(f"top_k={self.top_k}")
        if self.files is not None:
            parts.append(f"files={len(self.files)}")
        if self.terms is not None:
            parts.append(f"terms={len(self.terms)}")
        if self.traversal is not None:
            parts.append(self.traversal.value)
        return " ".join(parts)


def as_query(query: Union[Query, Task, str]) -> Query:
    """Coerce a task name/enum into a plain :class:`Query`."""
    if isinstance(query, Query):
        return query
    return Query(task=query)


# ----------------------------------------------------------------------------------------
# Uniform result shaping (term filter + top-k), applied by every backend
# ----------------------------------------------------------------------------------------

def _filter_terms(task: Task, result: TaskResult, terms: Tuple[str, ...]) -> TaskResult:
    allowed = set(terms)
    if task in (Task.WORD_COUNT,):
        return {word: count for word, count in result.items() if word in allowed}
    if task is Task.SORT:
        return [(word, count) for word, count in result if word in allowed]
    if task in (Task.INVERTED_INDEX, Task.RANKED_INVERTED_INDEX):
        return {word: entry for word, entry in result.items() if word in allowed}
    if task is Task.TERM_VECTOR:
        return {
            file_name: {word: count for word, count in counts.items() if word in allowed}
            for file_name, counts in result.items()
        }
    if task is Task.SEQUENCE_COUNT:
        return {
            key: count for key, count in result.items() if all(word in allowed for word in key)
        }
    raise ValueError(f"unknown task: {task!r}")  # pragma: no cover - exhaustive over Task


def _truncate_top_k(task: Task, result: TaskResult, top_k: int) -> TaskResult:
    if task is Task.SORT:
        return result[:top_k]
    if task in (Task.WORD_COUNT, Task.SEQUENCE_COUNT):
        ordered = sorted(result.items(), key=lambda item: (-item[1], item[0]))[:top_k]
        return dict(ordered)
    if task is Task.RANKED_INVERTED_INDEX:
        return {word: pairs[:top_k] for word, pairs in result.items()}
    # Inverted index and term vector have no ranked axis to cut.
    return result


def shape_result(query: Query, result: TaskResult) -> TaskResult:
    """Apply the query's result-shaping knobs to a canonical result.

    Shaping is deterministic (results are normalized first), so two
    backends given the same query produce equal shaped results whenever
    their raw results agree.
    """
    shaped = normalize_result(query.task, result)
    if query.terms is not None:
        shaped = _filter_terms(query.task, shaped, query.terms)
    if query.top_k is not None:
        shaped = _truncate_top_k(query.task, shaped, query.top_k)
    return shaped
