"""Adapters that put every engine behind the :class:`AnalyticsBackend` protocol.

Six backends ship with the library, mirroring the engines the paper
evaluates:

``gtadoc``
    The G-TADOC engine (simulated GPU, compressed domain).  Queries run
    against the engine's persistent device session, so a backend serves
    many queries while charging initialization and shared traversal
    state once; per-query ``sequence_length`` and file subsets are pushed
    into the traversal programs (marginal work only).
``cpu``
    Sequential CPU TADOC (compressed domain), the paper's baseline [2].
``parallel``
    Coarse-grained multi-threaded TADOC [4] (file partitions).
``distributed``
    TADOC on the simulated 10-node cluster (dataset C's baseline).
``gpu_uncompressed``
    GPU analytics on the raw token stream (paper §VI-E).
``reference``
    The uncompressed ground-truth implementation (no perf model).

Backends accept either a :class:`~repro.data.corpus.Corpus` or a
:class:`~repro.compression.compressor.CompressedCorpus` and derive the
form they need (compressing, or losslessly decompressing, once).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analytics.base import Task
from repro.analytics.reference import UncompressedAnalytics
from repro.api.backend import BackendCapabilities
from repro.api.outcome import (
    RunOutcome,
    RunPerf,
    perf_from_counters,
    perf_from_records,
)
from repro.api.query import Query, as_query, shape_result
from repro.baselines.cpu_tadoc import CpuTadoc
from repro.baselines.distributed import DistributedTadoc
from repro.baselines.gpu_uncompressed import GpuUncompressedAnalytics
from repro.baselines.parallel_tadoc import ParallelCpuTadoc
from repro.cluster.simulator import ClusterSpec
from repro.compression.compressor import CompressedCorpus, compress_corpus
from repro.core.engine import GTadoc, GTadocConfig
from repro.data.corpus import Corpus

__all__ = [
    "CorpusSource",
    "GTadocBackend",
    "CpuTadocBackend",
    "ParallelTadocBackend",
    "DistributedTadocBackend",
    "GpuUncompressedBackend",
    "ReferenceBackend",
]

#: What callers may hand to ``open_backend``: raw or compressed.
CorpusSource = Union[Corpus, CompressedCorpus]


def _as_compressed(source: CorpusSource) -> CompressedCorpus:
    if isinstance(source, CompressedCorpus):
        return source
    if isinstance(source, Corpus):
        return compress_corpus(source)
    raise TypeError(f"expected a Corpus or CompressedCorpus, got {type(source).__name__}")


def _as_corpus(source: CorpusSource) -> Corpus:
    if isinstance(source, Corpus):
        return source
    if isinstance(source, CompressedCorpus):
        # TADOC compression is lossless; reconstruct the token streams.
        return source.decompress()
    raise TypeError(f"expected a Corpus or CompressedCorpus, got {type(source).__name__}")


def _resolve_file_names(
    available: List[str], requested: Optional[Tuple[str, ...]]
) -> Optional[Tuple[str, ...]]:
    """Validate a file filter against the corpus, keeping corpus order."""
    if requested is None:
        return None
    known = set(available)
    missing = [name for name in requested if name not in known]
    if missing:
        raise ValueError(
            f"unknown file(s) in query filter: {missing}; corpus has {sorted(known)}"
        )
    wanted = set(requested)
    return tuple(name for name in available if name in wanted)


def _file_indices_for(
    available: List[str], requested: Optional[Tuple[str, ...]]
) -> Optional[Tuple[int, ...]]:
    """Resolve a query's file filter into corpus-order file indices."""
    names = _resolve_file_names(available, requested)
    if names is None:
        return None
    index_of = {name: index for index, name in enumerate(available)}
    return tuple(index_of[name] for name in names)


def _sub_corpus(corpus: Corpus, names: Tuple[str, ...]) -> Corpus:
    wanted = set(names)
    return Corpus(
        [document for document in corpus if document.name in wanted],
        name=f"{corpus.name}:subset",
    )


class _BackendBase:
    """Shared plumbing: query coercion, batch fallback, result shaping."""

    name: str = ""

    def run(self, query: Query) -> RunOutcome:  # pragma: no cover - overridden
        raise NotImplementedError

    def run_batch(self, queries: Iterable[Union[Query, Task, str]]) -> List[RunOutcome]:
        """Run queries in order against this backend's shared state."""
        return [self.run(query) for query in queries]

    def _outcome(
        self,
        query: Query,
        result,
        perf: RunPerf,
        raw=None,
        details: Optional[Dict] = None,
    ) -> RunOutcome:
        return RunOutcome(
            query=query,
            backend=self.name,
            task=query.task,
            result=shape_result(query, result),
            perf=perf,
            raw=raw,
            details=details or {},
        )


# ----------------------------------------------------------------------------------------
# G-TADOC (the paper's system)
# ----------------------------------------------------------------------------------------

class GTadocBackend(_BackendBase):
    """G-TADOC behind the query protocol (persistent serving session).

    With ``amortize=True`` (the default) queries share the engine's
    device session: whichever query first needs a piece of shared state
    pays for its construction (reported in its ``initialization`` perf),
    and every later query charges only marginal traversal kernels — the
    serving path.  ``amortize=False`` gives each query a fresh session,
    reproducing the full per-query cost the paper's figures measure.
    """

    name = "gtadoc"

    def __init__(
        self,
        source: CorpusSource,
        config: Optional[GTadocConfig] = None,
        amortize: bool = True,
    ) -> None:
        self.compressed = _as_compressed(source)
        self.engine = GTadoc(self.compressed, config=config)
        self.amortize = amortize

    def run(self, query: Union[Query, Task, str]) -> RunOutcome:
        query = as_query(query)
        indices = _file_indices_for(self.compressed.file_names, query.files)
        if self.amortize:
            batch = self.engine.run_batch(
                [query.task],
                traversal=query.traversal,
                sequence_length=query.sequence_length,
                file_indices=indices,
                relational=query.relational,
            )
            run = batch[query.task]
            init = perf_from_records(batch.init_record, batch.shared_record)
            traversal = perf_from_records(run.traversal_record)
            pool_bytes = batch.memory_pool_bytes
        else:
            run = self.engine.run(
                query.task,
                traversal=query.traversal,
                sequence_length=query.sequence_length,
                file_indices=indices,
                relational=query.relational,
            )
            init = perf_from_records(run.init_record)
            traversal = perf_from_records(run.traversal_record)
            pool_bytes = run.memory_pool_bytes
        return self._outcome(
            query,
            run.result,
            RunPerf(initialization=init, traversal=traversal),
            raw=run,
            details={
                "strategy": run.strategy.value,
                "memory_pool_bytes": pool_bytes,
            },
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="G-TADOC: GPU analytics directly on TADOC-compressed data",
            device="gpu",
            compressed_domain=True,
            native_sequence_length=True,
            native_file_filter=True,
            amortizes_batches=self.amortize,
            supports_traversal_choice=True,
        )


# ----------------------------------------------------------------------------------------
# Sequential CPU TADOC
# ----------------------------------------------------------------------------------------

class CpuTadocBackend(_BackendBase):
    """Sequential TADOC (compressed domain) behind the query protocol."""

    name = "cpu"

    def __init__(self, source: CorpusSource, sequence_length: Optional[int] = None) -> None:
        self.compressed = _as_compressed(source)
        kwargs = {} if sequence_length is None else {"sequence_length": sequence_length}
        self.engine = CpuTadoc(self.compressed, **kwargs)

    def run(self, query: Union[Query, Task, str]) -> RunOutcome:
        query = as_query(query)
        indices = _file_indices_for(self.compressed.file_names, query.files)
        run = self.engine.run(
            query.task,
            sequence_length=query.sequence_length,
            file_indices=indices,
            relational=query.relational,
        )
        perf = RunPerf(
            initialization=perf_from_counters(run.init_counter),
            traversal=perf_from_counters(run.traversal_counter),
        )
        return self._outcome(query, run.result, perf, raw=run)

    def capabilities(self) -> BackendCapabilities:
        # File filters are honoured in-engine, but only the expansion-based
        # tasks (sequence count, ranked inverted index) truly skip work for
        # excluded files — the propagation-based tasks still pay the full
        # weight pass — so the filter is not advertised as marginal.
        return BackendCapabilities(
            name=self.name,
            description="Sequential CPU TADOC (paper baseline [2])",
            device="cpu",
            compressed_domain=True,
            native_file_filter=False,
        )


# ----------------------------------------------------------------------------------------
# Raw-corpus engines (parallel, distributed, GPU-uncompressed, reference)
# ----------------------------------------------------------------------------------------

class _RawCorpusBackend(_BackendBase):
    """Base for engines that consume the raw corpus.

    File filters are served by building (and caching) the engine on the
    requested sub-corpus — the raw-text equivalent of restricting the
    traversal, since these engines scan their input in full.
    """

    def __init__(self, source: CorpusSource) -> None:
        self.corpus = _as_corpus(source)
        self._engines: Dict[Tuple[str, ...], object] = {}

    def _make_engine(self, corpus: Corpus):  # pragma: no cover - overridden
        raise NotImplementedError

    def _engine_for(self, query: Query):
        names = _resolve_file_names(self.corpus.file_names, query.files)
        key = names if names is not None else tuple(self.corpus.file_names)
        if key not in self._engines:
            corpus = self.corpus if names is None else _sub_corpus(self.corpus, key)
            self._engines[key] = self._make_engine(corpus)
        return self._engines[key]


class ParallelTadocBackend(_RawCorpusBackend):
    """Coarse-grained parallel CPU TADOC behind the query protocol."""

    name = "parallel"

    def __init__(
        self,
        source: CorpusSource,
        num_threads: int = 8,
        sequence_length: Optional[int] = None,
    ) -> None:
        super().__init__(source)
        self.num_threads = num_threads
        self.sequence_length = sequence_length

    def _make_engine(self, corpus: Corpus) -> ParallelCpuTadoc:
        kwargs = {} if self.sequence_length is None else {"sequence_length": self.sequence_length}
        return ParallelCpuTadoc(corpus, num_threads=self.num_threads, **kwargs)

    def run(self, query: Union[Query, Task, str]) -> RunOutcome:
        query = as_query(query)
        engine = self._engine_for(query)
        run = engine.run(
            query.task, sequence_length=query.sequence_length, relational=query.relational
        )
        perf = RunPerf(
            initialization=perf_from_counters(*run.partition_init_counters),
            traversal=perf_from_counters(*run.partition_traversal_counters, run.merge_counter),
        )
        return self._outcome(
            query, run.result, perf, raw=run, details={"partitions": run.num_partitions}
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="Coarse-grained multi-threaded TADOC (paper baseline [4])",
            device="cpu",
            compressed_domain=True,
        )


class DistributedTadocBackend(_RawCorpusBackend):
    """Distributed TADOC on the simulated cluster behind the query protocol."""

    name = "distributed"

    def __init__(
        self,
        source: CorpusSource,
        cluster: Optional[ClusterSpec] = None,
        partitions_per_node: int = 2,
        sequence_length: Optional[int] = None,
    ) -> None:
        super().__init__(source)
        self.cluster = cluster
        self.partitions_per_node = partitions_per_node
        self.sequence_length = sequence_length

    def _make_engine(self, corpus: Corpus) -> DistributedTadoc:
        kwargs = {} if self.sequence_length is None else {"sequence_length": self.sequence_length}
        return DistributedTadoc(
            corpus,
            cluster=self.cluster,
            partitions_per_node=self.partitions_per_node,
            **kwargs,
        )

    def run(self, query: Union[Query, Task, str]) -> RunOutcome:
        query = as_query(query)
        engine = self._engine_for(query)
        run = engine.run(
            query.task, sequence_length=query.sequence_length, relational=query.relational
        )
        perf = RunPerf(
            initialization=perf_from_counters(*run.per_node_init_counters()),
            traversal=perf_from_counters(
                *run.per_node_traversal_counters(), run.shuffle_counter, run.merge_counter
            ),
        )
        return self._outcome(
            query,
            run.result,
            perf,
            raw=run,
            details={"nodes": len(run.node_init_executions)},
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="TADOC across the simulated 10-node cluster (dataset C baseline)",
            device="cluster",
            compressed_domain=True,
        )


class GpuUncompressedBackend(_RawCorpusBackend):
    """GPU analytics on the raw token stream (paper §VI-E comparator)."""

    name = "gpu_uncompressed"

    def __init__(
        self,
        source: CorpusSource,
        sequence_length: Optional[int] = None,
        needs_pcie_transfer: bool = False,
    ) -> None:
        super().__init__(source)
        self.sequence_length = sequence_length
        self.needs_pcie_transfer = needs_pcie_transfer
        self._analytics: Dict[Tuple[Tuple[str, ...], int], GpuUncompressedAnalytics] = {}

    def _make_engine(self, corpus: Corpus) -> Corpus:
        # The per-query analytics object is built in ``_analytics_for``
        # (it is parameterised by sequence length as well as the corpus).
        return corpus

    def _analytics_for(self, query: Query) -> GpuUncompressedAnalytics:
        corpus = self._engine_for(query)
        length_kwargs = {}
        length = (
            query.sequence_length if query.sequence_length is not None else self.sequence_length
        )
        if length is not None:
            length_kwargs["sequence_length"] = length
        key = (tuple(corpus.file_names), length if length is not None else -1)
        if key not in self._analytics:
            self._analytics[key] = GpuUncompressedAnalytics(
                corpus, needs_pcie_transfer=self.needs_pcie_transfer, **length_kwargs
            )
        return self._analytics[key]

    def run(self, query: Union[Query, Task, str]) -> RunOutcome:
        query = as_query(query)
        run = self._analytics_for(query).run(query.task, relational=query.relational)
        perf = RunPerf(traversal=perf_from_records(run.record))
        return self._outcome(query, run.result, perf, raw=run)

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="GPU analytics on uncompressed tokens (paper §VI-E)",
            device="gpu",
            compressed_domain=False,
        )


class ReferenceBackend(_RawCorpusBackend):
    """The uncompressed ground-truth implementation (no perf model)."""

    name = "reference"

    def __init__(self, source: CorpusSource, sequence_length: Optional[int] = None) -> None:
        super().__init__(source)
        self.sequence_length = sequence_length

    def _make_engine(self, corpus: Corpus) -> Corpus:
        return corpus

    def run(self, query: Union[Query, Task, str]) -> RunOutcome:
        query = as_query(query)
        corpus = self._engine_for(query)
        length = (
            query.sequence_length if query.sequence_length is not None else self.sequence_length
        )
        kwargs = {} if length is None else {"sequence_length": length}
        result = UncompressedAnalytics(corpus, **kwargs).run(
            query.task, relational=query.relational
        )
        return self._outcome(query, result, RunPerf(), raw=result)

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="Uncompressed reference implementation (ground truth)",
            device="cpu",
            compressed_domain=False,
        )
