"""Named backend registry: one front door for every analytics engine.

``open_backend("gtadoc", corpus_or_compressed, **options)`` constructs
the requested engine adapter; ``register_backend`` lets applications
plug in their own engines (anything satisfying
:class:`~repro.api.backend.AnalyticsBackend`) under a new name.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.api.backend import AnalyticsBackend
from repro.api.backends import (
    CorpusSource,
    CpuTadocBackend,
    DistributedTadocBackend,
    GpuUncompressedBackend,
    GTadocBackend,
    ParallelTadocBackend,
    ReferenceBackend,
)

__all__ = ["register_backend", "open_backend", "available_backends"]

#: A factory takes the corpus source plus backend-specific options.
BackendFactory = Callable[..., AnalyticsBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory, replace: bool = False) -> None:
    """Register ``factory`` under ``name`` (error on collision unless ``replace``)."""
    key = name.strip().lower()
    if not key:
        raise ValueError("backend name must be non-empty")
    if key in _REGISTRY and not replace:
        raise ValueError(f"backend {key!r} is already registered (pass replace=True)")
    _REGISTRY[key] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def open_backend(name: str, source: CorpusSource, **options) -> AnalyticsBackend:
    """Construct the backend registered under ``name`` for ``source``.

    ``source`` may be a raw :class:`~repro.data.corpus.Corpus` or a
    :class:`~repro.compression.compressor.CompressedCorpus`; the backend
    derives the form it needs.  ``options`` are forwarded to the
    backend's constructor (e.g. ``config=`` for ``gtadoc``,
    ``num_threads=`` for ``parallel``).
    """
    key = name.strip().lower()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    return factory(source, **options)


# The six engines the paper evaluates, pre-registered.
register_backend(GTadocBackend.name, GTadocBackend)
register_backend(CpuTadocBackend.name, CpuTadocBackend)
register_backend(ParallelTadocBackend.name, ParallelTadocBackend)
register_backend(DistributedTadocBackend.name, DistributedTadocBackend)
register_backend(GpuUncompressedBackend.name, GpuUncompressedBackend)
register_backend(ReferenceBackend.name, ReferenceBackend)


def _serve_factory(source: CorpusSource, **options) -> AnalyticsBackend:
    # Imported lazily: the serving layer builds on this package.
    from repro.serve.service import AnalyticsService

    return AnalyticsService(source, **options)


# The thread-safe serving layer (session LRU + coalescing + result cache).
register_backend("serve", _serve_factory)


def _serve_async_factory(source: CorpusSource, **options) -> AnalyticsBackend:
    # Imported lazily: the serving layer builds on this package.
    from repro.serve.aio import AsyncServeBackend

    return AsyncServeBackend(source, **options)


# The asyncio serving front end (event-driven coalescing) behind a sync
# adapter hosting it on a dedicated event-loop thread.
register_backend("serve_async", _serve_async_factory)


def _serve_sharded_factory(source: CorpusSource, **options) -> AnalyticsBackend:
    # Imported lazily: the serving layer builds on this package.
    from repro.serve.sharding import ShardedAnalyticsService

    return ShardedAnalyticsService(source, **options)


# The fingerprint-routed shard pool (rendezvous routing, hot-corpus
# replication) — each shard a serving core on its own executor.
register_backend("serve_sharded", _serve_sharded_factory)
