"""The :class:`AnalyticsBackend` protocol every engine adapter satisfies.

The protocol is the library's single query surface: ``run`` executes
one :class:`~repro.api.query.Query`, ``run_batch`` executes several
against shared state (backends that amortize initialization charge it
once across the batch), and ``capabilities`` describes what the engine
can do natively so callers can route queries without engine-specific
branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Protocol, Tuple, runtime_checkable

from repro.analytics.base import Task
from repro.api.outcome import RunOutcome
from repro.api.query import Query

__all__ = ["BackendCapabilities", "AnalyticsBackend"]


@dataclass(frozen=True)
class BackendCapabilities:
    """What one backend supports, for capability-based routing."""

    #: Registry name (``open_backend(name, ...)``).
    name: str
    #: One-line human description.
    description: str
    #: Execution substrate: ``"gpu"``, ``"cpu"`` or ``"cluster"``.
    device: str
    #: True when the engine operates on the compressed form directly.
    compressed_domain: bool
    #: Per-query ``sequence_length`` honoured without rebuilding the backend.
    native_sequence_length: bool = True
    #: File-subset filters executed inside the traversal (marginal work),
    #: as opposed to adapter-level sub-corpus construction.
    native_file_filter: bool = False
    #: ``run_batch`` charges initialization/shared state once per batch.
    amortizes_batches: bool = False
    #: The engine honours :attr:`Query.traversal`.
    supports_traversal_choice: bool = False
    #: Tasks the backend can answer.
    tasks: Tuple[Task, ...] = tuple(Task.all())


@runtime_checkable
class AnalyticsBackend(Protocol):
    """Uniform query interface over every analytics engine."""

    @property
    def name(self) -> str:  # pragma: no cover - protocol declaration
        """The backend's registry name."""
        ...

    def run(self, query: Query) -> RunOutcome:  # pragma: no cover - protocol declaration
        """Execute one query and return its outcome."""
        ...

    def run_batch(
        self, queries: Iterable[Query]
    ) -> List[RunOutcome]:  # pragma: no cover - protocol declaration
        """Execute several queries against shared backend state."""
        ...

    def capabilities(self) -> BackendCapabilities:  # pragma: no cover - protocol declaration
        """Describe what this backend supports."""
        ...
