"""Deterministic synthetic corpus generators for the paper's datasets.

The paper evaluates five corpora (Table II):

========  =====================================  ======  =========  ==========  ===========
Dataset   Source                                 Size    Files      Rules       Vocabulary
========  =====================================  ======  =========  ==========  ===========
A         NSF Research Award Abstracts (NSFRAA)  580MB   134,631    2,771,880   1,864,902
B         4 Wikipedia web documents              2.1GB   4          2,095,573   6,370,437
C         Large Wikipedia collection             50GB    109        57,394,616  99,239,057
D         Yelp COVID-19 data                     62MB    1          36,882      240,552
E         DBLP web documents                     2.9GB   1          8,821,630   23,959,913
========  =====================================  ======  =========  ==========  ===========

Those corpora cannot be shipped here, so each dataset is replaced by a
*structural analogue*: a deterministic synthetic corpus that matches the
qualitative grammar shape that drives TADOC/G-TADOC behaviour —

* dataset A: very many tiny files sharing boilerplate phrases,
* dataset B: a handful of large, internally redundant documents,
* dataset C: the largest corpus, ~a hundred large files (cluster-scale),
* dataset D: a single small file with moderate redundancy,
* dataset E: a single very large, highly repetitive file (bibliography
  records share field templates).

Scale is controlled by a single ``scale`` multiplier so tests can use
tiny corpora while benchmarks use larger ones.  The paper-scale
statistics are preserved in :class:`DatasetSpec` metadata so benchmark
reports can print both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data.corpus import Corpus, Document

__all__ = [
    "DatasetSpec",
    "DATASET_SPECS",
    "SyntheticCorpusGenerator",
    "generate_dataset",
    "list_datasets",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Structural description of one of the paper's datasets.

    The ``paper_*`` fields record the original Table II statistics; the
    remaining fields parameterize the synthetic analogue at ``scale=1.0``.
    """

    key: str
    description: str
    # Paper-scale metadata (Table II).
    paper_size: str
    paper_files: int
    paper_rules: int
    paper_vocabulary: int
    # Synthetic analogue parameters at scale=1.0.
    num_files: int
    tokens_per_file: int
    vocabulary_size: int
    phrase_pool_size: int
    phrase_length: int
    redundancy: float
    zipf_exponent: float = 1.2
    # Whether the paper evaluates this dataset on the 10-node cluster.
    cluster_baseline: bool = False

    def scaled(self, scale: float) -> "DatasetSpec":
        """Return a copy with token volume scaled by ``scale``.

        File count is scaled for the many-file dataset (A) so that the
        "many tiny files" signature is kept without exploding runtime;
        for the few-file datasets only the per-file length scales.
        """
        if scale == 1.0:
            return self
        num_files = self.num_files
        tokens_per_file = self.tokens_per_file
        if self.num_files >= 64:
            num_files = max(8, int(round(self.num_files * scale)))
        else:
            tokens_per_file = max(64, int(round(self.tokens_per_file * scale)))
        vocabulary = max(32, int(round(self.vocabulary_size * min(1.0, scale * 1.5))))
        phrases = max(8, int(round(self.phrase_pool_size * min(1.0, scale * 1.5))))
        return DatasetSpec(
            key=self.key,
            description=self.description,
            paper_size=self.paper_size,
            paper_files=self.paper_files,
            paper_rules=self.paper_rules,
            paper_vocabulary=self.paper_vocabulary,
            num_files=num_files,
            tokens_per_file=tokens_per_file,
            vocabulary_size=vocabulary,
            phrase_pool_size=phrases,
            phrase_length=self.phrase_length,
            redundancy=self.redundancy,
            zipf_exponent=self.zipf_exponent,
            cluster_baseline=self.cluster_baseline,
        )


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "A": DatasetSpec(
        key="A",
        description="NSFRAA analogue: many small abstract files with shared boilerplate",
        paper_size="580MB",
        paper_files=134_631,
        paper_rules=2_771_880,
        paper_vocabulary=1_864_902,
        num_files=220,
        tokens_per_file=160,
        vocabulary_size=2_400,
        phrase_pool_size=120,
        phrase_length=9,
        redundancy=0.82,
    ),
    "B": DatasetSpec(
        key="B",
        description="Small Wikipedia analogue: 4 large internally-redundant documents",
        paper_size="2.1GB",
        paper_files=4,
        paper_rules=2_095_573,
        paper_vocabulary=6_370_437,
        num_files=4,
        tokens_per_file=14_000,
        vocabulary_size=4_000,
        phrase_pool_size=280,
        phrase_length=11,
        redundancy=0.85,
    ),
    "C": DatasetSpec(
        key="C",
        description="Large Wikipedia analogue: ~100 large documents (cluster-scale)",
        paper_size="50GB",
        paper_files=109,
        paper_rules=57_394_616,
        paper_vocabulary=99_239_057,
        num_files=60,
        tokens_per_file=2_400,
        vocabulary_size=6_000,
        phrase_pool_size=380,
        phrase_length=11,
        redundancy=0.82,
        cluster_baseline=True,
    ),
    "D": DatasetSpec(
        key="D",
        description="Yelp COVID-19 analogue: a single small semi-structured file",
        paper_size="62MB",
        paper_files=1,
        paper_rules=36_882,
        paper_vocabulary=240_552,
        num_files=1,
        tokens_per_file=9_000,
        vocabulary_size=1_400,
        phrase_pool_size=110,
        phrase_length=8,
        redundancy=0.78,
    ),
    "E": DatasetSpec(
        key="E",
        description="DBLP analogue: a single very large highly-templated file",
        paper_size="2.9GB",
        paper_files=1,
        paper_rules=8_821_630,
        paper_vocabulary=23_959_913,
        num_files=1,
        tokens_per_file=40_000,
        vocabulary_size=5_000,
        phrase_pool_size=240,
        phrase_length=10,
        redundancy=0.9,
    ),
}


def list_datasets() -> List[str]:
    """Return the dataset keys in evaluation order (A..E)."""
    return sorted(DATASET_SPECS)


class SyntheticCorpusGenerator:
    """Generate a deterministic synthetic corpus from a :class:`DatasetSpec`.

    Generation model
    ----------------
    A vocabulary of ``vocabulary_size`` words is drawn once; word picks
    follow a Zipf-like distribution (real text is heavy-tailed, and this
    is what makes dictionary encoding and grammar rules profitable).  A
    pool of ``phrase_pool_size`` multi-word phrases is built from the
    vocabulary; documents are then composed of phrases (with probability
    ``redundancy``) interleaved with independently drawn words.  Repeated
    phrases across and within documents are what Sequitur folds into
    shared grammar rules, mirroring the boilerplate/templates present in
    the paper's corpora.
    """

    def __init__(self, spec: DatasetSpec, seed: int = 2021) -> None:
        self.spec = spec
        self.seed = seed
        self._rng = np.random.RandomState(seed + (hash(spec.key) % 1000))
        self._vocabulary = self._build_vocabulary()
        self._phrases = self._build_phrase_pool()

    # -- internals -----------------------------------------------------------
    def _build_vocabulary(self) -> List[str]:
        return [f"w{index}" for index in range(self.spec.vocabulary_size)]

    def _zipf_word_indices(self, count: int) -> np.ndarray:
        """Draw ``count`` word indices with a Zipf-like rank distribution."""
        if not hasattr(self, "_zipf_cdf"):
            ranks = np.arange(1, self.spec.vocabulary_size + 1, dtype=np.float64)
            weights = 1.0 / np.power(ranks, self.spec.zipf_exponent)
            self._zipf_cdf = np.cumsum(weights / weights.sum())
        draws = self._rng.random_sample(count)
        return np.searchsorted(self._zipf_cdf, draws, side="left")

    def _build_phrase_pool(self) -> List[List[str]]:
        phrases: List[List[str]] = []
        for _ in range(self.spec.phrase_pool_size):
            length = max(
                2, int(self._rng.poisson(self.spec.phrase_length)) or self.spec.phrase_length
            )
            indices = self._zipf_word_indices(length)
            phrases.append([self._vocabulary[i] for i in indices])
        return phrases

    def _generate_document_tokens(self, target_tokens: int) -> List[str]:
        tokens: List[str] = []
        while len(tokens) < target_tokens:
            if self._rng.random_sample() < self.spec.redundancy:
                phrase = self._phrases[self._rng.randint(len(self._phrases))]
                tokens.extend(phrase)
            else:
                run = 1 + int(self._rng.randint(4))
                indices = self._zipf_word_indices(run)
                tokens.extend(self._vocabulary[i] for i in indices)
        return tokens[:target_tokens]

    # -- public API ------------------------------------------------------------
    def generate(self) -> Corpus:
        """Generate the corpus (deterministic for a given spec and seed)."""
        documents: List[Document] = []
        for file_index in range(self.spec.num_files):
            # Vary file lengths a little so rules are not perfectly uniform.
            jitter = 0.6 + 0.8 * self._rng.random_sample()
            target = max(16, int(self.spec.tokens_per_file * jitter))
            tokens = self._generate_document_tokens(target)
            documents.append(
                Document.from_tokens(f"{self.spec.key.lower()}_file_{file_index:05d}", tokens)
            )
        return Corpus(documents, name=f"dataset_{self.spec.key}")


def generate_dataset(
    key: str,
    scale: float = 1.0,
    seed: int = 2021,
    spec_override: Optional[DatasetSpec] = None,
) -> Corpus:
    """Generate the synthetic analogue of paper dataset ``key`` (A..E).

    Parameters
    ----------
    key:
        Dataset key, one of ``"A"`` .. ``"E"``.
    scale:
        Token-volume multiplier relative to the default analogue size.
        Tests use small scales (e.g. ``0.05``); benchmarks use ``1.0``.
    seed:
        Seed for the deterministic generator.
    spec_override:
        Use a fully custom :class:`DatasetSpec` instead of the registry.
    """
    if spec_override is not None:
        spec = spec_override
    else:
        if key not in DATASET_SPECS:
            raise KeyError(f"unknown dataset {key!r}; expected one of {list_datasets()}")
        spec = DATASET_SPECS[key].scaled(scale)
    return SyntheticCorpusGenerator(spec, seed=seed).generate()
