"""Corpus model and synthetic dataset generators.

The paper evaluates five real-world corpora (NSFRAA, two Wikipedia
collections, Yelp COVID-19, DBLP).  Those corpora are not available
offline, so this package provides deterministic synthetic generators
that reproduce each dataset's *structural* signature (file count,
relative size, vocabulary growth, redundancy) at laptop scale.  See
``DESIGN.md`` section 2 for the substitution rationale.
"""

from repro.data.corpus import Corpus, Document, tokenize
from repro.data.generators import (
    DATASET_SPECS,
    DatasetSpec,
    SyntheticCorpusGenerator,
    generate_dataset,
    list_datasets,
)
from repro.data.loaders import load_corpus_dir, save_corpus_dir

__all__ = [
    "Corpus",
    "Document",
    "tokenize",
    "DatasetSpec",
    "DATASET_SPECS",
    "SyntheticCorpusGenerator",
    "generate_dataset",
    "list_datasets",
    "load_corpus_dir",
    "save_corpus_dir",
]
