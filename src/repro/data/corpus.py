"""Document and corpus model used throughout the library.

A :class:`Corpus` is an ordered collection of :class:`Document` objects.
TADOC compression concatenates the documents' token streams, separated
by unique splitter symbols, so document order is meaningful and is
preserved everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

__all__ = ["Document", "Corpus", "tokenize"]


def tokenize(text: str) -> List[str]:
    """Split ``text`` into word tokens.

    TADOC operates on word granularity.  The paper (and the original
    CompressDirect implementation) uses whitespace tokenization after
    lower-casing; punctuation attached to words is kept as part of the
    word, which is what we do here as well.
    """
    return text.lower().split()


@dataclass
class Document:
    """A single input file.

    Parameters
    ----------
    name:
        File name, unique within a corpus.
    text:
        Raw text content.  The token view is computed lazily and cached.
    """

    name: str
    text: str
    _tokens: Optional[List[str]] = field(default=None, repr=False, compare=False)

    @property
    def tokens(self) -> List[str]:
        """Word tokens of the document (cached)."""
        if self._tokens is None:
            self._tokens = tokenize(self.text)
        return self._tokens

    @property
    def num_tokens(self) -> int:
        return len(self.tokens)

    @property
    def size_bytes(self) -> int:
        """Size of the raw text in bytes (UTF-8)."""
        return len(self.text.encode("utf-8"))

    @classmethod
    def from_tokens(cls, name: str, tokens: Sequence[str]) -> "Document":
        """Build a document whose text is the space-joined tokens."""
        token_list = list(tokens)
        doc = cls(name=name, text=" ".join(token_list))
        doc._tokens = token_list
        return doc


class Corpus:
    """An ordered, named collection of documents."""

    def __init__(self, documents: Iterable[Document], name: str = "corpus") -> None:
        self.name = name
        self.documents: List[Document] = list(documents)
        names = [d.name for d in self.documents]
        if len(names) != len(set(names)):
            raise ValueError("document names within a corpus must be unique")

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    def __getitem__(self, index: int) -> Document:
        return self.documents[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Corpus):
            return NotImplemented
        return [(d.name, d.tokens) for d in self.documents] == [
            (d.name, d.tokens) for d in other.documents
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Corpus(name={self.name!r}, files={len(self.documents)}, "
            f"tokens={self.num_tokens})"
        )

    # -- derived properties --------------------------------------------------
    @property
    def file_names(self) -> List[str]:
        return [d.name for d in self.documents]

    @property
    def num_tokens(self) -> int:
        return sum(d.num_tokens for d in self.documents)

    @property
    def size_bytes(self) -> int:
        return sum(d.size_bytes for d in self.documents)

    @property
    def vocabulary(self) -> Dict[str, int]:
        """Mapping of distinct words to their corpus-wide frequency."""
        vocab: Dict[str, int] = {}
        for doc in self.documents:
            for token in doc.tokens:
                vocab[token] = vocab.get(token, 0) + 1
        return vocab

    @property
    def vocabulary_size(self) -> int:
        seen = set()
        for doc in self.documents:
            seen.update(doc.tokens)
        return len(seen)

    def document_by_name(self, name: str) -> Document:
        for doc in self.documents:
            if doc.name == name:
                return doc
        raise KeyError(name)

    def token_streams(self) -> Dict[str, List[str]]:
        """Mapping ``file name -> token list`` (used by reference analytics)."""
        return {d.name: d.tokens for d in self.documents}

    @classmethod
    def from_texts(cls, texts: Dict[str, str], name: str = "corpus") -> "Corpus":
        """Build a corpus from a ``{file name: text}`` mapping (ordered)."""
        return cls([Document(n, t) for n, t in texts.items()], name=name)

    @classmethod
    def from_token_streams(
        cls, streams: Dict[str, Sequence[str]], name: str = "corpus"
    ) -> "Corpus":
        """Build a corpus from a ``{file name: tokens}`` mapping (ordered)."""
        return cls(
            [Document.from_tokens(n, toks) for n, toks in streams.items()], name=name
        )
