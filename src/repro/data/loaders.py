"""Load and save corpora as plain text directories.

A corpus directory contains one ``*.txt`` file per document plus an
optional ``_order.txt`` manifest listing document order (one file name
per line).  Without a manifest, files are loaded in sorted-name order.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Union

from repro.data.corpus import Corpus, Document

__all__ = ["load_corpus_dir", "save_corpus_dir"]

_MANIFEST_NAME = "_order.txt"


def save_corpus_dir(corpus: Corpus, directory: Union[str, Path]) -> Path:
    """Write ``corpus`` to ``directory`` (created if missing).

    Returns the directory path.  Document names are used as file names
    with a ``.txt`` suffix appended when missing.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    order: List[str] = []
    for doc in corpus:
        file_name = doc.name if doc.name.endswith(".txt") else f"{doc.name}.txt"
        (path / file_name).write_text(doc.text, encoding="utf-8")
        # The manifest records the *document* names so loading restores them
        # exactly, whether or not they already carried a .txt suffix.
        order.append(doc.name)
    (path / _MANIFEST_NAME).write_text("\n".join(order) + "\n", encoding="utf-8")
    return path


def load_corpus_dir(directory: Union[str, Path], name: str = "corpus") -> Corpus:
    """Load a corpus previously written by :func:`save_corpus_dir`.

    Any directory of ``*.txt`` files works; the manifest is optional.
    """
    path = Path(directory)
    if not path.is_dir():
        raise FileNotFoundError(f"corpus directory not found: {path}")
    manifest = path / _MANIFEST_NAME
    documents = []
    if manifest.exists():
        doc_names = [line.strip() for line in manifest.read_text().splitlines() if line.strip()]
        for doc_name in doc_names:
            file_name = doc_name if doc_name.endswith(".txt") else f"{doc_name}.txt"
            text = (path / file_name).read_text(encoding="utf-8")
            documents.append(Document(doc_name, text))
    else:
        file_names = sorted(entry for entry in os.listdir(path) if entry.endswith(".txt"))
        for file_name in file_names:
            text = (path / file_name).read_text(encoding="utf-8")
            documents.append(Document(file_name[:-4], text))
    return Corpus(documents, name=name)
