"""GPU-accelerated analytics on *uncompressed* data (paper §VI-E).

The paper notes that no public GPU implementation of the six tasks
existed, so the authors wrote their own efficient uncompressed GPU
analytics to compare against; G-TADOC still wins by about 2x because it
touches the (much smaller) grammar instead of the full token stream.

This baseline mirrors that comparator: the functional result comes from
the uncompressed reference implementation, and the GPU work record is
built from the token volume — chunks of tokens per thread, regular
(well-coalesced) memory traffic, and atomic updates into the global
result table whose conflict rate follows the corpus' word skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analytics.base import SEQUENCE_LENGTH_DEFAULT, Task, TaskResult
from repro.analytics.reference import UncompressedAnalytics
from repro.data.corpus import Corpus
from repro.gpusim.device import GPUDevice
from repro.perf import workcosts as wc
from repro.perf.counters import GpuRunRecord

__all__ = ["GpuUncompressedAnalytics", "GpuUncompressedRunResult"]

#: Tokens processed by one GPU thread (a typical grid-stride chunk).
_TOKENS_PER_THREAD = 128
#: Mild warp imbalance of chunked text processing (uneven line lengths).
_WARP_IMBALANCE = 1.15


@dataclass
class GpuUncompressedRunResult:
    """Result and GPU work record of one uncompressed-analytics run."""

    task: Task
    result: TaskResult
    record: GpuRunRecord


class GpuUncompressedAnalytics:
    """The six analytics tasks over raw tokens, priced on a GPU model."""

    def __init__(
        self,
        corpus: Corpus,
        sequence_length: int = SEQUENCE_LENGTH_DEFAULT,
        needs_pcie_transfer: bool = False,
    ) -> None:
        self.corpus = corpus
        self.sequence_length = sequence_length
        self.needs_pcie_transfer = needs_pcie_transfer
        self._reference = UncompressedAnalytics(corpus, sequence_length=sequence_length)

    # -- work-record construction ----------------------------------------------------------
    def _launch_scan(
        self, device: GPUDevice, name: str, tokens: int, ops_per_token: float, atomic_fraction: float
    ) -> None:
        num_threads = max(1, (tokens + _TOKENS_PER_THREAD - 1) // _TOKENS_PER_THREAD)
        total_ops = tokens * ops_per_token
        atomic_ops = tokens * atomic_fraction
        distinct = max(1, self.corpus.vocabulary_size)
        # Zipf-skewed words mean many threads hit the same hot entries.
        conflicts = max(0.0, atomic_ops - distinct) * 0.15
        device.launch_modelled(
            name,
            num_threads,
            warp_serial_ops=(total_ops / 32.0) * _WARP_IMBALANCE,
            total_thread_ops=total_ops,
            memory_bytes=tokens * wc.TOKEN_SCAN_BYTES,
            atomic_ops=atomic_ops,
            atomic_conflicts=conflicts,
        )

    def _launch_sort(self, device: GPUDevice, name: str, keys: int) -> None:
        keys = max(1, keys)
        total_ops = wc.SORT_OPS_PER_KEY * keys * max(1.0, float(int(keys).bit_length()))
        num_threads = max(1, keys // 4)
        device.launch_modelled(
            name,
            num_threads,
            warp_serial_ops=total_ops / 32.0,
            total_thread_ops=total_ops,
            memory_bytes=keys * 16.0,
        )

    def _build_record(self, task: Task) -> GpuRunRecord:
        record = GpuRunRecord()
        device = GPUDevice(record=record)
        tokens = self.corpus.num_tokens
        vocabulary = self.corpus.vocabulary_size
        if self.needs_pcie_transfer:
            record.pcie_bytes += float(self.corpus.size_bytes)

        self._launch_scan(
            device, "tokenizeKernel", tokens, ops_per_token=wc.TOKEN_SCAN_OPS, atomic_fraction=0.0
        )
        if task in (Task.WORD_COUNT, Task.SORT):
            self._launch_scan(
                device, "wordCountKernel", tokens, wc.HASH_UPDATE_OPS, atomic_fraction=1.0
            )
            if task is Task.SORT:
                self._launch_sort(device, "sortKernel", vocabulary)
        elif task in (Task.TERM_VECTOR, Task.INVERTED_INDEX, Task.RANKED_INVERTED_INDEX):
            self._launch_scan(
                device, "perFileCountKernel", tokens, wc.HASH_UPDATE_OPS, atomic_fraction=1.0
            )
            entries = sum(len(set(doc.tokens)) for doc in self.corpus)
            if task is Task.RANKED_INVERTED_INDEX:
                self._launch_sort(device, "rankKernel", entries)
            else:
                self._launch_sort(device, "gatherKernel", max(1, entries // 4))
        elif task is Task.SEQUENCE_COUNT:
            windows = max(1, tokens - len(self.corpus) * (self.sequence_length - 1))
            self._launch_scan(
                device,
                "sequenceCountKernel",
                windows,
                wc.TOKEN_SCAN_OPS * self.sequence_length,
                atomic_fraction=1.0,
            )
        elif task is Task.RELATIONAL:
            # Decompress-then-scan: every query re-parses the full token
            # stream into rows, filters them, and aggregates — four
            # launches per query, with no state to amortize across
            # repeats (contrast the compressed path's two warm kernels).
            num_rows = max(1, len(self.corpus))
            self._launch_scan(
                device, "parseRowsKernel", tokens, wc.TOKEN_SCAN_OPS, atomic_fraction=0.0
            )
            self._launch_scan(
                device,
                "filterRowsKernel",
                num_rows,
                wc.MASK_CHECK_OPS + wc.WEIGHT_UPDATE_OPS,
                atomic_fraction=0.0,
            )
            self._launch_scan(
                device, "aggregateKernel", num_rows, wc.HASH_UPDATE_OPS, atomic_fraction=1.0
            )
        record.host_counter.charge(compute_ops=1_000.0, memory_bytes=4_096.0)
        return record

    # -- public API ------------------------------------------------------------------------------
    def run(self, task: Task, *, relational=None) -> GpuUncompressedRunResult:
        """Run ``task`` on the raw tokens; record the GPU work it implies."""
        if isinstance(task, str):
            task = Task.from_name(task)
        result = self._reference.run(task, relational=relational)
        record = self._build_record(task)
        return GpuUncompressedRunResult(task=task, result=result, record=record)

    def run_all(self) -> Dict[Task, GpuUncompressedRunResult]:
        return {task: self.run(task) for task in Task.all()}
