"""Sequential CPU TADOC (the paper's baseline, reference [2]).

This is a complete single-threaded implementation of TADOC's analytics
over the compressed DAG, with the same two phases the paper times:

* **initialization** — building the per-rule data structures (local
  word tables, sub-rule adjacency, in/out edge counts) by scanning
  every rule body once, sequentially;
* **DAG traversal** — the per-task traversal.  Word count and sort use
  the top-down weight propagation of Figure 2; the file-sensitive tasks
  build subtree-complete local tables bottom-up and assemble per-file
  results from the root's file segments; the sequence-sensitive tasks
  (sequence count, ranked inverted index) follow the recursive
  expansion approach the paper attributes to [2], whose cost is close
  to scanning the uncompressed text — which is precisely why G-TADOC's
  speedups on those two tasks are an order of magnitude larger.

The engine counts its work in a :class:`~repro.perf.counters.CostCounter`
per phase; modelled seconds come from
:class:`~repro.perf.cost_model.CpuCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analytics.base import SEQUENCE_LENGTH_DEFAULT, Task, TaskResult, normalize_result
from repro.analytics.derive import (
    decode_per_file_counts,
    decode_sequence_counts,
    decode_word_counts,
    per_file_counts_to_inverted_index,
    per_file_counts_to_ranked_inverted_index,
    per_file_counts_to_term_vector,
    word_count_to_sort,
)
from repro.compression.compressor import CompressedCorpus
from repro.core.layout import DeviceRuleLayout
from repro.perf import workcosts as wc
from repro.perf.counters import CostCounter

__all__ = ["CpuTadoc", "CpuTadocRunResult"]


@dataclass
class CpuTadocRunResult:
    """Result and per-phase work of one sequential TADOC run."""

    task: Task
    result: TaskResult
    init_counter: CostCounter
    traversal_counter: CostCounter

    @property
    def total_counter(self) -> CostCounter:
        return self.init_counter + self.traversal_counter


class CpuTadoc:
    """Sequential TADOC analytics over a compressed corpus."""

    def __init__(
        self,
        compressed: CompressedCorpus,
        sequence_length: int = SEQUENCE_LENGTH_DEFAULT,
    ) -> None:
        self.compressed = compressed
        self.sequence_length = sequence_length
        self._layout: Optional[DeviceRuleLayout] = None

    # -- shared structures ---------------------------------------------------------------
    @property
    def layout(self) -> DeviceRuleLayout:
        if self._layout is None:
            self._layout = DeviceRuleLayout.from_compressed(self.compressed)
        return self._layout

    def _init_phase(self) -> CostCounter:
        """Sequentially build the per-rule tables (counted, not re-executed)."""
        counter = CostCounter()
        layout = self.layout
        total_symbols = layout.total_symbols
        terminal_entries = sum(len(words) for words in layout.local_words)
        edge_entries = sum(len(children) for children in layout.subrules)
        counter.charge(
            compute_ops=wc.SYMBOL_VISIT_OPS * total_symbols
            + wc.EDGE_VISIT_OPS * edge_entries
            + 2.0 * terminal_entries,
            memory_bytes=wc.SYMBOL_VISIT_BYTES * total_symbols
            + wc.EDGE_VISIT_BYTES * edge_entries,
            # Registering every rule's local words into its table is a
            # hash-heavy part of the preparation; only a fraction of those
            # probes miss the caches during this mostly-sequential scan.
            hash_ops=0.3 * terminal_entries,
        )
        # Result containers and per-rule metadata.
        counter.charge(
            compute_ops=8.0 * layout.num_rules, memory_bytes=48.0 * layout.num_rules
        )
        return counter

    # -- traversal helpers ------------------------------------------------------------------
    def _rule_weights(self, counter: CostCounter) -> List[int]:
        """Top-down occurrence weights (Figure 2's propagation), sequentially."""
        layout = self.layout
        weights = list(layout.rule_weights)  # functional values
        edge_entries = sum(len(children) for children in layout.subrules)
        counter.charge(
            compute_ops=(wc.EDGE_VISIT_OPS + wc.WEIGHT_UPDATE_OPS) * edge_entries,
            memory_bytes=wc.EDGE_VISIT_BYTES * edge_entries,
            branch_ops=float(layout.num_rules),
        )
        return weights

    def _corpus_word_counts(self, counter: CostCounter) -> Dict[int, int]:
        layout = self.layout
        weights = self._rule_weights(counter)
        counts: Dict[int, int] = {}
        for rule_id in range(layout.num_rules):
            weight = weights[rule_id]
            if weight == 0:
                continue
            local = layout.local_words[rule_id]
            counter.charge(
                compute_ops=wc.SYMBOL_VISIT_OPS * len(local),
                memory_bytes=wc.SYMBOL_VISIT_BYTES * len(local),
                hash_ops=float(len(local)),
            )
            for word_id, count in local:
                counts[word_id] = counts.get(word_id, 0) + count * weight
        return counts

    def _per_file_counts(self, counter: CostCounter) -> List[Dict[int, int]]:
        """Per-file word counts via sequential top-down file-weight propagation.

        Every rule carries a small ``{file index: occurrences}`` table
        that its parents fill in; local words scaled by those weights
        give the per-file counts.  This is the single-pass scheme of [2]
        (Figure 2 generalised with file information).
        """
        layout = self.layout
        file_weights: List[Dict[int, int]] = [dict() for _ in range(layout.num_rules)]
        for file_index, per_file_freq in enumerate(layout.root_subrule_freq_per_file):
            for child, count in per_file_freq.items():
                counter.charge(compute_ops=wc.WEIGHT_UPDATE_OPS, memory_bytes=8.0)
                file_weights[child][file_index] = (
                    file_weights[child].get(file_index, 0) + count
                )
        for rule_id in self.compressed.dag.topological_order():
            if rule_id == 0:
                continue
            own = file_weights[rule_id]
            for child, frequency in layout.subrules[rule_id]:
                child_weights = file_weights[child]
                counter.charge(
                    compute_ops=wc.EDGE_VISIT_OPS,
                    memory_bytes=wc.EDGE_VISIT_BYTES,
                    hash_ops=float(len(own)),
                )
                for file_index, weight in own.items():
                    child_weights[file_index] = (
                        child_weights.get(file_index, 0) + frequency * weight
                    )

        per_file: List[Dict[int, int]] = [dict() for _ in range(layout.num_files)]
        for file_index, root_words in enumerate(layout.root_words_per_file):
            counter.charge(hash_ops=float(len(root_words)))
            result = per_file[file_index]
            for word_id, count in root_words.items():
                result[word_id] = result.get(word_id, 0) + count
        for rule_id in range(1, layout.num_rules):
            weights = file_weights[rule_id]
            if not weights:
                continue
            local = layout.local_words[rule_id]
            counter.charge(
                compute_ops=wc.SYMBOL_VISIT_OPS * len(local),
                memory_bytes=wc.SYMBOL_VISIT_BYTES * len(local),
                hash_ops=float(len(local) * len(weights)),
            )
            for word_id, count in local:
                for file_index, weight in weights.items():
                    table = per_file[file_index]
                    table[word_id] = table.get(word_id, 0) + count * weight
        return per_file

    def _file_index_range(self, file_indices: Optional[Tuple[int, ...]]) -> List[int]:
        """The files a run touches: all of them, or the query's subset."""
        if file_indices is None:
            return list(range(self.layout.num_files))
        return list(file_indices)

    def _expand_file_ids(self, file_index: int, counter: CostCounter) -> List[int]:
        """Recursive (DFS) expansion of one file, as [2] does for sequence tasks."""
        layout = self.layout
        start, end = layout.root_segments[file_index]
        output: List[int] = []
        stack: List[int] = list(reversed(layout.root_symbols[start:end]))
        from repro.compression.grammar import is_rule_ref, rule_ref_id

        while stack:
            symbol = stack.pop()
            counter.charge(compute_ops=wc.SYMBOL_VISIT_OPS, memory_bytes=wc.SYMBOL_VISIT_BYTES)
            if is_rule_ref(symbol):
                stack.extend(reversed(layout.rule_bodies[rule_ref_id(symbol)]))
            else:
                output.append(symbol)
        return output

    def _sequence_counts_by_expansion(
        self,
        counter: CostCounter,
        length: Optional[int] = None,
        file_indices: Optional[Tuple[int, ...]] = None,
    ) -> Dict[Tuple[int, ...], int]:
        length = self.sequence_length if length is None else length
        counts: Dict[Tuple[int, ...], int] = {}
        for file_index in self._file_index_range(file_indices):
            ids = self._expand_file_ids(file_index, counter)
            windows = max(0, len(ids) - length + 1)
            counter.charge(
                compute_ops=wc.TOKEN_SCAN_OPS * windows,
                memory_bytes=wc.TOKEN_SCAN_BYTES * windows,
                hash_ops=float(windows),
            )
            for start in range(windows):
                key = tuple(ids[start : start + length])
                counts[key] = counts.get(key, 0) + 1
        return counts

    def relational_rows(
        self,
        schema,
        counter: CostCounter,
        file_indices: Optional[Tuple[int, ...]] = None,
    ) -> List["rc.RowValues"]:
        """Typed per-file rows by recursive expansion ([2]'s approach).

        The sequential baseline expands every considered file to its
        word ids and parses the row with the shared monoid fold —
        bit-identical values to the compressed-domain kernels, at a cost
        proportional to the decompressed text.
        """
        from repro.relational import compute as rc

        dictionary = self.compressed.dictionary
        rows: List[rc.RowValues] = []
        for file_index in self._file_index_range(file_indices):
            ids = self._expand_file_ids(file_index, counter)
            counter.charge(
                compute_ops=wc.TOKEN_SCAN_OPS * len(ids),
                memory_bytes=wc.TOKEN_SCAN_BYTES * len(ids),
                hash_ops=float(len(schema.fields)),
            )
            tokens = [dictionary.decode(word_id) for word_id in ids]
            rows.append(rc.row_from_tokens(tokens, schema))
        return rows

    def _per_file_counts_by_expansion(
        self, counter: CostCounter, file_indices: Optional[Tuple[int, ...]] = None
    ) -> List[Dict[int, int]]:
        per_file: List[Dict[int, int]] = []
        for file_index in self._file_index_range(file_indices):
            ids = self._expand_file_ids(file_index, counter)
            counter.charge(
                compute_ops=wc.TOKEN_SCAN_OPS * len(ids),
                memory_bytes=wc.TOKEN_SCAN_BYTES * len(ids),
                hash_ops=float(len(ids)),
            )
            counts: Dict[int, int] = {}
            for word_id in ids:
                counts[word_id] = counts.get(word_id, 0) + 1
            per_file.append(counts)
        return per_file

    # -- public API --------------------------------------------------------------------------
    def run(
        self,
        task: Task,
        *,
        sequence_length: Optional[int] = None,
        file_indices: Optional[Tuple[int, ...]] = None,
        relational=None,
    ) -> CpuTadocRunResult:
        """Run ``task`` sequentially on the compressed corpus.

        ``sequence_length`` overrides the engine default for this call;
        ``file_indices`` restricts the result to a subset of files (the
        expansion-based tasks then only expand those files);
        ``relational`` is the query spec for :attr:`Task.RELATIONAL`.
        """
        if isinstance(task, str):
            task = Task.from_name(task)
        if file_indices is not None:
            file_indices = tuple(sorted(set(file_indices)))
        init_counter = self._init_phase()
        traversal_counter = CostCounter()
        dictionary = self.compressed.dictionary
        file_names = self.compressed.file_names
        if file_indices is None:
            subset_names = list(file_names)
        else:
            subset_names = [file_names[index] for index in file_indices]

        if task in (Task.WORD_COUNT, Task.SORT):
            if file_indices is None:
                counts = self._corpus_word_counts(traversal_counter)
            else:
                per_file = self._per_file_counts(traversal_counter)
                counts = {}
                for file_index in file_indices:
                    for word_id, count in per_file[file_index].items():
                        counts[word_id] = counts.get(word_id, 0) + count
            word_counts = decode_word_counts(counts, dictionary)
            if task is Task.SORT:
                keys = max(1, len(word_counts))
                traversal_counter.charge(
                    compute_ops=wc.SORT_OPS_PER_KEY * keys * max(1.0, float(int(keys).bit_length()))
                )
                result: TaskResult = word_count_to_sort(word_counts)
            else:
                result = word_counts
        elif task in (Task.INVERTED_INDEX, Task.TERM_VECTOR):
            per_file = self._per_file_counts(traversal_counter)
            if file_indices is not None:
                per_file = [per_file[index] for index in file_indices]
            term_vector = decode_per_file_counts(per_file, subset_names, dictionary)
            if task is Task.TERM_VECTOR:
                result = per_file_counts_to_term_vector(term_vector)
            else:
                result = per_file_counts_to_inverted_index(term_vector)
        elif task is Task.RANKED_INVERTED_INDEX:
            # As characterised in the paper, [2] handles this task close to
            # the uncompressed implementation: per-file expansion + ranking.
            per_file = self._per_file_counts_by_expansion(
                traversal_counter, file_indices=file_indices
            )
            term_vector = decode_per_file_counts(per_file, subset_names, dictionary)
            entries = sum(len(counts) for counts in term_vector.values())
            traversal_counter.charge(
                compute_ops=wc.SORT_OPS_PER_KEY * max(1, entries) * 8.0
            )
            result = per_file_counts_to_ranked_inverted_index(term_vector)
        elif task is Task.SEQUENCE_COUNT:
            counts = self._sequence_counts_by_expansion(
                traversal_counter, length=sequence_length, file_indices=file_indices
            )
            result = decode_sequence_counts(counts, dictionary)
        elif task is Task.RELATIONAL:
            from repro.relational import compute as rc

            if relational is None:
                raise ValueError("the relational task needs a RelationalQuery spec")
            rows = self.relational_rows(
                relational.schema, traversal_counter, file_indices=file_indices
            )
            traversal_counter.charge(
                compute_ops=(wc.MASK_CHECK_OPS + wc.WEIGHT_UPDATE_OPS * len(relational.predicate))
                * len(rows),
                memory_bytes=wc.RESULT_ENTRY_BYTES * len(rows),
                hash_ops=float(len(rows)),
            )
            result = rc.execute_relational(rows, relational)
        else:  # pragma: no cover - exhaustive over Task
            raise ValueError(f"unknown task: {task!r}")

        return CpuTadocRunResult(
            task=task,
            result=normalize_result(task, result),
            init_counter=init_counter,
            traversal_counter=traversal_counter,
        )

    def run_all(self) -> Dict[Task, CpuTadocRunResult]:
        return {task: self.run(task) for task in Task.all()}
