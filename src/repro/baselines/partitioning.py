"""Corpus partitioning for coarse-grained TADOC parallelism.

Both the multi-threaded TADOC of [4] and the distributed baseline split
the input *by files* — each worker compresses and processes a disjoint
group of files, which is exactly why that parallelism is too coarse for
GPUs (the paper's Challenge 1).  Partitions are balanced by token count
using a greedy longest-first assignment.
"""

from __future__ import annotations

from typing import List

from repro.data.corpus import Corpus

__all__ = ["partition_corpus"]


def partition_corpus(corpus: Corpus, num_partitions: int) -> List[Corpus]:
    """Split ``corpus`` into at most ``num_partitions`` balanced sub-corpora.

    Documents keep their identity; empty partitions are dropped, so the
    result may contain fewer partitions than requested when the corpus
    has fewer files.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    documents = sorted(corpus.documents, key=lambda doc: doc.num_tokens, reverse=True)
    buckets: List[List] = [[] for _ in range(min(num_partitions, len(documents)) or 1)]
    loads = [0] * len(buckets)
    for document in documents:
        lightest = loads.index(min(loads))
        buckets[lightest].append(document)
        loads[lightest] += document.num_tokens
    partitions: List[Corpus] = []
    original_order = {doc.name: index for index, doc in enumerate(corpus.documents)}
    for bucket_index, bucket in enumerate(buckets):
        if not bucket:
            continue
        ordered = sorted(bucket, key=lambda doc: original_order[doc.name])
        partitions.append(Corpus(ordered, name=f"{corpus.name}_part{bucket_index}"))
    return partitions
