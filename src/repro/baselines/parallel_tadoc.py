"""Coarse-grained parallel CPU TADOC (reference [4] in the paper).

The corpus is partitioned by files, every partition is compressed and
processed independently by a sequential TADOC engine (one partition per
CPU thread), and partial results are merged.  The per-partition work
counters let the harness model the parallel execution time as the
slowest partition plus the merge — exactly the behaviour that makes
this design "too coarse" for a GPU's thousands of threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analytics.base import SEQUENCE_LENGTH_DEFAULT, Task, TaskResult, normalize_result
from repro.baselines.cpu_tadoc import CpuTadoc
from repro.baselines.merge import merge_partial_results, result_entry_count
from repro.baselines.partitioning import partition_corpus
from repro.compression.compressor import compress_corpus
from repro.data.corpus import Corpus
from repro.perf.counters import CostCounter

__all__ = ["ParallelCpuTadoc", "ParallelRunResult"]


@dataclass
class ParallelRunResult:
    """Result and per-partition work of one coarse-grained parallel run."""

    task: Task
    result: TaskResult
    partition_init_counters: List[CostCounter] = field(default_factory=list)
    partition_traversal_counters: List[CostCounter] = field(default_factory=list)
    merge_counter: CostCounter = field(default_factory=CostCounter)
    partition_result_entries: List[int] = field(default_factory=list)

    @property
    def num_partitions(self) -> int:
        return len(self.partition_traversal_counters)

    def partition_total_counters(self) -> List[CostCounter]:
        return [
            init + traversal
            for init, traversal in zip(
                self.partition_init_counters, self.partition_traversal_counters
            )
        ]


class ParallelCpuTadoc:
    """File-partitioned, thread-per-partition TADOC."""

    def __init__(
        self,
        corpus: Corpus,
        num_threads: int = 8,
        sequence_length: int = SEQUENCE_LENGTH_DEFAULT,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.corpus = corpus
        self.num_threads = num_threads
        self.sequence_length = sequence_length
        self._engines: Optional[List[CpuTadoc]] = None

    def _partition_engines(self) -> List[CpuTadoc]:
        """Compress every partition once and cache the per-partition engines."""
        if self._engines is None:
            partitions = partition_corpus(self.corpus, self.num_threads)
            self._engines = [
                CpuTadoc(compress_corpus(partition), sequence_length=self.sequence_length)
                for partition in partitions
            ]
        return self._engines

    def run(
        self,
        task: Task,
        *,
        sequence_length: Optional[int] = None,
        relational=None,
    ) -> ParallelRunResult:
        """Run ``task`` on every partition and merge the partial results.

        Relational queries merge at the *row* level: every partition
        parses its files' rows, the driver concatenates them and
        aggregates once, so float sums stay a single exactly-rounded
        ``fsum`` — bit-identical to the unpartitioned engines.
        """
        if isinstance(task, str):
            task = Task.from_name(task)
        engines = self._partition_engines()
        if task is Task.RELATIONAL:
            return self._run_relational(engines, relational)
        partials: List[TaskResult] = []
        outcome = ParallelRunResult(task=task, result={})
        for engine in engines:
            partition_run = engine.run(task, sequence_length=sequence_length)
            partials.append(partition_run.result)
            outcome.partition_init_counters.append(partition_run.init_counter)
            outcome.partition_traversal_counters.append(partition_run.traversal_counter)
            outcome.partition_result_entries.append(
                result_entry_count(task, partition_run.result)
            )
        merged = merge_partial_results(task, partials, outcome.merge_counter)
        outcome.result = normalize_result(task, merged)
        return outcome

    def _run_relational(self, engines: List[CpuTadoc], relational) -> ParallelRunResult:
        from repro.relational import compute as rc

        if relational is None:
            raise ValueError("the relational task needs a RelationalQuery spec")
        outcome = ParallelRunResult(task=Task.RELATIONAL, result=[])
        row_partials: List[List[rc.RowValues]] = []
        for engine in engines:
            traversal_counter = CostCounter()
            rows = engine.relational_rows(relational.schema, traversal_counter)
            row_partials.append(rows)
            outcome.partition_init_counters.append(engine._init_phase())
            outcome.partition_traversal_counters.append(traversal_counter)
            outcome.partition_result_entries.append(len(rows))
        merged_rows = rc.merge_row_partials(row_partials, outcome.merge_counter)
        result = rc.execute_relational(merged_rows, relational)
        outcome.merge_counter.charge(
            compute_ops=float(len(merged_rows)),
            memory_bytes=12.0 * rc.relational_result_entry_count(result),
            hash_ops=float(len(merged_rows)),
        )
        outcome.result = normalize_result(Task.RELATIONAL, result)
        return outcome

    def run_all(self) -> Dict[Task, ParallelRunResult]:
        return {task: self.run(task) for task in Task.all()}
