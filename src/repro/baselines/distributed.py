"""Distributed TADOC on a simulated Spark-style cluster.

This is the paper's baseline for dataset C: TADOC's coarse-grained
parallelism spread over a 10-node Amazon EC2 cluster (Table I).  The
corpus is partitioned by files, partitions are placed on nodes
round-robin, every node runs a real sequential TADOC engine on its
partitions, and partial results are shuffled to a driver for merging.
Per-node compute counters and the shuffle counter are returned so the
harness can price the run with
:class:`~repro.perf.cost_model.ClusterCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analytics.base import SEQUENCE_LENGTH_DEFAULT, Task, TaskResult, normalize_result
from repro.baselines.cpu_tadoc import CpuTadoc
from repro.baselines.merge import merge_partial_results, result_entry_count
from repro.baselines.partitioning import partition_corpus
from repro.cluster.simulator import ClusterSimulator, ClusterSpec, NodeExecution
from repro.compression.compressor import compress_corpus
from repro.data.corpus import Corpus
from repro.perf.counters import CostCounter

__all__ = ["DistributedTadoc", "DistributedRunResult"]


@dataclass
class DistributedRunResult:
    """Result and work accounting of one distributed TADOC run."""

    task: Task
    result: TaskResult
    #: Per-node compute work of the initialization phase (no shuffle).
    node_init_executions: List[NodeExecution] = field(default_factory=list)
    #: Per-node compute work of the traversal phase (result shuffle included).
    node_traversal_executions: List[NodeExecution] = field(default_factory=list)
    shuffle_counter: CostCounter = field(default_factory=CostCounter)
    merge_counter: CostCounter = field(default_factory=CostCounter)

    @property
    def node_executions(self) -> List[NodeExecution]:
        """Per-node totals (initialization + traversal), for convenience."""
        totals: List[NodeExecution] = []
        for init, traversal in zip(self.node_init_executions, self.node_traversal_executions):
            combined = NodeExecution(
                node_index=init.node_index,
                partition_indices=list(init.partition_indices),
            )
            combined.counter.merge(init.counter)
            combined.counter.merge(traversal.counter)
            totals.append(combined)
        return totals

    def per_node_counters(self) -> List[CostCounter]:
        return [execution.counter for execution in self.node_executions]

    def per_node_init_counters(self) -> List[CostCounter]:
        return [execution.counter for execution in self.node_init_executions]

    def per_node_traversal_counters(self) -> List[CostCounter]:
        return [execution.counter for execution in self.node_traversal_executions]


class DistributedTadoc:
    """Coarse-grained TADOC across a simulated multi-node cluster."""

    def __init__(
        self,
        corpus: Corpus,
        cluster: Optional[ClusterSpec] = None,
        partitions_per_node: int = 2,
        sequence_length: int = SEQUENCE_LENGTH_DEFAULT,
    ) -> None:
        self.corpus = corpus
        self.cluster = cluster or ClusterSpec()
        self.partitions_per_node = max(1, partitions_per_node)
        self.sequence_length = sequence_length
        self._engines: Optional[List[CpuTadoc]] = None

    def _partition_engines(self) -> List[CpuTadoc]:
        if self._engines is None:
            num_partitions = self.cluster.num_nodes * self.partitions_per_node
            partitions = partition_corpus(self.corpus, num_partitions)
            self._engines = [
                CpuTadoc(compress_corpus(partition), sequence_length=self.sequence_length)
                for partition in partitions
            ]
        return self._engines

    def run(
        self,
        task: Task,
        *,
        sequence_length: Optional[int] = None,
        relational=None,
    ) -> DistributedRunResult:
        """Run ``task`` across the cluster and merge the partial results.

        Relational partials are the parsed *rows* (shuffled to the
        driver, which filters/aggregates once), keeping the result
        bit-identical to the unpartitioned engines.
        """
        if isinstance(task, str):
            task = Task.from_name(task)
        engines = self._partition_engines()
        simulator = ClusterSimulator(self.cluster)
        if task is Task.RELATIONAL:
            return self._run_relational(engines, simulator, relational)

        partials: List[TaskResult] = []
        init_counters: List[CostCounter] = []
        traversal_counters: List[CostCounter] = []
        partition_entries: List[int] = []
        for engine in engines:
            partition_run = engine.run(task, sequence_length=sequence_length)
            partials.append(partition_run.result)
            init_counters.append(partition_run.init_counter)
            traversal_counters.append(partition_run.traversal_counter)
            partition_entries.append(result_entry_count(task, partition_run.result))

        init_executions = simulator.execute(init_counters, [0] * len(init_counters))
        traversal_executions = simulator.execute(traversal_counters, partition_entries)
        shuffle = simulator.shuffle_counter(traversal_executions)

        merge_counter = CostCounter()
        merged = merge_partial_results(task, partials, merge_counter)
        return DistributedRunResult(
            task=task,
            result=normalize_result(task, merged),
            node_init_executions=init_executions,
            node_traversal_executions=traversal_executions,
            shuffle_counter=shuffle,
            merge_counter=merge_counter,
        )

    def _run_relational(
        self, engines: List[CpuTadoc], simulator: ClusterSimulator, relational
    ) -> DistributedRunResult:
        from repro.relational import compute as rc

        if relational is None:
            raise ValueError("the relational task needs a RelationalQuery spec")
        row_partials: List[List[rc.RowValues]] = []
        init_counters: List[CostCounter] = []
        traversal_counters: List[CostCounter] = []
        partition_entries: List[int] = []
        for engine in engines:
            traversal_counter = CostCounter()
            rows = engine.relational_rows(relational.schema, traversal_counter)
            row_partials.append(rows)
            init_counters.append(engine._init_phase())
            traversal_counters.append(traversal_counter)
            partition_entries.append(len(rows))

        init_executions = simulator.execute(init_counters, [0] * len(init_counters))
        traversal_executions = simulator.execute(traversal_counters, partition_entries)
        shuffle = simulator.shuffle_counter(traversal_executions)

        merge_counter = CostCounter()
        merged_rows = rc.merge_row_partials(row_partials, merge_counter)
        result = rc.execute_relational(merged_rows, relational)
        merge_counter.charge(
            compute_ops=float(len(merged_rows)),
            memory_bytes=12.0 * rc.relational_result_entry_count(result),
            hash_ops=float(len(merged_rows)),
        )
        return DistributedRunResult(
            task=Task.RELATIONAL,
            result=normalize_result(Task.RELATIONAL, result),
            node_init_executions=init_executions,
            node_traversal_executions=traversal_executions,
            shuffle_counter=shuffle,
            merge_counter=merge_counter,
        )

    def run_all(self) -> Dict[Task, DistributedRunResult]:
        return {task: self.run(task) for task in Task.all()}
