"""Merging of per-partition task results (coarse-grained TADOC).

Both the coarse-grained parallel TADOC [4] and the distributed TADOC
baseline split the corpus by files, process every partition
independently and then merge partial results.  The merge semantics per
task live here, together with the work accounting of the merge stage.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analytics.base import Task, TaskResult, normalize_result
from repro.perf import workcosts as wc
from repro.perf.counters import CostCounter

__all__ = ["merge_partial_results", "result_entry_count"]


def result_entry_count(task: Task, result: TaskResult) -> int:
    """Number of entries a partial result contributes to the shuffle."""
    if task is Task.SORT:
        return len(result)  # type: ignore[arg-type]
    if task is Task.TERM_VECTOR:
        return sum(len(counts) for counts in result.values())  # type: ignore[union-attr]
    if task in (Task.INVERTED_INDEX, Task.RANKED_INVERTED_INDEX):
        return sum(len(entries) for entries in result.values())  # type: ignore[union-attr]
    return len(result)  # type: ignore[arg-type]


def merge_partial_results(
    task: Task, partials: Sequence[TaskResult], counter: CostCounter
) -> TaskResult:
    """Merge per-partition results into one corpus-level result.

    Partitions hold disjoint files, so file-keyed results concatenate
    while corpus-keyed counts add up.  The merge work is charged to
    ``counter``.
    """
    if task is Task.WORD_COUNT:
        merged_counts: Dict[str, int] = {}
        for partial in partials:
            counter.charge(hash_ops=float(len(partial)), memory_bytes=wc.HASH_UPDATE_BYTES * len(partial))
            for word, count in partial.items():  # type: ignore[union-attr]
                merged_counts[word] = merged_counts.get(word, 0) + count
        return merged_counts

    if task is Task.SORT:
        merged_counts = {}
        for partial in partials:
            counter.charge(hash_ops=float(len(partial)))
            for word, count in partial:  # type: ignore[union-attr]
                merged_counts[word] = merged_counts.get(word, 0) + count
        keys = max(1, len(merged_counts))
        counter.charge(compute_ops=wc.SORT_OPS_PER_KEY * keys * max(1.0, float(int(keys).bit_length())))
        return normalize_result(Task.SORT, merged_counts)

    if task is Task.TERM_VECTOR:
        merged_vectors: Dict[str, Dict[str, int]] = {}
        for partial in partials:
            counter.charge(hash_ops=float(sum(len(v) for v in partial.values())))  # type: ignore[union-attr]
            merged_vectors.update(partial)  # type: ignore[arg-type]
        return merged_vectors

    if task is Task.INVERTED_INDEX:
        merged_index: Dict[str, List[str]] = {}
        for partial in partials:
            for word, files in partial.items():  # type: ignore[union-attr]
                counter.charge(hash_ops=1.0, compute_ops=float(len(files)))
                merged_index.setdefault(word, []).extend(files)
        return {word: sorted(set(files)) for word, files in merged_index.items()}

    if task is Task.RANKED_INVERTED_INDEX:
        merged_ranked: Dict[str, List[Tuple[str, int]]] = {}
        for partial in partials:
            for word, pairs in partial.items():  # type: ignore[union-attr]
                counter.charge(hash_ops=1.0, compute_ops=float(len(pairs)))
                merged_ranked.setdefault(word, []).extend(pairs)
        counter.charge(
            compute_ops=wc.SORT_OPS_PER_KEY
            * sum(len(pairs) for pairs in merged_ranked.values())
        )
        return {
            word: sorted(pairs, key=lambda pair: (-pair[1], pair[0]))
            for word, pairs in merged_ranked.items()
        }

    if task is Task.SEQUENCE_COUNT:
        merged_sequences: Dict[Tuple[str, ...], int] = {}
        for partial in partials:
            counter.charge(hash_ops=float(len(partial)))
            for key, count in partial.items():  # type: ignore[union-attr]
                merged_sequences[key] = merged_sequences.get(key, 0) + count
        return merged_sequences

    raise ValueError(f"unknown task: {task!r}")
