"""Baseline engines the paper compares G-TADOC against.

* :class:`CpuTadoc` — the sequential, state-of-the-art CPU TADOC
  (CompressDirect, reference [2] in the paper).  This is the
  denominator of every speedup in Figures 9 and 10.
* :class:`ParallelCpuTadoc` — the coarse-grained parallel TADOC of
  reference [4]: the corpus is partitioned by files, every partition is
  compressed and processed independently, and partial results are
  merged.
* :class:`DistributedTadoc` — the same coarse-grained scheme spread
  over a simulated multi-node Spark-style cluster (the paper's baseline
  for the 50 GB dataset C).
* :class:`GpuUncompressedAnalytics` — the six tasks implemented
  directly over the raw token stream and priced on a GPU device model
  (the §VI-E comparison, where G-TADOC wins by about 2x).
"""

from repro.baselines.cpu_tadoc import CpuTadoc, CpuTadocRunResult
from repro.baselines.parallel_tadoc import ParallelCpuTadoc, ParallelRunResult
from repro.baselines.distributed import DistributedTadoc, DistributedRunResult
from repro.baselines.gpu_uncompressed import GpuUncompressedAnalytics, GpuUncompressedRunResult

__all__ = [
    "CpuTadoc",
    "CpuTadocRunResult",
    "ParallelCpuTadoc",
    "ParallelRunResult",
    "DistributedTadoc",
    "DistributedRunResult",
    "GpuUncompressedAnalytics",
    "GpuUncompressedRunResult",
]
