"""Leader/follower query coalescing into micro-batches.

Concurrent queries that can execute against the same device-session
state (same corpus, engine config, sequence length, file subset and
traversal override) should not each pay a separate engine round trip:
one ``run_batch`` serves them all, charging shared initialization and
traversal-state construction once.  This module implements the
batching discipline:

* the first request for a compatibility group becomes the *leader*;
* the leader waits one short coalescing window so concurrent followers
  can pile onto the group, then takes up to ``max_batch`` pending
  requests and executes them as one micro-batch;
* followers block on their request's completion signal and wake with
  the outcome (or the batch's error) filled in;
* each leader executes exactly one micro-batch.  If more requests
  queued while it executed, leadership is handed to the head of the
  queue (it drains the next batch immediately, no second window), so a
  leader's latency is bounded by its own batch and the group is empty
  when the last leader retires — at which point the group record is
  dropped.

The group/leader bookkeeping itself (:class:`CoalescerCore`) carries no
synchronization, so the same discipline backs two front ends: the
threaded :class:`QueryCoalescer` here (lock + condition, blocking
waits) and the event-driven
:class:`~repro.serve.aio.AsyncQueryCoalescer` (single-threaded event
loop, ``asyncio`` futures).  Neither knows anything about engines or
queries beyond the opaque group key — the serving layer supplies the
execution function.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.analysis.lockcheck import make_lock
from repro.api.query import Query

__all__ = ["BatchSlot", "CoalescedRequest", "CoalescerCore", "GroupState", "QueryCoalescer"]


class BatchSlot:
    """One query's slot in a micro-batch: the executor writes the outcome here."""

    __slots__ = ("query", "outcome", "error", "batch_size")

    def __init__(self, query: Query) -> None:
        self.query = query
        self.outcome: Any = None
        self.error: Optional[BaseException] = None
        #: Size of the micro-batch that served this request (1 = alone).
        self.batch_size: int = 0


class CoalescedRequest(BatchSlot):
    """One in-flight query of the threaded coalescer (blocking wait)."""

    __slots__ = ("event", "promoted")

    def __init__(self, query: Query) -> None:
        super().__init__(query)
        self.event = threading.Event()
        #: Set when a retiring leader hands this request's thread the lead.
        self.promoted: bool = False


#: Executes one micro-batch, filling each slot's ``outcome``.
ExecuteFn = Callable[[List[BatchSlot]], None]


class GroupState:
    """Pending requests of one compatibility group plus leader state."""

    __slots__ = ("pending", "leader_active")

    def __init__(self) -> None:
        self.pending: List[BatchSlot] = []
        self.leader_active = False


class CoalescerCore:
    """Group bookkeeping shared by the threaded and asyncio coalescers.

    The core carries **no synchronization**: the caller provides mutual
    exclusion around every method (a lock for threads, event-loop
    single-threadedness for asyncio).  It owns the invariants both
    front ends rely on — one active leader per group, batches sliced
    off the queue head, leadership handed to the queue head on retire,
    empty groups dropped.
    """

    __slots__ = ("max_batch", "groups", "_group_factory")

    def __init__(self, max_batch: int, group_factory: Type[GroupState] = GroupState) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = int(max_batch)
        self.groups: Dict[Any, GroupState] = {}
        self._group_factory = group_factory

    def enqueue(self, group_key: Any, request: BatchSlot) -> Tuple[GroupState, bool]:
        """Queue ``request``; returns ``(group, became_leader)``."""
        group = self.groups.get(group_key)
        if group is None:
            group = self.groups[group_key] = self._group_factory()
        group.pending.append(request)
        became_leader = not group.leader_active
        if became_leader:
            group.leader_active = True
        return group, became_leader

    def take_batch(self, group: GroupState) -> List[BatchSlot]:
        """Slice the next micro-batch off the group's queue head."""
        batch = group.pending[: self.max_batch]
        del group.pending[: self.max_batch]
        for slot in batch:
            slot.batch_size = len(batch)
        return batch

    def finish(self, group_key: Any, group: GroupState) -> Optional[BatchSlot]:
        """Retire the current leader.

        If requests queued meanwhile, the queue head is marked promoted
        and returned so the caller can wake it into the lead; otherwise
        the group is dropped and ``None`` returned.
        """
        if group.pending:
            successor = group.pending[0]
            successor.promoted = True  # type: ignore[attr-defined]
            return successor
        group.leader_active = False
        if self.groups.get(group_key) is group:
            del self.groups[group_key]
        return None


class QueryCoalescer:
    """Thread-based front end: blocking submits, sleeping window."""

    def __init__(self, window: float = 0.002, max_batch: int = 16) -> None:
        if window < 0:
            raise ValueError("coalescing window must be non-negative")
        self.window = float(window)
        self._core = CoalescerCore(max_batch)
        self._lock = make_lock("serve.coalescer")
        self._arrival = threading.Condition(self._lock)

    @property
    def max_batch(self) -> int:
        return self._core.max_batch

    @property
    def _groups(self) -> Dict[Any, GroupState]:
        """The live group records (exposed for tests/diagnostics)."""
        return self._core.groups

    def submit(self, group_key: Any, request: CoalescedRequest, execute: ExecuteFn) -> None:
        """Run ``request`` through its group's micro-batching, blocking until done.

        Raises whatever the executing micro-batch raised; otherwise
        ``request.outcome`` is filled in on return.
        """
        with self._lock:
            group, became_leader = self._core.enqueue(group_key, request)
            if not became_leader:
                self._arrival.notify_all()
        if became_leader:
            self._lead_one_batch(group_key, group, execute, hold_window=True)
        else:
            request.event.wait()
            if request.promoted:
                # A retiring leader handed this thread the lead; its own
                # request is still pending, so no window: drain right away.
                self._lead_one_batch(group_key, group, execute, hold_window=False)
        if request.error is not None:
            raise request.error

    def _lead_one_batch(
        self, group_key: Any, group: GroupState, execute: ExecuteFn, hold_window: bool
    ) -> None:
        """Execute one micro-batch, then hand off leadership or retire."""
        if hold_window:
            self._wait_for_followers(group)
        with self._lock:
            batch = self._core.take_batch(group)
            if not batch:  # pragma: no cover - a leader's own request is pending
                self._core.finish(group_key, group)
                return
        try:
            execute(batch)
        except BaseException as error:  # propagate to every waiter
            for queued in batch:
                queued.error = error
        finally:
            for queued in batch:
                queued.event.set()  # type: ignore[attr-defined]
            with self._lock:
                successor = self._core.finish(group_key, group)
                if successor is not None:
                    successor.event.set()  # type: ignore[attr-defined]

    def _wait_for_followers(self, group: GroupState) -> None:
        """Hold the coalescing window open (cut short once the batch is full)."""
        if self.window <= 0:
            return
        deadline = time.monotonic() + self.window
        with self._arrival:
            while len(group.pending) < self._core.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._arrival.wait(remaining)
