"""Leader/follower query coalescing into micro-batches.

Concurrent queries that can execute against the same device-session
state (same corpus, engine config, sequence length, file subset and
traversal override) should not each pay a separate engine round trip:
one ``run_batch`` serves them all, charging shared initialization and
traversal-state construction once.  The coalescer implements the
batching discipline:

* the first request for a compatibility group becomes the *leader*;
* the leader waits one short coalescing window so concurrent followers
  can pile onto the group, then takes up to ``max_batch`` pending
  requests and executes them as one micro-batch;
* followers block on their request's event and wake with the outcome
  (or the batch's error) filled in;
* each leader executes exactly one micro-batch.  If more requests
  queued while it executed, leadership is handed to the head of the
  queue (its thread wakes and drains the next batch immediately, no
  second window), so a leader's latency is bounded by its own batch
  and the group is empty when the last leader retires — at which point
  the group record is dropped.

The coalescer knows nothing about engines or queries beyond the opaque
group key — the serving layer supplies the execution function.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.api.query import Query

__all__ = ["CoalescedRequest", "QueryCoalescer"]


class CoalescedRequest:
    """One in-flight query: the slot a micro-batch writes its outcome into."""

    __slots__ = ("query", "event", "outcome", "error", "batch_size", "promoted")

    def __init__(self, query: Query) -> None:
        self.query = query
        self.event = threading.Event()
        self.outcome: Any = None
        self.error: Optional[BaseException] = None
        #: Size of the micro-batch that served this request (1 = alone).
        self.batch_size: int = 0
        #: Set when a retiring leader hands this request's thread the lead.
        self.promoted: bool = False


#: Executes one micro-batch, filling each request's ``outcome``.
ExecuteFn = Callable[[List[CoalescedRequest]], None]


class _Group:
    """Pending requests of one compatibility group plus leader state."""

    __slots__ = ("pending", "leader_active")

    def __init__(self) -> None:
        self.pending: List[CoalescedRequest] = []
        self.leader_active = False


class QueryCoalescer:
    """Groups compatible in-flight requests into micro-batches."""

    def __init__(self, window: float = 0.002, max_batch: int = 16) -> None:
        if window < 0:
            raise ValueError("coalescing window must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._lock = threading.Lock()
        self._arrival = threading.Condition(self._lock)
        self._groups: Dict[Any, _Group] = {}

    def submit(self, group_key: Any, request: CoalescedRequest, execute: ExecuteFn) -> None:
        """Run ``request`` through its group's micro-batching, blocking until done.

        Raises whatever the executing micro-batch raised; otherwise
        ``request.outcome`` is filled in on return.
        """
        with self._lock:
            group = self._groups.setdefault(group_key, _Group())
            group.pending.append(request)
            became_leader = not group.leader_active
            if became_leader:
                group.leader_active = True
            else:
                self._arrival.notify_all()
        if became_leader:
            self._lead_one_batch(group_key, group, execute, hold_window=True)
        else:
            request.event.wait()
            if request.promoted:
                # A retiring leader handed this thread the lead; its own
                # request is still pending, so no window: drain right away.
                self._lead_one_batch(group_key, group, execute, hold_window=False)
        if request.error is not None:
            raise request.error

    def _lead_one_batch(
        self, group_key: Any, group: _Group, execute: ExecuteFn, hold_window: bool
    ) -> None:
        """Execute one micro-batch, then hand off leadership or retire."""
        if hold_window:
            self._wait_for_followers(group)
        with self._lock:
            batch = group.pending[: self.max_batch]
            del group.pending[: self.max_batch]
            if not batch:  # pragma: no cover - a leader's own request is pending
                self._retire(group_key, group)
                return
        for queued in batch:
            queued.batch_size = len(batch)
        try:
            execute(batch)
        except BaseException as error:  # propagate to every waiter
            for queued in batch:
                queued.error = error
        finally:
            for queued in batch:
                queued.event.set()
            with self._lock:
                if group.pending:
                    successor = group.pending[0]
                    successor.promoted = True
                    successor.event.set()
                else:
                    self._retire(group_key, group)

    def _retire(self, group_key: Any, group: _Group) -> None:
        """Release leadership and drop the empty group (held lock required)."""
        group.leader_active = False
        if self._groups.get(group_key) is group:
            del self._groups[group_key]

    def _wait_for_followers(self, group: _Group) -> None:
        """Hold the coalescing window open (cut short once the batch is full)."""
        if self.window <= 0:
            return
        deadline = time.monotonic() + self.window
        with self._arrival:
            while len(group.pending) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._arrival.wait(remaining)
