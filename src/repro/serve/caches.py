"""Thread-safe bounded LRU caches with serving statistics.

The serving layer keeps two caches: a small LRU of
:class:`~repro.core.session.DeviceSession` entries (device state is the
expensive thing G-TADOC builds, so a bounded number of corpus/config
combinations stay resident) and a larger LRU of query results.  Both
need the same machinery — bounded capacity, recency ordering, hit/miss/
eviction/invalidation counters, safe concurrent access — which lives
here.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, List, Tuple

__all__ = ["CacheStats", "LRUCache"]

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    capacity: int
    size: int
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when the cache has not been consulted)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class LRUCache:
    """A bounded, thread-safe LRU mapping with hit/miss/eviction counters.

    ``get`` and ``get_or_create`` count hits and misses; inserting past
    ``capacity`` evicts the least recently used entry (counted as an
    eviction); ``remove_where`` drops matching entries (counted as
    invalidations).  All operations hold one internal lock, so the cache
    may be shared freely between worker threads.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # -- lookups -----------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """The cached value (marking it most recent), or ``default`` on a miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def get_or_create(self, key: Any, factory: Callable[[], Any]) -> Tuple[Any, bool]:
        """The cached value for ``key``, building it on a miss.

        Returns ``(value, created)``.  The factory runs under the cache
        lock, so concurrent callers never build the same entry twice.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self._hits += 1
                return value, False
            self._misses += 1
            value = factory()
            self._entries[key] = value
            self._evict_overflow()
            return value, True

    def put(self, key: Any, value: Any) -> None:
        """Insert (or refresh) an entry without touching hit/miss counters."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._evict_overflow()

    def _evict_overflow(self) -> None:
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    # -- invalidation ------------------------------------------------------------------
    def remove_where(self, predicate: Callable[[Any], bool]) -> int:
        """Drop every entry whose *key* matches; returns how many were dropped."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self._invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        """Drop everything (counted as invalidations)."""
        return self.remove_where(lambda key: True)

    # -- introspection ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[Any]:
        """Current keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
            )
