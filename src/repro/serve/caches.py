"""Thread-safe bounded LRU caches with serving statistics.

The serving layer keeps two caches: a small LRU of
:class:`~repro.core.session.DeviceSession` entries (device state is the
expensive thing G-TADOC builds, so a bounded number of corpus/config
combinations stay resident) and a larger LRU of query results.  Both
need the same machinery — bounded capacity, recency ordering, hit/miss/
eviction/invalidation counters, safe concurrent access — which lives
here.

Beyond the entry-count bound, a cache may carry

* a **byte budget** (``max_weight_bytes``): every entry is inserted with
  a weight (the result cache weighs entries by approximate result size,
  see :func:`approx_size_bytes`) and the least recently used entries are
  evicted until the total weight fits the budget.  An entry heavier than
  the whole budget is never retained.
* a **TTL** (``ttl`` seconds): entries older than the TTL are dropped on
  access (counted as *expirations*, separate from capacity evictions),
  so republished corpora stop serving stale results even when nobody
  calls ``invalidate``.

Both knobs surface in :class:`CacheStats` (``weight_bytes``,
``weight_capacity``, ``expirations``, ``ttl``).
"""

from __future__ import annotations

import sys
import time
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.analysis.lockcheck import make_lock

__all__ = ["CacheStats", "LRUCache", "approx_size_bytes"]


def approx_size_bytes(value: Any) -> int:
    """Approximate deep in-memory size of a (result-shaped) object.

    Walks mappings and sequences of scalars — the shapes task results
    take — summing ``sys.getsizeof``.  Shared references are counted
    each time they appear and cycles are not supported (results are
    plain data): this is a cache-weighing heuristic, not an exact
    measurement.
    """
    size = sys.getsizeof(value)
    if isinstance(value, Mapping):
        for key, item in value.items():
            size += approx_size_bytes(key) + approx_size_bytes(item)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            size += approx_size_bytes(item)
    return size


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    capacity: int
    size: int
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Entries dropped because they outlived the cache's TTL.
    expirations: int = 0
    #: Sum of resident entry weights (equals ``size`` for unweighted caches).
    weight_bytes: int = 0
    #: The byte budget (``None`` = entry-count bound only).
    weight_capacity: Optional[int] = None
    #: Seconds an entry stays servable (``None`` = no TTL).
    ttl: Optional[float] = None

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when the cache has not been consulted)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class _Entry:
    """One cached value plus its weight and insertion stamp."""

    __slots__ = ("value", "weight", "stamp")

    def __init__(self, value: Any, weight: int, stamp: float) -> None:
        self.value = value
        self.weight = weight
        self.stamp = stamp


class LRUCache:
    """A bounded, thread-safe LRU mapping with hit/miss/eviction counters.

    ``get`` and ``get_or_create`` count hits and misses; inserting past
    ``capacity`` (or past the optional ``max_weight_bytes`` budget)
    evicts least recently used entries (counted as evictions);
    ``remove_where`` drops matching entries (counted as invalidations);
    entries older than the optional ``ttl`` are collected lazily on
    access (counted as expirations).  All operations hold one internal
    lock, so the cache may be shared freely between worker threads.
    """

    def __init__(
        self,
        capacity: int,
        *,
        max_weight_bytes: Optional[int] = None,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if max_weight_bytes is not None and max_weight_bytes < 1:
            raise ValueError("byte budget must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive")
        self.capacity = int(capacity)
        self._max_weight_bytes = max_weight_bytes
        self._ttl = ttl
        self._clock = clock
        self._entries: "OrderedDict[Any, _Entry]" = OrderedDict()
        self._weight = 0
        self._lock = make_lock("serve.cache")
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._expirations = 0

    # -- lookups -----------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """The cached value (marking it most recent), or ``default`` on a miss.

        An entry past its TTL counts as an expiration plus a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                self._drop(key, entry)
                self._expirations += 1
                entry = None
            if entry is None:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return entry.value

    def get_or_create(self, key: Any, factory: Callable[[], Any]) -> Tuple[Any, bool]:
        """The cached value for ``key``, building it on a miss.

        Returns ``(value, created)``.  The factory runs under the cache
        lock, so concurrent callers never build the same entry twice.
        Created entries carry unit weight (the session cache is bounded
        by entry count only).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                self._drop(key, entry)
                self._expirations += 1
                entry = None
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry.value, False
            self._misses += 1
            value = factory()
            self._entries[key] = _Entry(value, 1, self._clock())
            self._weight += 1
            self._evict_overflow()
            return value, True

    def put(self, key: Any, value: Any, weight: int = 1) -> None:
        """Insert (or refresh) an entry without touching hit/miss counters."""
        self.put_if(key, value, weight=weight)

    def put_if(
        self,
        key: Any,
        value: Any,
        guard: Optional[Callable[[], bool]] = None,
        weight: int = 1,
    ) -> bool:
        """Insert unless ``guard`` (evaluated under the cache lock) refuses.

        The guard runs inside the same critical section as the insert,
        so relative to a concurrent ``remove_where`` there is no window
        for a stale write-back: either the insert lands first and the
        remover sees it, or the guard sees whatever state the remover's
        caller published before removing.  Returns whether the value was
        inserted.  An entry heavier than the whole byte budget is
        rejected up front — it could never be retained, and evicting
        residents to make room for it would only flush the cache.

        Expired entries are *not* swept here (that would put an
        O(capacity) scan on every write): they are collected lazily on
        access and by :meth:`stats`, and the LRU-first overflow eviction
        reclaims the oldest — most likely expired — entries anyway.
        """
        with self._lock:
            if guard is not None and not guard():
                return False
            if self._max_weight_bytes is not None and weight > self._max_weight_bytes:
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._weight -= old.weight
            self._entries[key] = _Entry(value, max(0, int(weight)), self._clock())
            self._weight += max(0, int(weight))
            self._evict_overflow()
            return True

    # -- bounds ------------------------------------------------------------------------
    def _expired(self, entry: _Entry) -> bool:
        return self._ttl is not None and (self._clock() - entry.stamp) > self._ttl

    def _drop(self, key: Any, entry: _Entry) -> None:
        del self._entries[key]
        self._weight -= entry.weight

    def _prune_expired(self) -> None:
        if self._ttl is None:
            return
        doomed = [(key, entry) for key, entry in self._entries.items() if self._expired(entry)]
        for key, entry in doomed:
            self._drop(key, entry)
            self._expirations += 1

    def _evict_overflow(self) -> None:
        while len(self._entries) > self.capacity:
            _key, entry = self._entries.popitem(last=False)
            self._weight -= entry.weight
            self._evictions += 1
        if self._max_weight_bytes is None:
            return
        while self._weight > self._max_weight_bytes and self._entries:
            _key, entry = self._entries.popitem(last=False)
            self._weight -= entry.weight
            self._evictions += 1

    # -- invalidation ------------------------------------------------------------------
    def discard(
        self,
        key: Any,
        when: Optional[Callable[[Any], bool]] = None,
        *,
        count_invalidation: bool = True,
    ) -> bool:
        """Remove ``key``'s entry, optionally only when its *value* matches.

        ``when`` is evaluated under the cache lock, so callers can make
        identity-precise removals ("drop this entry only if it is still
        the object I saw") without racing concurrent replacements.
        Returns whether an entry was removed (counted as an
        invalidation unless ``count_invalidation`` is false — removals
        that are rebalancing rather than staleness, e.g. a shard resize
        moving a session, must not read as data-invalidation events in
        :class:`CacheStats`).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            if when is not None and not when(entry.value):
                return False
            self._drop(key, entry)
            if count_invalidation:
                self._invalidations += 1
            return True

    def remove_where(self, predicate: Callable[[Any], bool]) -> int:
        """Drop every entry whose *key* matches; returns how many were dropped."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                self._drop(key, self._entries[key])
            self._invalidations += len(doomed)
            return len(doomed)

    def expire_where(self, predicate: Callable[[Any], bool]) -> int:
        """Drop every entry whose *key* matches, counted as expirations.

        The epoch-based lazy-staleness path uses this instead of
        :meth:`remove_where`: an entry outlived by a newer corpus epoch
        expired — nobody invalidated it and capacity did not evict it —
        and :class:`CacheStats` must attribute it accordingly.
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                self._drop(key, self._entries[key])
            self._expirations += len(doomed)
            return len(doomed)

    def rekey(
        self, old_key: Any, new_key: Any, when: Optional[Callable[[Any], bool]] = None
    ) -> Any:
        """Move an entry to a new key without touching any counter.

        Used when an entry's identity legitimately changes under it (a
        corpus advancing an epoch changes its fingerprint) and the
        resident value — warm device state — should follow rather than
        be rebuilt.  ``when`` (evaluated under the lock, on the value)
        can make the move identity-precise.  The move keeps the entry's
        recency and weight; an existing entry at ``new_key`` is
        replaced.  Returns the moved value, or ``None`` if nothing
        matched.
        """
        with self._lock:
            entry = self._entries.get(old_key)
            if entry is None or (when is not None and not when(entry.value)):
                return None
            del self._entries[old_key]
            displaced = self._entries.pop(new_key, None)
            if displaced is not None:
                self._weight -= displaced.weight
            self._entries[new_key] = entry
            self._entries.move_to_end(new_key)
            return entry.value

    def clear(self) -> int:
        """Drop everything (counted as invalidations)."""
        return self.remove_where(lambda key: True)

    # -- introspection ------------------------------------------------------------------
    def __contains__(self, key: Any) -> bool:
        """Whether a live (non-expired) entry exists, without touching any
        counter or the recency order — a pure peek for callers deciding
        whether a write-back is still needed."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._expired(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[Any]:
        """Current keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> CacheStats:
        """Current counters (expired entries are collected first)."""
        with self._lock:
            self._prune_expired()
            return CacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                expirations=self._expirations,
                weight_bytes=self._weight,
                weight_capacity=self._max_weight_bytes,
                ttl=self._ttl,
            )
