"""Serving layer: thread-safe concurrent query serving over G-TADOC.

:class:`AnalyticsService` fronts the unified query API for concurrent
traffic: a bounded LRU of device sessions (keyed by corpus fingerprint
plus engine config), coalescing of compatible in-flight queries into
``run_batch`` micro-batches, and a ``Query``-keyed result cache with
fingerprint invalidation.  The service is also registered as the
``"serve"`` backend, so ``open_backend("serve", corpus)`` returns one.

Quick start::

    from repro.serve import AnalyticsService

    service = AnalyticsService(compressed)
    outcome = service.submit(Query(task="word_count", top_k=10))
    print(service.stats().launches_per_query)
"""

from repro.serve.caches import CacheStats, LRUCache
from repro.serve.coalescer import CoalescedRequest, QueryCoalescer
from repro.serve.replay import ReplayReport, replay_trace
from repro.serve.service import AnalyticsService, ServiceConfig, ServiceStats
from repro.serve.trace import TraceConfig, synthesize_trace

__all__ = [
    "AnalyticsService",
    "ServiceConfig",
    "ServiceStats",
    "CacheStats",
    "LRUCache",
    "QueryCoalescer",
    "CoalescedRequest",
    "TraceConfig",
    "synthesize_trace",
    "ReplayReport",
    "replay_trace",
]
