"""Serving layer: concurrent query serving over G-TADOC.

Two front ends share one implementation core
(:class:`~repro.serve.service.ServingCore` — session LRU keyed by
corpus fingerprint plus engine config, coalescing of compatible
in-flight queries into ``run_batch`` micro-batches, a ``Query``-keyed
result cache with byte/TTL bounds, and epoch-guarded fingerprint
invalidation):

* :class:`AnalyticsService` — thread-based, blocking ``submit`` (the
  ``"serve"`` backend);
* :class:`AsyncAnalyticsService` — asyncio, ``await submit`` with
  event-driven coalescing windows and a bounded executor for engine
  work (the ``"serve_async"`` backend, via :class:`AsyncServeBackend`).

Quick start::

    from repro.serve import AnalyticsService

    service = AnalyticsService(compressed)
    outcome = service.submit(Query(task="word_count", top_k=10))
    print(service.stats().launches_per_query)

or, on an event loop::

    from repro.serve import AsyncAnalyticsService

    service = AsyncAnalyticsService(compressed)
    outcome = await service.submit(Query(task="word_count", top_k=10))
"""

from repro.serve.aio import (
    AsyncAnalyticsService,
    AsyncCoalescedRequest,
    AsyncQueryCoalescer,
    AsyncServeBackend,
)
from repro.serve.caches import CacheStats, LRUCache, approx_size_bytes
from repro.serve.coalescer import BatchSlot, CoalescedRequest, QueryCoalescer
from repro.serve.replay import (
    ReplayReport,
    replay_trace,
    replay_trace_async,
    replay_trace_sharded,
)
from repro.serve.service import AnalyticsService, ServiceConfig, ServiceStats, ServingCore
from repro.serve.sharding import (
    ShardedAnalyticsService,
    ShardedServiceConfig,
    ShardedStats,
    rendezvous_rank,
)
from repro.serve.trace import TraceConfig, synthesize_trace
from repro.serve.transport import (
    InProcessTransport,
    ProcessTransport,
    ShardFailure,
    ShardTransport,
    create_transport,
)
from repro.serve.worker import ShardHost

__all__ = [
    "AnalyticsService",
    "AsyncAnalyticsService",
    "AsyncServeBackend",
    "ServingCore",
    "ServiceConfig",
    "ServiceStats",
    "ShardedAnalyticsService",
    "ShardedServiceConfig",
    "ShardedStats",
    "rendezvous_rank",
    "ShardTransport",
    "InProcessTransport",
    "ProcessTransport",
    "ShardFailure",
    "ShardHost",
    "create_transport",
    "CacheStats",
    "LRUCache",
    "approx_size_bytes",
    "QueryCoalescer",
    "AsyncQueryCoalescer",
    "BatchSlot",
    "CoalescedRequest",
    "AsyncCoalescedRequest",
    "TraceConfig",
    "synthesize_trace",
    "ReplayReport",
    "replay_trace",
    "replay_trace_async",
    "replay_trace_sharded",
]
