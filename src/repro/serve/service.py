"""The serving layer's implementation core and its threaded front end.

TADOC compressed structures are built once and meant to serve many
queries, and G-TADOC's Figure-3 split exists precisely so the
initialization phase can be amortized across requests.  Two front ends
realise that shape for concurrent traffic — the thread-based
:class:`AnalyticsService` here and the asyncio
:class:`~repro.serve.aio.AsyncAnalyticsService` — and both are thin
shells over one :class:`ServingCore`:

* a bounded LRU of :class:`~repro.core.session.DeviceSession` entries,
  keyed by corpus :meth:`~repro.compression.compressor.CompressedCorpus.fingerprint`
  plus :class:`~repro.core.session.GTadocConfig`, so the expensive
  device state stays resident for the hottest corpora and is dropped
  least-recently-used first;
* query coalescing — concurrent queries compatible on required session
  state (same corpus/config/sequence length/file subset/traversal) are
  grouped into one ``run_batch`` micro-batch, charging initialization
  and shared traversal-state construction once for the whole group;
* a :class:`~repro.api.query.Query`-keyed result cache in front of the
  engines — entry-count bounded, optionally byte-budgeted and
  TTL-bounded (:class:`ServiceConfig`), with hit/miss/eviction/
  expiration statistics and explicit fingerprint-based invalidation;
* a per-fingerprint **epoch**: :meth:`ServingCore.invalidate` bumps the
  fingerprint's epoch before dropping entries, and every cache
  write-back is guarded on the epoch its query observed — an in-flight
  query that raced an invalidation can never resurrect a stale entry in
  the result cache or the session LRU;
* per-session locking underneath (see
  :attr:`~repro.core.session.DeviceSession.lock`), so worker threads
  produce results bit-identical to serial execution.

Both services satisfy the
:class:`~repro.api.backend.AnalyticsBackend` protocol and are
registered as the ``"serve"`` and ``"serve_async"`` backends, so they
front the same registry every other engine sits behind.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.lockcheck import make_lock
from repro.analytics.base import Task
from repro.api.backend import BackendCapabilities
from repro.api.backends import CorpusSource, _as_compressed, _file_indices_for
from repro.api.outcome import PhasePerf, RunOutcome, RunPerf, perf_from_records
from repro.api.query import Query, as_query, shape_result
from repro.compression.compressor import CompressedCorpus
from repro.core.engine import GTadoc
from repro.core.session import GTadocConfig
from repro.data.corpus import Corpus
from repro.serve.caches import CacheStats, LRUCache, approx_size_bytes
from repro.serve.coalescer import BatchSlot, CoalescedRequest, QueryCoalescer

__all__ = ["ServiceConfig", "ServiceStats", "ServingCore", "AnalyticsService", "CorpusMemo"]


class CorpusMemo:
    """Bounded, thread-safe memo of raw-corpus compressions.

    Keyed by object identity: a caller may keep handing the same
    :class:`~repro.data.corpus.Corpus` to every submit without paying a
    re-compression.  Oldest entries are dropped first past ``capacity``.
    Shared by the serving cores and the shard router so the memo
    discipline cannot drift between them.
    """

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._lock = make_lock("serve.corpus_memo")
        self._entries: Dict[int, Tuple[Corpus, CompressedCorpus]] = {}

    def resolve(self, source: CorpusSource) -> CompressedCorpus:
        if isinstance(source, CompressedCorpus):
            return source
        if isinstance(source, Corpus):
            with self._lock:
                memo = self._entries.get(id(source))
                if memo is not None and memo[0] is source:
                    return memo[1]
                compressed = _as_compressed(source)
                self._entries[id(source)] = (source, compressed)
                while len(self._entries) > self._capacity:
                    self._entries.pop(next(iter(self._entries)))
                return compressed
        raise TypeError(f"expected a Corpus or CompressedCorpus, got {type(source).__name__}")

    def drop_fingerprint(self, fingerprint: str) -> None:
        """Forget memoized compressions of an invalidated corpus."""
        with self._lock:
            self._entries = {
                key: value
                for key, value in self._entries.items()
                if value[1].fingerprint() != fingerprint
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable parameters of the serving layer."""

    #: Bound on resident device sessions (distinct corpus/config pairs).
    max_sessions: int = 4
    #: Bound on cached query results (entry count).
    result_cache_capacity: int = 1024
    #: Serve repeated identical queries from the result cache.
    cache_results: bool = True
    #: Seconds a micro-batch leader holds the door open for concurrent
    #: compatible queries (0 disables the wait; coalescing then only
    #: captures requests that queued while a batch was executing).
    coalesce_window: float = 0.002
    #: Upper bound on one micro-batch's size.
    max_batch_size: int = 16
    #: Bound on memoized raw-corpus compressions (oldest dropped first).
    corpus_memo_capacity: int = 32
    #: Byte budget on the result cache: entries are weighed by
    #: approximate result size and evicted LRU-first past the budget
    #: (``None`` = entry-count bound only).
    result_cache_bytes: Optional[int] = None
    #: Seconds a cached result stays servable (``None`` = no TTL).
    result_cache_ttl: Optional[float] = None
    #: Fuse micro-batches that mix distinct tasks into one shared
    #: traversal pass (:meth:`~repro.core.engine.GTadoc.run_fused`):
    #: each result family's primitive runs once for the whole batch, so
    #: launches/query drops below the plain coalescing floor.  Results
    #: stay bit-identical to per-query execution.
    fuse_batches: bool = True

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.result_cache_capacity < 1:
            raise ValueError("result_cache_capacity must be >= 1")
        if self.coalesce_window < 0:
            raise ValueError("coalesce_window must be non-negative")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.corpus_memo_capacity < 1:
            raise ValueError("corpus_memo_capacity must be >= 1")
        if self.result_cache_bytes is not None and self.result_cache_bytes < 1:
            raise ValueError("result_cache_bytes must be >= 1")
        if self.result_cache_ttl is not None and self.result_cache_ttl <= 0:
            raise ValueError("result_cache_ttl must be positive")


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's serving counters."""

    #: Queries answered (result-cache hits included).
    queries: int
    #: Queries that reached an engine (cache misses).
    executed_queries: int
    #: Engine micro-batches dispatched.
    micro_batches: int
    #: Executed queries that shared their micro-batch with at least one other.
    coalesced_queries: int
    #: Simulated kernel launches charged by all micro-batches.
    kernel_launches: int
    #: The initialization/shared-state share of those launches.
    shared_kernel_launches: int
    session_cache: CacheStats
    result_cache: CacheStats

    @property
    def launches_per_query(self) -> float:
        """Kernel launches per answered query (cache hits pull this down)."""
        return self.kernel_launches / self.queries if self.queries else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.executed_queries / self.micro_batches if self.micro_batches else 0.0

    @property
    def epoch_expirations(self) -> int:
        """Entries that outlived their epoch (corpus mutations, TTLs).

        Lazily-dropped stale sessions and results are *expirations* —
        distinct from capacity evictions and explicit invalidations.
        """
        return self.session_cache.expirations + self.result_cache.expirations


@dataclass
class _SessionEntry:
    """One resident corpus/config pair: compressed form + its engine.

    ``epoch`` records the fingerprint generation the entry was created
    under; entries from a generation that has since been invalidated
    are not allowed to stay resident (see :meth:`ServingCore._entry_for`).
    """

    key: Tuple[str, GTadocConfig]
    compressed: CompressedCorpus
    engine: GTadoc
    epoch: int = 0


@dataclass(frozen=True)
class _CachedResult:
    """What the result cache stores: the shaped result + the strategy used.

    The stored result is a private deep copy and every hit hands out a
    fresh copy, so no caller mutation can poison the cache (or another
    caller's outcome) and the bit-identical-to-serial guarantee holds.
    """

    result: object
    strategy: Optional[str]

    @classmethod
    def of(cls, result: object, strategy: Optional[str]) -> "_CachedResult":
        return cls(result=copy.deepcopy(result), strategy=strategy)

    def fresh_result(self) -> object:
        return copy.deepcopy(self.result)


@dataclass
class _PreparedQuery:
    """The resolved front half of one submit: target, keys, epoch, cache probe."""

    query: Query
    compressed: CompressedCorpus
    config: GTadocConfig
    session_key: Tuple[str, GTadocConfig]
    cache_key: Tuple[Tuple[str, GTadocConfig], Query]
    epoch: int
    cached: Optional[_CachedResult]

    @property
    def fingerprint(self) -> str:
        return self.session_key[0]


class ServingCore:
    """Shared implementation of the sync and async serving front ends.

    Owns everything that is not a waiting strategy: target resolution,
    the session LRU, the result cache, per-fingerprint epochs, stats
    accounting, micro-batch execution and outcome assembly.  The front
    ends differ only in how a submit waits for its micro-batch — a
    blocking leader/follower protocol (:class:`AnalyticsService`) or an
    event-driven asyncio one
    (:class:`~repro.serve.aio.AsyncAnalyticsService`).

    All core state is thread-safe: the async front end dispatches
    engine work to executor threads, so the shared pieces are locked
    exactly as for the threaded service.
    """

    name = "serve"
    description = "Thread-safe serving layer: session LRU, coalescing, result cache"

    def __init__(
        self,
        source: Optional[CorpusSource] = None,
        *,
        engine_config: Optional[GTadocConfig] = None,
        service_config: Optional[ServiceConfig] = None,
    ) -> None:
        self.config = service_config or ServiceConfig()
        self._engine_config = engine_config or GTadocConfig()
        self._sessions = LRUCache(self.config.max_sessions)
        self._results = LRUCache(
            self.config.result_cache_capacity,
            max_weight_bytes=self.config.result_cache_bytes,
            ttl=self.config.result_cache_ttl,
        )
        self._stats_lock = make_lock("serve.stats")
        self._queries = 0
        self._executed_queries = 0
        self._micro_batches = 0
        self._coalesced_queries = 0
        self._kernel_launches = 0
        self._shared_kernel_launches = 0
        # Fingerprint generations: bumped by invalidate() *before* entries
        # are dropped, so in-flight write-backs guarded on an older epoch
        # can never resurrect an invalidated entry.
        self._epoch_lock = make_lock("serve.epoch")
        self._epochs: Dict[str, int] = {}
        # Mutable-corpus tracking: per corpus uid, the last (version,
        # fingerprint) a routed query observed.  Mutations do not notify
        # the serving layer; the next query that touches the corpus sees
        # the version advance here and retires the old fingerprint's
        # entries (counted as epoch expirations, not evictions).
        self._version_lock = make_lock("serve.version")
        self._uid_versions: Dict[str, Tuple[int, str]] = {}
        self._corpus_memo = CorpusMemo(self.config.corpus_memo_capacity)
        self._default: Optional[CompressedCorpus] = (
            self._resolve_source(source) if source is not None else None
        )

    # -- the protocol surface ----------------------------------------------------------
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description=self.description,
            device="gpu",
            compressed_domain=True,
            native_sequence_length=True,
            native_file_filter=True,
            amortizes_batches=True,
            supports_traversal_choice=True,
        )

    # -- cache management --------------------------------------------------------------
    def invalidate(self, source: CorpusSource) -> int:
        """Drop every session and cached result derived from ``source``.

        Call this when a corpus's content changes under a reused name:
        the stale fingerprint's entries are removed so no query can be
        answered from outdated device state or results.  The
        fingerprint's epoch is bumped first, so queries already in
        flight cannot write their (pre-invalidation) results back
        afterwards.  Returns the number of entries dropped.
        """
        fingerprint = self._resolve_source(source).fingerprint()
        with self._epoch_lock:
            self._epochs[fingerprint] = self._epochs.get(fingerprint, 0) + 1
        self._corpus_memo.drop_fingerprint(fingerprint)
        dropped = self._sessions.remove_where(lambda key: key[0] == fingerprint)
        dropped += self._results.remove_where(lambda key: key[0][0] == fingerprint)
        self._close_windows_for(fingerprint)
        return dropped

    def _close_windows_for(self, fingerprint: str) -> None:
        """Invalidation hook: close open coalescing windows for the corpus.

        The threaded coalescer's windows simply elapse; the asyncio
        front end overrides this to wake waiting leaders immediately.
        """

    def stats(self) -> ServiceStats:
        # Cache stats are snapshotted before taking the stats lock: the
        # stats lock is a leaf (rank 60 in analysis/lockspec.py) and must
        # never be held across the cache locks (rank 30).
        session_cache = self._sessions.stats()
        result_cache = self._results.stats()
        with self._stats_lock:
            return ServiceStats(
                queries=self._queries,
                executed_queries=self._executed_queries,
                micro_batches=self._micro_batches,
                coalesced_queries=self._coalesced_queries,
                kernel_launches=self._kernel_launches,
                shared_kernel_launches=self._shared_kernel_launches,
                session_cache=session_cache,
                result_cache=result_cache,
            )

    @property
    def resident_sessions(self) -> int:
        """Device sessions currently held by the LRU."""
        return len(self._sessions)

    def session_keys(self) -> List[Tuple[str, GTadocConfig]]:
        """Resident ``(fingerprint, config)`` keys, least recently used first.

        The shard router walks these on resize to decide which sessions
        changed owner under the new shard set.
        """
        return self._sessions.keys()

    def drop_session(self, key: Tuple[str, GTadocConfig]) -> bool:
        """Evict one resident session (a no-op if it is not resident).

        Used when ownership of the session's corpus moves elsewhere —
        rebalancing, not correctness: the result cache is left alone and
        the removal is not counted as a cache invalidation.
        """
        return self._sessions.discard(key, count_invalidation=False)

    # -- the shared query path ---------------------------------------------------------
    def _prepare(
        self,
        query: Union[Query, Task, str],
        source: Optional[CorpusSource],
        engine_config: Optional[GTadocConfig],
    ) -> _PreparedQuery:
        """Resolve one query's target, validate it, count it, probe the cache."""
        query = as_query(query)
        compressed, config = self._resolve_target(source, engine_config)
        session_key = (self._observe_version(compressed), config)
        # Unknown file names must fail the offending caller before it is
        # counted as served (and, later, before it can poison a whole
        # micro-batch).
        _file_indices_for(compressed.file_names, query.files)
        with self._stats_lock:
            self._queries += 1
        cache_key = (session_key, query)
        cached = self._results.get(cache_key) if self.config.cache_results else None
        return _PreparedQuery(
            query=query,
            compressed=compressed,
            config=config,
            session_key=session_key,
            cache_key=cache_key,
            epoch=self._epoch_of(session_key[0]),
            cached=cached,
        )

    def _epoch_of(self, fingerprint: str) -> int:
        with self._epoch_lock:
            return self._epochs.get(fingerprint, 0)

    #: Bound on tracked corpus uids (oldest observation dropped first).
    _MAX_TRACKED_UIDS = 256

    def _observe_version(self, compressed: CompressedCorpus) -> str:
        """Note the corpus's current epoch; retire the previous one lazily.

        Returns the corpus's current fingerprint.  When the version
        advanced since the last routed query, the *old* fingerprint's
        generation is bumped (so in-flight write-backs die on their
        epoch guard), its warm session entries are re-keyed to the new
        fingerprint (the engine delta-syncs on next run — warmth is the
        whole point of incremental maintenance), and anything that could
        not be re-keyed is dropped as an epoch expiration.  This is the
        lazy path: nothing happens at mutation time, only on next touch.
        """
        with compressed.lock:
            uid = compressed.uid
            version = compressed.version
            fingerprint = compressed.fingerprint()
        with self._version_lock:
            last = self._uid_versions.get(uid)
            if last is not None and last[0] >= version:
                # Current, or a delayed observation of an already-retired
                # epoch — never regress the tracked version.
                return fingerprint
            self._uid_versions[uid] = (version, fingerprint)
            while len(self._uid_versions) > self._MAX_TRACKED_UIDS:
                self._uid_versions.pop(next(iter(self._uid_versions)))
        if last is None:
            return fingerprint
        old_fingerprint = last[1]
        if old_fingerprint == fingerprint:
            return fingerprint
        # Kill in-flight write-backs against the retired fingerprint.
        with self._epoch_lock:
            self._epochs[old_fingerprint] = self._epochs.get(old_fingerprint, 0) + 1
        # Carry warm sessions of this corpus object over to the new epoch.
        for key in self._sessions.keys():
            if key[0] != old_fingerprint:
                continue
            new_key = (fingerprint, key[1])
            moved = self._sessions.rekey(
                key, new_key, when=lambda resident: resident.compressed is compressed
            )
            if moved is not None:
                moved.key = new_key
                moved.epoch = self._epoch_of(fingerprint)
        # Whatever still sits under the old fingerprint (a different
        # corpus object, or cached results) expired with its epoch.
        self._sessions.expire_where(lambda key: key[0] == old_fingerprint)
        self._results.expire_where(lambda key: key[0][0] == old_fingerprint)
        self._close_windows_for(old_fingerprint)
        return fingerprint

    def _store_result(self, prepared: _PreparedQuery, outcome: RunOutcome) -> bool:
        """Write one executed outcome back to the result cache.

        The write is guarded on the epoch the query observed before
        executing — evaluated under the cache lock — so a result
        computed before an :meth:`invalidate` can never be written back
        after it (the resurrection race).
        """
        if not self.config.cache_results:
            return False
        if prepared.cache_key in self._results:
            # A coalesced peer already stored this identical (deterministic)
            # result; skip the redundant deep copy and weighing.  A resident
            # entry is never stale here: invalidation removes entries before
            # any same-key write-back can observe them.
            return False
        entry = _CachedResult.of(outcome.result, outcome.details.get("strategy"))
        # Weighing walks the whole result; only pay for it when a byte
        # budget actually consumes the weight.
        weight = (
            approx_size_bytes(entry.result)
            if self.config.result_cache_bytes is not None
            else 1
        )
        return self._results.put_if(
            prepared.cache_key,
            entry,
            guard=lambda: self._epoch_of(prepared.fingerprint) == prepared.epoch,
            weight=weight,
        )

    def _group_key(self, entry: _SessionEntry, query: Query):
        """Coalescing compatibility: same session state + traversal knobs.

        ``extras`` participates because it parameterises execution (the
        relational query spec travels there): queries whose extras
        differ must not share one engine micro-batch.
        """
        return (
            entry.key,
            query.sequence_length,
            query.files,
            query.traversal,
            query.extras,
        )

    def _entry_for(self, prepared: _PreparedQuery) -> _SessionEntry:
        key = prepared.session_key
        entry, _created = self._sessions.get_or_create(
            key,
            lambda: _SessionEntry(
                key=key,
                compressed=prepared.compressed,
                engine=GTadoc(prepared.compressed, config=prepared.config),
                epoch=prepared.epoch,
            ),
        )
        if entry.epoch < self._epoch_of(key[0]):
            # Created for a generation that has since been invalidated:
            # serve this in-flight query from it (its content is the one
            # the query addressed), but do not let it stay resident.  The
            # removal is identity-precise so a fresh post-invalidation
            # session that raced into the same slot is left alone.
            self._sessions.discard(key, when=lambda resident: resident is entry)
        return entry

    # -- internals ---------------------------------------------------------------------
    def _resolve_source(self, source: CorpusSource) -> CompressedCorpus:
        return self._corpus_memo.resolve(source)

    def _resolve_target(
        self, source: Optional[CorpusSource], engine_config: Optional[GTadocConfig]
    ) -> Tuple[CompressedCorpus, GTadocConfig]:
        """The compressed corpus + engine config one submit addresses."""
        if source is None:
            compressed = self._default
            if compressed is None:
                raise ValueError(
                    "no corpus to serve: pass source= or construct the service with one"
                )
        else:
            compressed = self._resolve_source(source)
        return compressed, engine_config or self._engine_config

    def _execute_batch(self, entry: _SessionEntry, batch: List[BatchSlot]) -> None:
        """Run one micro-batch against the entry's session and fill outcomes."""
        lead = batch[0].query
        indices = _file_indices_for(entry.compressed.file_names, lead.files)
        tasks = list(dict.fromkeys(slot.query.task for slot in batch))
        # A batch mixing distinct tasks compiles into one fused traversal
        # pass (family primitives run once); uniform batches already
        # collapse to a single execution inside run_batch.
        fused = self.config.fuse_batches and len(tasks) > 1
        runner = entry.engine.run_fused if fused else entry.engine.run_batch
        result_batch = runner(
            tasks,
            traversal=lead.traversal,
            sequence_length=lead.sequence_length,
            file_indices=indices,
            relational=lead.relational,
        )
        with self._stats_lock:
            self._micro_batches += 1
            self._executed_queries += len(batch)
            if len(batch) > 1:
                self._coalesced_queries += len(batch)
            self._kernel_launches += result_batch.total_kernel_launches
            self._shared_kernel_launches += result_batch.shared_kernel_launches
        shared = perf_from_records(result_batch.init_record, result_batch.shared_record)
        for position, slot in enumerate(batch):
            run = result_batch[slot.query.task]
            # Whichever query leads the batch carries the shared
            # construction cost, mirroring the amortized backend path.
            initialization = shared if position == 0 else PhasePerf()
            slot.outcome = RunOutcome(
                query=slot.query,
                backend=self.name,
                task=slot.query.task,
                result=shape_result(slot.query, run.result, normalized=True),
                perf=RunPerf(
                    initialization=initialization,
                    traversal=perf_from_records(run.traversal_record),
                ),
                raw=run,
                details={
                    "strategy": run.strategy.value,
                    "batch_size": len(batch),
                    "coalesced": len(batch) > 1,
                    "fused": fused,
                    "memory_pool_bytes": result_batch.memory_pool_bytes,
                    "result_cache": "miss" if self.config.cache_results else "off",
                },
            )

    def _hit_outcome(self, query: Query, cached: _CachedResult) -> RunOutcome:
        details = {"result_cache": "hit"}
        if cached.strategy is not None:
            details["strategy"] = cached.strategy
        return RunOutcome(
            query=query,
            backend=self.name,
            task=query.task,
            result=cached.fresh_result(),
            perf=RunPerf(),  # a cache hit launches no kernels
            raw=None,
            details=details,
        )

    # -- direct batch grouping (single-caller run_batch) -------------------------------
    def _plan_batch(
        self,
        queries: List[Union[Query, Task, str]],
        source: Optional[CorpusSource],
        engine_config: Optional[GTadocConfig],
    ) -> Tuple[
        List[_PreparedQuery],
        List[Optional[RunOutcome]],
        List[Tuple[_SessionEntry, List[int]]],
    ]:
        """Group a batch already in hand into micro-batches (no window needed).

        Cache hits are answered in place; the remaining queries are
        grouped by coalescing compatibility (first-seen group order,
        original order within a group) and sliced into chunks of at most
        ``max_batch_size``.  Same-task queries that differ only in
        result shaping collapse inside the engine, so a grouped batch
        launches strictly fewer kernels than the equivalent serial
        submit loop whenever the batch repeats a task.
        """
        prepared = [self._prepare(query, source, engine_config) for query in queries]
        outcomes: List[Optional[RunOutcome]] = [None] * len(prepared)
        groups: Dict[object, Tuple[_SessionEntry, List[int]]] = {}
        for index, prep in enumerate(prepared):
            if prep.cached is not None:
                outcomes[index] = self._hit_outcome(prep.query, prep.cached)
                continue
            entry = self._entry_for(prep)
            key = self._group_key(entry, prep.query)
            if key not in groups:
                groups[key] = (entry, [])
            groups[key][1].append(index)
        chunks: List[Tuple[_SessionEntry, List[int]]] = []
        limit = self.config.max_batch_size
        for entry, indices in groups.values():
            for start in range(0, len(indices), limit):
                chunks.append((entry, indices[start : start + limit]))
        return prepared, outcomes, chunks

    def _run_chunk(
        self,
        prepared: List[_PreparedQuery],
        outcomes: List[Optional[RunOutcome]],
        entry: _SessionEntry,
        indices: List[int],
    ) -> None:
        """Execute one planned micro-batch and fill its outcome slots."""
        slots = [BatchSlot(prepared[index].query) for index in indices]
        self._execute_batch(entry, slots)
        for index, slot in zip(indices, slots):
            outcomes[index] = slot.outcome
            self._store_result(prepared[index], slot.outcome)


class AnalyticsService(ServingCore):
    """Thread-safe serving front end over the G-TADOC engine.

    ``submit`` may be called concurrently from any number of worker
    threads; results are bit-identical to serial per-query execution.
    The service satisfies the :class:`~repro.api.backend.AnalyticsBackend`
    protocol (``run``/``run_batch``/``capabilities``) and is registered
    as the ``"serve"`` backend.
    """

    name = "serve"

    def __init__(
        self,
        source: Optional[CorpusSource] = None,
        *,
        engine_config: Optional[GTadocConfig] = None,
        service_config: Optional[ServiceConfig] = None,
    ) -> None:
        super().__init__(source, engine_config=engine_config, service_config=service_config)
        self._coalescer = QueryCoalescer(
            window=self.config.coalesce_window, max_batch=self.config.max_batch_size
        )

    # -- the query path ----------------------------------------------------------------
    def submit(
        self,
        query: Union[Query, Task, str],
        *,
        source: Optional[CorpusSource] = None,
        engine_config: Optional[GTadocConfig] = None,
    ) -> RunOutcome:
        """Answer one query, coalescing with compatible concurrent queries.

        ``source`` picks the corpus (the service's default when omitted);
        ``engine_config`` overrides the service's engine configuration
        for this query's session.  Thread-safe.
        """
        prepared = self._prepare(query, source, engine_config)
        if prepared.cached is not None:
            # A pure hit neither builds nor touches a session entry.
            return self._hit_outcome(prepared.query, prepared.cached)
        entry = self._entry_for(prepared)
        request = CoalescedRequest(prepared.query)
        self._coalescer.submit(
            self._group_key(entry, prepared.query),
            request,
            lambda batch: self._execute_batch(entry, batch),
        )
        outcome = request.outcome
        self._store_result(prepared, outcome)
        return outcome

    def run(self, query: Union[Query, Task, str]) -> RunOutcome:
        """:class:`AnalyticsBackend` alias for :meth:`submit`."""
        return self.submit(query)

    def run_batch(
        self,
        queries: Iterable[Union[Query, Task, str]],
        *,
        source: Optional[CorpusSource] = None,
        engine_config: Optional[GTadocConfig] = None,
    ) -> List[RunOutcome]:
        """Serve a batch already in hand, coalescing it directly.

        A single-threaded caller needs no coalescing window: compatible
        queries from the iterable are grouped into micro-batches on the
        spot, so the batch charges shared state per *group* (and
        collapses repeated tasks inside the engine) instead of paying
        one engine round trip per query.  Outcomes keep input order.
        """
        prepared, outcomes, chunks = self._plan_batch(list(queries), source, engine_config)
        for entry, indices in chunks:
            self._run_chunk(prepared, outcomes, entry, indices)
        return outcomes
