"""The thread-safe serving layer: one service, many concurrent queries.

TADOC compressed structures are built once and meant to serve many
queries, and G-TADOC's Figure-3 split exists precisely so the
initialization phase can be amortized across requests.
:class:`AnalyticsService` is the subsystem that realises that shape for
concurrent traffic:

* a bounded LRU of :class:`~repro.core.session.DeviceSession` entries,
  keyed by corpus :meth:`~repro.compression.compressor.CompressedCorpus.fingerprint`
  plus :class:`~repro.core.session.GTadocConfig`, so the expensive
  device state stays resident for the hottest corpora and is dropped
  least-recently-used first;
* query coalescing — concurrent queries compatible on required session
  state (same corpus/config/sequence length/file subset/traversal) are
  grouped into one ``run_batch`` micro-batch, charging initialization
  and shared traversal-state construction once for the whole group;
* a :class:`~repro.api.query.Query`-keyed result cache in front of the
  engines, with hit/miss/eviction statistics and explicit
  fingerprint-based invalidation for corpora that change;
* per-session locking underneath (see
  :attr:`~repro.core.session.DeviceSession.lock`), so the service's
  worker threads produce results bit-identical to serial execution.

The service itself satisfies the
:class:`~repro.api.backend.AnalyticsBackend` protocol and is registered
as the ``"serve"`` backend, so it fronts the same registry every other
engine sits behind.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analytics.base import Task
from repro.api.backend import BackendCapabilities
from repro.api.backends import CorpusSource, _as_compressed, _file_indices_for
from repro.api.outcome import PhasePerf, RunOutcome, RunPerf, perf_from_records
from repro.api.query import Query, as_query, shape_result
from repro.compression.compressor import CompressedCorpus
from repro.core.engine import GTadoc
from repro.core.session import GTadocConfig
from repro.data.corpus import Corpus
from repro.serve.caches import CacheStats, LRUCache
from repro.serve.coalescer import CoalescedRequest, QueryCoalescer

__all__ = ["ServiceConfig", "ServiceStats", "AnalyticsService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable parameters of the serving layer."""

    #: Bound on resident device sessions (distinct corpus/config pairs).
    max_sessions: int = 4
    #: Bound on cached query results.
    result_cache_capacity: int = 1024
    #: Serve repeated identical queries from the result cache.
    cache_results: bool = True
    #: Seconds a micro-batch leader holds the door open for concurrent
    #: compatible queries (0 disables the wait; coalescing then only
    #: captures requests that queued while a batch was executing).
    coalesce_window: float = 0.002
    #: Upper bound on one micro-batch's size.
    max_batch_size: int = 16
    #: Bound on memoized raw-corpus compressions (oldest dropped first).
    corpus_memo_capacity: int = 32

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.result_cache_capacity < 1:
            raise ValueError("result_cache_capacity must be >= 1")
        if self.coalesce_window < 0:
            raise ValueError("coalesce_window must be non-negative")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.corpus_memo_capacity < 1:
            raise ValueError("corpus_memo_capacity must be >= 1")


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's serving counters."""

    #: Queries answered (result-cache hits included).
    queries: int
    #: Queries that reached an engine (cache misses).
    executed_queries: int
    #: Engine micro-batches dispatched.
    micro_batches: int
    #: Executed queries that shared their micro-batch with at least one other.
    coalesced_queries: int
    #: Simulated kernel launches charged by all micro-batches.
    kernel_launches: int
    #: The initialization/shared-state share of those launches.
    shared_kernel_launches: int
    session_cache: CacheStats
    result_cache: CacheStats

    @property
    def launches_per_query(self) -> float:
        """Kernel launches per answered query (cache hits pull this down)."""
        return self.kernel_launches / self.queries if self.queries else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.executed_queries / self.micro_batches if self.micro_batches else 0.0


@dataclass
class _SessionEntry:
    """One resident corpus/config pair: compressed form + its engine."""

    key: Tuple[str, GTadocConfig]
    compressed: CompressedCorpus
    engine: GTadoc


@dataclass(frozen=True)
class _CachedResult:
    """What the result cache stores: the shaped result + the strategy used.

    The stored result is a private deep copy and every hit hands out a
    fresh copy, so no caller mutation can poison the cache (or another
    caller's outcome) and the bit-identical-to-serial guarantee holds.
    """

    result: object
    strategy: Optional[str]

    @classmethod
    def of(cls, result: object, strategy: Optional[str]) -> "_CachedResult":
        return cls(result=copy.deepcopy(result), strategy=strategy)

    def fresh_result(self) -> object:
        return copy.deepcopy(self.result)


class AnalyticsService:
    """Thread-safe serving front end over the G-TADOC engine.

    ``submit`` may be called concurrently from any number of worker
    threads; results are bit-identical to serial per-query execution.
    The service satisfies the :class:`~repro.api.backend.AnalyticsBackend`
    protocol (``run``/``run_batch``/``capabilities``) and is registered
    as the ``"serve"`` backend.
    """

    name = "serve"

    def __init__(
        self,
        source: Optional[CorpusSource] = None,
        *,
        engine_config: Optional[GTadocConfig] = None,
        service_config: Optional[ServiceConfig] = None,
    ) -> None:
        self.config = service_config or ServiceConfig()
        self._engine_config = engine_config or GTadocConfig()
        self._sessions = LRUCache(self.config.max_sessions)
        self._results = LRUCache(self.config.result_cache_capacity)
        self._coalescer = QueryCoalescer(
            window=self.config.coalesce_window, max_batch=self.config.max_batch_size
        )
        self._stats_lock = threading.Lock()
        self._queries = 0
        self._executed_queries = 0
        self._micro_batches = 0
        self._coalesced_queries = 0
        self._kernel_launches = 0
        self._shared_kernel_launches = 0
        # Raw corpora are compressed once and memoized per object (bounded;
        # oldest entries dropped first), so a caller may keep handing the
        # same Corpus to every submit without re-compressing.
        self._compressed_by_corpus: Dict[int, Tuple[Corpus, CompressedCorpus]] = {}
        self._corpus_lock = threading.Lock()
        self._default: Optional[CompressedCorpus] = (
            self._resolve_source(source) if source is not None else None
        )

    # -- the query path ----------------------------------------------------------------
    def submit(
        self,
        query: Union[Query, Task, str],
        *,
        source: Optional[CorpusSource] = None,
        engine_config: Optional[GTadocConfig] = None,
    ) -> RunOutcome:
        """Answer one query, coalescing with compatible concurrent queries.

        ``source`` picks the corpus (the service's default when omitted);
        ``engine_config`` overrides the service's engine configuration
        for this query's session.  Thread-safe.
        """
        query = as_query(query)
        compressed, config = self._resolve_target(source, engine_config)
        session_key = (compressed.fingerprint(), config)
        # Unknown file names must fail the offending caller before it is
        # counted as served (and, later, before it can poison a whole
        # micro-batch).
        _file_indices_for(compressed.file_names, query.files)
        with self._stats_lock:
            self._queries += 1

        cache_key = (session_key, query)
        if self.config.cache_results:
            cached = self._results.get(cache_key)
            if cached is not None:
                # A pure hit neither builds nor touches a session entry.
                return self._hit_outcome(query, cached)

        entry = self._entry_for(session_key, compressed, config)
        request = CoalescedRequest(query)
        group_key = (entry.key, query.sequence_length, query.files, query.traversal)
        self._coalescer.submit(
            group_key, request, lambda batch: self._execute_batch(entry, batch)
        )
        outcome = request.outcome
        if self.config.cache_results:
            self._results.put(
                cache_key,
                _CachedResult.of(outcome.result, outcome.details.get("strategy")),
            )
        return outcome

    def run(self, query: Union[Query, Task, str]) -> RunOutcome:
        """:class:`AnalyticsBackend` alias for :meth:`submit`."""
        return self.submit(query)

    def run_batch(self, queries: Iterable[Union[Query, Task, str]]) -> List[RunOutcome]:
        """Serve queries in order (concurrency comes from caller threads)."""
        return [self.submit(query) for query in queries]

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="Thread-safe serving layer: session LRU, coalescing, result cache",
            device="gpu",
            compressed_domain=True,
            native_sequence_length=True,
            native_file_filter=True,
            amortizes_batches=True,
            supports_traversal_choice=True,
        )

    # -- cache management --------------------------------------------------------------
    def invalidate(self, source: CorpusSource) -> int:
        """Drop every session and cached result derived from ``source``.

        Call this when a corpus's content changes under a reused name:
        the stale fingerprint's entries are removed so no query can be
        answered from outdated device state or results.  Returns the
        number of entries dropped.
        """
        fingerprint = self._resolve_source(source).fingerprint()
        with self._corpus_lock:
            self._compressed_by_corpus = {
                key: value
                for key, value in self._compressed_by_corpus.items()
                if value[1].fingerprint() != fingerprint
            }
        dropped = self._sessions.remove_where(lambda key: key[0] == fingerprint)
        dropped += self._results.remove_where(lambda key: key[0][0] == fingerprint)
        return dropped

    def stats(self) -> ServiceStats:
        with self._stats_lock:
            return ServiceStats(
                queries=self._queries,
                executed_queries=self._executed_queries,
                micro_batches=self._micro_batches,
                coalesced_queries=self._coalesced_queries,
                kernel_launches=self._kernel_launches,
                shared_kernel_launches=self._shared_kernel_launches,
                session_cache=self._sessions.stats(),
                result_cache=self._results.stats(),
            )

    @property
    def resident_sessions(self) -> int:
        """Device sessions currently held by the LRU."""
        return len(self._sessions)

    # -- internals ---------------------------------------------------------------------
    def _resolve_source(self, source: CorpusSource) -> CompressedCorpus:
        if isinstance(source, CompressedCorpus):
            return source
        if isinstance(source, Corpus):
            with self._corpus_lock:
                memo = self._compressed_by_corpus.get(id(source))
                if memo is not None and memo[0] is source:
                    return memo[1]
                compressed = _as_compressed(source)
                self._compressed_by_corpus[id(source)] = (source, compressed)
                while len(self._compressed_by_corpus) > self.config.corpus_memo_capacity:
                    self._compressed_by_corpus.pop(next(iter(self._compressed_by_corpus)))
                return compressed
        raise TypeError(f"expected a Corpus or CompressedCorpus, got {type(source).__name__}")

    def _resolve_target(
        self, source: Optional[CorpusSource], engine_config: Optional[GTadocConfig]
    ) -> Tuple[CompressedCorpus, GTadocConfig]:
        """The compressed corpus + engine config one submit addresses."""
        if source is None:
            compressed = self._default
            if compressed is None:
                raise ValueError(
                    "no corpus to serve: pass source= or construct the service with one"
                )
        else:
            compressed = self._resolve_source(source)
        return compressed, engine_config or self._engine_config

    def _entry_for(
        self,
        key: Tuple[str, GTadocConfig],
        compressed: CompressedCorpus,
        config: GTadocConfig,
    ) -> _SessionEntry:
        entry, _created = self._sessions.get_or_create(
            key,
            lambda: _SessionEntry(
                key=key, compressed=compressed, engine=GTadoc(compressed, config=config)
            ),
        )
        return entry

    def _execute_batch(self, entry: _SessionEntry, batch: List[CoalescedRequest]) -> None:
        """Run one micro-batch against the entry's session and fill outcomes."""
        lead = batch[0].query
        indices = _file_indices_for(entry.compressed.file_names, lead.files)
        result_batch = entry.engine.run_batch(
            [request.query.task for request in batch],
            traversal=lead.traversal,
            sequence_length=lead.sequence_length,
            file_indices=indices,
        )
        with self._stats_lock:
            self._micro_batches += 1
            self._executed_queries += len(batch)
            if len(batch) > 1:
                self._coalesced_queries += len(batch)
            self._kernel_launches += result_batch.total_kernel_launches
            self._shared_kernel_launches += result_batch.shared_kernel_launches
        shared = perf_from_records(result_batch.init_record, result_batch.shared_record)
        for position, request in enumerate(batch):
            run = result_batch[request.query.task]
            # Whichever query leads the batch carries the shared
            # construction cost, mirroring the amortized backend path.
            initialization = shared if position == 0 else PhasePerf()
            request.outcome = RunOutcome(
                query=request.query,
                backend=self.name,
                task=request.query.task,
                result=shape_result(request.query, run.result),
                perf=RunPerf(
                    initialization=initialization,
                    traversal=perf_from_records(run.traversal_record),
                ),
                raw=run,
                details={
                    "strategy": run.strategy.value,
                    "batch_size": len(batch),
                    "coalesced": len(batch) > 1,
                    "memory_pool_bytes": result_batch.memory_pool_bytes,
                    "result_cache": "miss" if self.config.cache_results else "off",
                },
            )

    def _hit_outcome(self, query: Query, cached: _CachedResult) -> RunOutcome:
        details = {"result_cache": "hit"}
        if cached.strategy is not None:
            details["strategy"] = cached.strategy
        return RunOutcome(
            query=query,
            backend=self.name,
            task=query.task,
            result=cached.fresh_result(),
            perf=RunPerf(),  # a cache hit launches no kernels
            raw=None,
            details=details,
        )
