"""Length-prefixed wire codec for the process-shard transport.

A :class:`~repro.serve.transport.ProcessTransport` talks to its worker
over a byte pipe, so everything the serving data plane exchanges —
queries, outcomes, corpus snapshots/deltas, stats — must cross a
process boundary without relying on pickle (whose byte stream is
neither stable across sessions nor safe to speak over a real socket
later).  This module is that contract:

* **Value codec.**  JSON scalars (``None``/``bool``/``int``/``float``/
  ``str``) pass through untouched; every non-scalar value becomes a
  two-element JSON array ``[tag, payload]``.  Scalars are never arrays,
  so the encoding is unambiguous without escaping.  The codec is
  *closed*: encoding a type it does not know raises ``TypeError``
  instead of silently degrading, so a new field sneaking into a wire
  type fails loudly in the round-trip tests rather than corrupting a
  worker.
* **Framing.**  :func:`encode_frame` prefixes the JSON body with its
  big-endian ``uint32`` length; :func:`decode_frame` verifies the
  prefix against the received byte count.  ``multiprocessing`` pipes
  already preserve message boundaries, so the prefix is redundancy
  there — an integrity tripwire against torn writes — and becomes the
  actual record separator when the same codec runs over a raw socket.
* **Corpus shipping.**  :func:`corpus_snapshot` captures a coherent
  full replica (content + ``uid``/``version``/``fingerprint`` identity)
  under the corpus lock; :func:`corpus_from_snapshot` and
  :func:`adopt_corpus_snapshot` rebuild it worker-side — adopting *in
  place* for a known uid, because serving cores rekey warm state by
  corpus object identity.

Numeric values are coerced through ``int()``/``float()`` on encode, so
numpy scalars inside task results arrive as plain Python numbers; JSON
keeps the int/float distinction and round-trips floats exactly (repr
round-trip), so decoded results compare bit-identical.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.analytics.base import Task
from repro.api.outcome import PhasePerf, RunOutcome, RunPerf
from repro.api.query import FrozenExtras, Query
from repro.compression.compressor import CompressedCorpus
from repro.compression.dictionary import Dictionary
from repro.compression.grammar import Grammar, Rule
from repro.core.session import GTadocConfig
from repro.core.strategy import TraversalStrategy
from repro.relational.spec import (
    Aggregate,
    Condition,
    FieldSpec,
    RelationalQuery,
    RowSchema,
)
from repro.serve.caches import CacheStats
from repro.serve.service import ServiceStats
from repro.serve.trace import MutationEvent

__all__ = [
    "WireError",
    "encode_value",
    "decode_value",
    "encode_frame",
    "decode_frame",
    "corpus_snapshot",
    "corpus_from_snapshot",
    "adopt_corpus_snapshot",
    "corpus_delta",
    "apply_corpus_delta",
]

#: Frame header: big-endian uint32 body length.
_HEADER = struct.Struct(">I")

#: One tag per encodable non-scalar type (arrays ``[tag, payload]``).
_TAG_LIST = "L"
_TAG_TUPLE = "T"
_TAG_DICT = "D"
_TAG_TASK = "K"
_TAG_STRATEGY = "S"
_TAG_RELATIONAL = "R"
_TAG_QUERY = "q"
_TAG_MUTATION = "M"
_TAG_PHASE_PERF = "h"
_TAG_RUN_PERF = "f"
_TAG_OUTCOME = "O"
_TAG_ENGINE_CONFIG = "G"
_TAG_CACHE_STATS = "c"
_TAG_SERVICE_STATS = "s"


class WireError(ValueError):
    """A frame or payload that violates the wire contract."""


# ----------------------------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------------------------

def _encode_relational(spec: RelationalQuery) -> Dict[str, Any]:
    return {
        "schema": {
            "delimiter": spec.schema.delimiter,
            "fields": [
                [f.name, f.type, f.column, f.key] for f in spec.schema.fields
            ],
        },
        "predicate": [[c.field, c.op, c.value] for c in spec.predicate],
        "group_by": spec.group_by,
        "aggregates": [[a.op, a.field] for a in spec.aggregates],
        "order_by": spec.order_by,
    }


def _decode_relational(payload: Dict[str, Any]) -> RelationalQuery:
    schema = RowSchema(
        fields=tuple(
            FieldSpec(name=name, type=type_, column=column, key=key)
            for name, type_, column, key in payload["schema"]["fields"]
        ),
        delimiter=payload["schema"]["delimiter"],
    )
    return RelationalQuery(
        schema=schema,
        predicate=tuple(
            Condition(field=field, op=op, value=value)
            for field, op, value in payload["predicate"]
        ),
        group_by=payload["group_by"],
        aggregates=tuple(
            Aggregate(op=op, field=field) for op, field in payload["aggregates"]
        ),
        order_by=payload["order_by"],
    )


def encode_value(value: Any) -> Any:
    """Lower ``value`` to the tagged JSON-safe form (closed codec)."""
    # The enums subclass ``str``, so they must be tagged *before* the
    # scalar passthrough or they would decode as bare strings.
    if isinstance(value, Task):
        return [_TAG_TASK, value.value]
    if isinstance(value, TraversalStrategy):
        return [_TAG_STRATEGY, value.value]
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, list):
        return [_TAG_LIST, [encode_value(item) for item in value]]
    if isinstance(value, tuple):
        return [_TAG_TUPLE, [encode_value(item) for item in value]]
    if isinstance(value, (dict, FrozenExtras)):
        return [
            _TAG_DICT,
            [[encode_value(key), encode_value(item)] for key, item in value.items()],
        ]
    if isinstance(value, RelationalQuery):
        return [_TAG_RELATIONAL, _encode_relational(value)]
    if isinstance(value, Query):
        return [
            _TAG_QUERY,
            {
                "task": value.task.value,
                "sequence_length": value.sequence_length,
                "top_k": value.top_k,
                "files": list(value.files) if value.files is not None else None,
                "terms": list(value.terms) if value.terms is not None else None,
                "traversal": value.traversal.value if value.traversal else None,
                "extras": [
                    [key, encode_value(item)]
                    for key, item in value.extras.items_tuple
                ],
            },
        ]
    if isinstance(value, MutationEvent):
        return [
            _TAG_MUTATION,
            {
                "kind": value.kind,
                "documents": [[name, text] for name, text in value.documents],
                "source": value.source,
            },
        ]
    if isinstance(value, PhasePerf):
        return [
            _TAG_PHASE_PERF,
            [value.kernel_launches, value.ops, value.memory_bytes, value.pcie_bytes],
        ]
    if isinstance(value, RunPerf):
        return [
            _TAG_RUN_PERF,
            [encode_value(value.initialization), encode_value(value.traversal)],
        ]
    if isinstance(value, RunOutcome):
        # ``raw`` holds engine-internal objects (device sessions, run
        # records) that have no business crossing a process boundary;
        # it is deliberately dropped, like the in-process result cache
        # already does for cached hits.
        return [
            _TAG_OUTCOME,
            {
                "query": encode_value(value.query),
                "backend": value.backend,
                "task": value.task.value,
                "result": encode_value(value.result),
                "perf": encode_value(value.perf),
                "details": encode_value(dict(value.details)),
            },
        ]
    if isinstance(value, GTadocConfig):
        return [
            _TAG_ENGINE_CONFIG,
            {
                "sequence_length": value.sequence_length,
                "oversize_threshold": value.oversize_threshold,
                "max_group_size": value.max_group_size,
                "use_memory_pool": value.use_memory_pool,
                "needs_pcie_transfer": value.needs_pcie_transfer,
                "kernel_mode": value.kernel_mode,
            },
        ]
    if isinstance(value, CacheStats):
        return [
            _TAG_CACHE_STATS,
            {
                "capacity": value.capacity,
                "size": value.size,
                "hits": value.hits,
                "misses": value.misses,
                "evictions": value.evictions,
                "invalidations": value.invalidations,
                "expirations": value.expirations,
                "weight_bytes": value.weight_bytes,
                "weight_capacity": value.weight_capacity,
                "ttl": value.ttl,
            },
        ]
    if isinstance(value, ServiceStats):
        return [
            _TAG_SERVICE_STATS,
            {
                "queries": value.queries,
                "executed_queries": value.executed_queries,
                "micro_batches": value.micro_batches,
                "coalesced_queries": value.coalesced_queries,
                "kernel_launches": value.kernel_launches,
                "shared_kernel_launches": value.shared_kernel_launches,
                "session_cache": encode_value(value.session_cache),
                "result_cache": encode_value(value.result_cache),
            },
        ]
    raise TypeError(f"wire codec cannot encode {type(value).__name__}: {value!r}")


def decode_value(encoded: Any) -> Any:
    """Invert :func:`encode_value`."""
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if not isinstance(encoded, list) or len(encoded) != 2:
        raise WireError(f"malformed wire value: {encoded!r}")
    tag, payload = encoded
    if tag == _TAG_LIST:
        return [decode_value(item) for item in payload]
    if tag == _TAG_TUPLE:
        return tuple(decode_value(item) for item in payload)
    if tag == _TAG_DICT:
        return {decode_value(key): decode_value(item) for key, item in payload}
    if tag == _TAG_TASK:
        return Task.from_name(payload)
    if tag == _TAG_STRATEGY:
        return TraversalStrategy(payload)
    if tag == _TAG_RELATIONAL:
        return _decode_relational(payload)
    if tag == _TAG_QUERY:
        return Query(
            task=Task.from_name(payload["task"]),
            sequence_length=payload["sequence_length"],
            top_k=payload["top_k"],
            files=tuple(payload["files"]) if payload["files"] is not None else None,
            terms=tuple(payload["terms"]) if payload["terms"] is not None else None,
            traversal=(
                TraversalStrategy(payload["traversal"])
                if payload["traversal"] is not None
                else None
            ),
            extras={key: decode_value(item) for key, item in payload["extras"]},
        )
    if tag == _TAG_MUTATION:
        return MutationEvent(
            kind=payload["kind"],
            documents=tuple((name, text) for name, text in payload["documents"]),
            source=payload["source"],
        )
    if tag == _TAG_PHASE_PERF:
        launches, ops, memory_bytes, pcie_bytes = payload
        return PhasePerf(
            kernel_launches=launches,
            ops=ops,
            memory_bytes=memory_bytes,
            pcie_bytes=pcie_bytes,
        )
    if tag == _TAG_RUN_PERF:
        initialization, traversal = payload
        return RunPerf(
            initialization=decode_value(initialization),
            traversal=decode_value(traversal),
        )
    if tag == _TAG_OUTCOME:
        return RunOutcome(
            query=decode_value(payload["query"]),
            backend=payload["backend"],
            task=Task.from_name(payload["task"]),
            result=decode_value(payload["result"]),
            perf=decode_value(payload["perf"]),
            raw=None,
            details=decode_value(payload["details"]),
        )
    if tag == _TAG_ENGINE_CONFIG:
        return GTadocConfig(**payload)
    if tag == _TAG_CACHE_STATS:
        return CacheStats(**payload)
    if tag == _TAG_SERVICE_STATS:
        return ServiceStats(
            queries=payload["queries"],
            executed_queries=payload["executed_queries"],
            micro_batches=payload["micro_batches"],
            coalesced_queries=payload["coalesced_queries"],
            kernel_launches=payload["kernel_launches"],
            shared_kernel_launches=payload["shared_kernel_launches"],
            session_cache=decode_value(payload["session_cache"]),
            result_cache=decode_value(payload["result_cache"]),
        )
    raise WireError(f"unknown wire tag {tag!r}")


# ----------------------------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------------------------

def encode_frame(value: Any) -> bytes:
    """One wire frame: uint32 body length + the JSON body."""
    body = json.dumps(encode_value(value), separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def decode_frame(frame: bytes) -> Any:
    """Decode one frame, verifying the length prefix against the bytes."""
    if len(frame) < _HEADER.size:
        raise WireError(f"truncated frame: {len(frame)} bytes")
    (length,) = _HEADER.unpack_from(frame)
    body = frame[_HEADER.size:]
    if len(body) != length:
        raise WireError(
            f"frame length mismatch: header says {length} bytes, got {len(body)}"
        )
    return decode_value(json.loads(body.decode("utf-8")))


# ----------------------------------------------------------------------------------------
# Corpus shipping
# ----------------------------------------------------------------------------------------

def corpus_snapshot(compressed: CompressedCorpus) -> Dict[str, Any]:
    """A coherent full-replica payload of ``compressed``'s current epoch.

    Content (the on-disk serializer's shape) plus identity: ``uid``,
    ``version`` and the current ``fingerprint`` — the worker's replica
    is stamped with all three so routing identity and the mutable-corpora
    epoch protocol survive the process boundary.
    """
    with compressed.lock:
        return {
            "name": compressed.name,
            "file_names": list(compressed.file_names),
            "splitter_ids": list(compressed.splitter_ids),
            "original_size_bytes": compressed.original_size_bytes,
            "original_tokens": compressed.original_tokens,
            "dictionary": compressed.dictionary.to_dict(),
            "rules": [list(rule.symbols) for rule in compressed.grammar],
            "uid": compressed.uid,
            "version": compressed.version,
            "fingerprint": compressed.fingerprint(),
        }


def _snapshot_content(payload: Dict[str, Any]) -> Tuple[Dictionary, Grammar]:
    dictionary = Dictionary.from_dict(payload["dictionary"])
    rules = [
        Rule(rule_id=index, symbols=list(body))
        for index, body in enumerate(payload["rules"])
    ]
    return dictionary, Grammar(rules)


def corpus_from_snapshot(payload: Dict[str, Any]) -> CompressedCorpus:
    """Materialize a fresh replica from a :func:`corpus_snapshot` payload."""
    dictionary, grammar = _snapshot_content(payload)
    replica = CompressedCorpus(
        name=payload["name"],
        dictionary=dictionary,
        grammar=grammar,
        file_names=payload["file_names"],
        splitter_ids=payload["splitter_ids"],
        original_size_bytes=int(payload["original_size_bytes"]),
        original_tokens=int(payload["original_tokens"]),
    )
    replica.align_replica(
        uid=payload["uid"],
        version=payload["version"],
        fingerprint=payload["fingerprint"],
    )
    return replica


def adopt_corpus_snapshot(replica: CompressedCorpus, payload: Dict[str, Any]) -> None:
    """Swap a snapshot into an *existing* replica in place.

    Serving cores rekey warm sessions by corpus object identity when
    they observe a new epoch, so a worker must keep exactly one
    :class:`CompressedCorpus` object per uid for its whole lifetime.
    """
    dictionary, grammar = _snapshot_content(payload)
    with replica.lock:
        replica.adopt_epoch(
            dictionary=dictionary,
            grammar=grammar,
            file_names=payload["file_names"],
            splitter_ids=payload["splitter_ids"],
            original_size_bytes=int(payload["original_size_bytes"]),
            original_tokens=int(payload["original_tokens"]),
        )
        replica.align_replica(
            uid=payload["uid"],
            version=payload["version"],
            fingerprint=payload["fingerprint"],
        )


def corpus_delta(
    compressed: CompressedCorpus, since_version: int, known_files: int
) -> Optional[Dict[str, Any]]:
    """An append-only delta since ``since_version``, or ``None``.

    ``None`` means the delta path is unavailable — the epoch gap left
    the mutation-log window, or a rebuild (replace/remove) intervened —
    and the caller must ship a full snapshot instead.  The delta carries
    the appended files' token streams plus the target identity; applying
    it via :func:`apply_corpus_delta` reproduces the primary's grammar
    bit for bit because online Sequitur appends are deterministic and
    grouping-insensitive.
    """
    with compressed.lock:
        kinds = compressed.mutations_since(since_version)
        if kinds is None or any(kind != "append" for kind in kinds):
            return None
        if known_files > len(compressed.file_names):
            return None
        return {
            "uid": compressed.uid,
            "version": compressed.version,
            "fingerprint": compressed.fingerprint(),
            "appended": [
                [name, compressed.expand_file_tokens(index)]
                for index, name in enumerate(compressed.file_names)
                if index >= known_files
            ],
        }


def apply_corpus_delta(replica: CompressedCorpus, payload: Dict[str, Any]) -> None:
    """Apply an append delta to a replica and re-stamp its identity."""
    appended = {name: list(tokens) for name, tokens in payload["appended"]}
    with replica.lock:
        if appended:
            replica.append_files(appended)
        replica.align_replica(
            uid=payload["uid"],
            version=payload["version"],
            fingerprint=payload["fingerprint"],
        )
