"""Replay a request trace through the serving layer and measure it.

Three helpers serve the CLI (``gtadoc serve-bench``), the serving
benchmarks and the serving examples:

* :func:`replay_trace` replays a trace with N worker threads against a
  thread-based :class:`~repro.serve.service.AnalyticsService`;
* :func:`replay_trace_async` replays the same kind of trace through an
  :class:`~repro.serve.aio.AsyncAnalyticsService` on one event loop,
  with a bounded number of requests in flight;
* :func:`replay_trace_sharded` replays a (possibly multi-corpus) trace
  through a :class:`~repro.serve.sharding.ShardedAnalyticsService` —
  threaded callers by default, or one event loop in the async
  shard-router mode.

A trace is a sequence of :class:`~repro.api.query.Query` objects, or —
for multi-corpus serving — ``(source_index, Query)`` pairs indexing
into a list of compressed corpora.  It may also interleave
:class:`~repro.serve.trace.MutationEvent` barriers (live corpora):
the in-flight queries drain, the event goes through the corpus's
incremental mutation API, and the replay continues — the serving tiers
pick up the new epoch lazily.  All replays optionally execute the same
trace serially with per-query :meth:`GTadoc.run` semantics (a fresh
session per query — the paper's full per-query cost, recompressed from
scratch after every mutation), check the served results for
bit-identity against that shared baseline, and report
launches-per-query plus cache/coalescing statistics side by side in
one :class:`ReplayReport`.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, replace as dataclass_replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.analysis.lockcheck import make_lock
from repro.api.backends import GTadocBackend
from repro.api.outcome import RunOutcome
from repro.api.query import Query
from repro.compression.compressor import CompressedCorpus, TadocCompressor
from repro.core.session import GTadocConfig
from repro.data.corpus import Corpus
from repro.serve.service import AnalyticsService, ServiceConfig, ServiceStats
from repro.serve.trace import MutationEvent

__all__ = ["ReplayReport", "replay_trace", "replay_trace_async", "replay_trace_sharded"]

#: One trace entry: a bare query (source 0), an explicit (source, query)
#: pair, or a mutation barrier (its source rides on the event itself).
TraceItem = Union[Query, Tuple[int, Query], MutationEvent]

#: One replay phase: the mutations applied at its barrier, then its
#: queries as ``(outcome slot, source index, query)`` triples.
_Phase = Tuple[List[Tuple[int, MutationEvent]], List[Tuple[int, int, Query]]]


@dataclass(frozen=True)
class ReplayReport:
    """Serving replay vs. serial per-query execution, side by side."""

    num_requests: int
    #: Worker threads (threaded replay) or max in-flight requests (async).
    num_threads: int
    #: Outcomes in trace order, as served by the service.
    outcomes: List[RunOutcome]
    #: Service counters for exactly this replay — a
    #: :class:`~repro.serve.service.ServiceStats` for single-service
    #: replays, a :class:`~repro.serve.sharding.ShardedStats` for
    #: sharded ones (both expose ``kernel_launches``).
    stats: "ServiceStats"
    #: Total kernel launches of the serial per-query replay
    #: (``None`` when the serial baseline was skipped).
    serial_launches: Optional[int] = None
    #: Whether every served result equalled its serial counterpart.
    results_match: Optional[bool] = None
    #: How the trace was driven: ``"threads"``, ``"asyncio"``,
    #: ``"threads+sharded"`` or ``"asyncio+sharded"``.
    mode: str = "threads"
    #: Shard count of a sharded replay (``None`` otherwise).
    num_shards: Optional[int] = None
    #: Wall-clock seconds the served replay took (driving the whole
    #: trace through the service, excluding setup and the baseline).
    elapsed_seconds: Optional[float] = None
    #: Wall-clock seconds of the serial per-query baseline replay
    #: (``None`` when the baseline was skipped).
    serial_elapsed_seconds: Optional[float] = None
    #: Mutation events the trace applied mid-replay (live-corpus traces).
    num_mutations: int = 0
    #: Shard transport the pool deployed (sharded replays only):
    #: ``"inprocess"`` or ``"process"``.
    transport: Optional[str] = None

    @property
    def requests_per_second(self) -> Optional[float]:
        if self.elapsed_seconds is None or self.elapsed_seconds <= 0:
            return None
        return self.num_requests / self.elapsed_seconds

    @property
    def wall_clock_speedup(self) -> Optional[float]:
        """Serial baseline seconds over served seconds (higher is better)."""
        if self.elapsed_seconds is None or self.serial_elapsed_seconds is None:
            return None
        if self.elapsed_seconds <= 0:
            return None
        return self.serial_elapsed_seconds / self.elapsed_seconds

    @property
    def served_launches_per_query(self) -> float:
        return self.stats.kernel_launches / self.num_requests if self.num_requests else 0.0

    @property
    def serial_launches_per_query(self) -> Optional[float]:
        if self.serial_launches is None or not self.num_requests:
            return None
        return self.serial_launches / self.num_requests

    @property
    def launch_reduction(self) -> Optional[float]:
        """Fraction of serial launches the serving layer avoided."""
        if self.serial_launches is None or self.serial_launches == 0:
            return None
        return 1.0 - self.stats.kernel_launches / self.serial_launches


def _normalize_trace(
    sources: Union[CompressedCorpus, Sequence[CompressedCorpus]],
    trace: Sequence[TraceItem],
) -> Tuple[List[CompressedCorpus], List[_Phase], int, int]:
    """Resolve a trace into mutation-delimited phases.

    Returns ``(corpora, phases, num_queries, num_mutations)``.  Queries
    are numbered with dense outcome slots in trace order; each
    :class:`~repro.serve.trace.MutationEvent` opens a new phase (a
    replay barrier: the previous phase's queries drain first).  A trace
    without mutations collapses to a single phase — the pre-mutable
    replay shape, byte for byte.
    """
    corpora = [sources] if isinstance(sources, CompressedCorpus) else list(sources)
    if not corpora:
        raise ValueError("a replay needs at least one compressed corpus")
    phases: List[_Phase] = [([], [])]
    num_queries = 0
    num_mutations = 0
    for item in trace:
        if isinstance(item, MutationEvent):
            if not 0 <= item.source < len(corpora):
                raise ValueError(
                    f"trace mutates source {item.source} but only {len(corpora)} given"
                )
            if phases[-1][1]:
                phases.append(([(item.source, item)], []))
            else:  # back-to-back mutations share one barrier
                phases[-1][0].append((item.source, item))
            num_mutations += 1
            continue
        if isinstance(item, Query):
            index, query = 0, item
        else:
            index, query = item
            if not 0 <= index < len(corpora):
                raise ValueError(f"trace names source {index} but only {len(corpora)} given")
        phases[-1][1].append((num_queries, int(index), query))
        num_queries += 1
    return corpora, phases, num_queries, num_mutations


def _token_snapshots(corpora: Sequence[CompressedCorpus]) -> List[dict]:
    """Each corpus's current ``{file name: tokens}`` (pre-replay state)."""
    return [
        {
            name: compressed.expand_file_tokens(index)
            for index, name in enumerate(compressed.file_names)
        }
        for compressed in corpora
    ]


def _serial_comparison(
    corpora: Sequence[CompressedCorpus],
    phases: Sequence[_Phase],
    engine_config: Optional[GTadocConfig],
    outcomes: Sequence[RunOutcome],
    snapshots: Optional[List[dict]] = None,
) -> Tuple[int, bool, float]:
    """Replay serially (fresh session per query) and check bit-identity.

    This is the one shared baseline: every replay flavour — threaded,
    asyncio and sharded — measures against exactly this per-query cost.
    For a mutating trace, ``snapshots`` holds every corpus's pre-replay
    token streams: the baseline applies each barrier's events to the
    snapshot and recompresses the corpus *from scratch*, so the
    comparison is also an end-to-end incremental-vs-scratch equivalence
    check.  Returns total launches, the bit-identity verdict, and the
    wall-clock seconds the serial replay took.
    """

    def scratch_backend(index: int) -> GTadocBackend:
        compressed = TadocCompressor().compress(
            Corpus.from_token_streams(snapshots[index])
        )
        return GTadocBackend(compressed, config=engine_config, amortize=False)

    if snapshots is None:
        serial = [
            GTadocBackend(compressed, config=engine_config, amortize=False)
            for compressed in corpora
        ]
    else:
        serial = [scratch_backend(index) for index in range(len(corpora))]
    launches = 0
    match = True
    started = time.perf_counter()
    for mutations, queries in phases:
        if mutations and snapshots is not None:
            for source_index, event in mutations:
                event.apply_to_documents(snapshots[source_index])
            for source_index in dict.fromkeys(index for index, _event in mutations):
                serial[source_index] = scratch_backend(source_index)
        for slot, source_index, query in queries:
            reference = serial[source_index].run(query)
            launches += reference.kernel_launches
            if outcomes[slot].result != reference.result:
                match = False
    elapsed = time.perf_counter() - started
    return launches, match, elapsed


def _drive_threaded(
    submit,
    items: Sequence[Tuple[int, Query]],
    num_threads: int,
) -> List[RunOutcome]:
    """Drain ``items`` with a pool of claiming worker threads.

    Workers share a stop flag checked in the claim loop: the first
    error stops every worker before it claims another query (instead of
    letting the pool drain the rest of the trace against a failed
    replay), and the original exception is re-raised unmasked in the
    caller's thread.
    """
    outcomes: List[Optional[RunOutcome]] = [None] * len(items)
    errors: List[BaseException] = []
    cursor = {"next": 0}
    cursor_lock = make_lock("replay.cursor")
    stop = threading.Event()

    def worker() -> None:
        while not stop.is_set():
            with cursor_lock:
                index = cursor["next"]
                if index >= len(items):
                    return
                cursor["next"] = index + 1
            try:
                outcomes[index] = submit(*items[index])
            except BaseException as error:  # surface in the caller's thread
                errors.append(error)
                stop.set()
                return

    threads = [threading.Thread(target=worker) for _ in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return list(outcomes)


def _drive_phases_threaded(
    submit,
    corpora: Sequence[CompressedCorpus],
    phases: Sequence[_Phase],
    num_threads: int,
    num_queries: int,
) -> List[RunOutcome]:
    """Drive mutation-delimited phases with a worker pool per phase.

    Each barrier's mutations go through the live corpus's incremental
    API after the previous phase's queries drained; nothing is sent to
    the serving tiers, which observe the new epoch lazily on the next
    routed query.
    """
    outcomes: List[Optional[RunOutcome]] = [None] * num_queries
    for mutations, queries in phases:
        for source_index, event in mutations:
            event.apply(corpora[source_index])
        if not queries:
            continue
        phase_outcomes = _drive_threaded(
            submit, [(source, query) for _slot, source, query in queries], num_threads
        )
        for (slot, _source, _query), outcome in zip(queries, phase_outcomes):
            outcomes[slot] = outcome
    return list(outcomes)


def _drive_async(
    submit,
    corpora: Sequence[CompressedCorpus],
    phases: Sequence[_Phase],
    concurrency: int,
    num_queries: int,
) -> List[RunOutcome]:
    """Drain the phases on one event loop with a bounded in-flight window.

    ``submit`` is an async callable ``(query, source=...)`` — the plain
    asyncio service's or the shard-router client's — so both async
    replay flavours share one driver.  Mutation barriers apply between
    the per-phase gathers, after every in-flight request of the
    previous phase resolved.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")

    async def replay() -> List[RunOutcome]:
        gate = asyncio.Semaphore(concurrency)
        outcomes: List[Optional[RunOutcome]] = [None] * num_queries

        async def serve(slot: int, index: int, query: Query) -> None:
            async with gate:
                outcomes[slot] = await submit(query, source=corpora[index])

        for mutations, queries in phases:
            for source_index, event in mutations:
                event.apply(corpora[source_index])
            if queries:
                await asyncio.gather(
                    *(serve(slot, index, query) for slot, index, query in queries)
                )
        return list(outcomes)

    return asyncio.run(replay())


def replay_trace(
    compressed: Union[CompressedCorpus, Sequence[CompressedCorpus]],
    trace: Sequence[TraceItem],
    *,
    num_threads: int = 8,
    engine_config: Optional[GTadocConfig] = None,
    service_config: Optional[ServiceConfig] = None,
    serial_baseline: bool = True,
) -> ReplayReport:
    """Replay ``trace`` through a fresh service with ``num_threads`` workers.

    ``compressed`` may be one corpus or a list of them; multi-corpus
    traces name their corpus per query with ``(source_index, Query)``
    pairs.  With ``serial_baseline`` (the default) the same trace is
    also executed serially — one fresh-session ``run()`` per query —
    and the served results are checked for bit-identity against it.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    corpora, phases, num_queries, num_mutations = _normalize_trace(compressed, trace)
    # Snapshot token streams before serving: the replay mutates the live
    # corpora, and the baseline must recompress from the *initial* state.
    snapshots = _token_snapshots(corpora) if serial_baseline and num_mutations else None
    service = AnalyticsService(
        corpora[0], engine_config=engine_config, service_config=service_config
    )
    started = time.perf_counter()
    outcomes = _drive_phases_threaded(
        lambda index, query: service.submit(query, source=corpora[index]),
        corpora,
        phases,
        num_threads,
        num_queries,
    )
    elapsed = time.perf_counter() - started

    serial_launches: Optional[int] = None
    results_match: Optional[bool] = None
    serial_elapsed: Optional[float] = None
    if serial_baseline:
        serial_launches, results_match, serial_elapsed = _serial_comparison(
            corpora, phases, engine_config, outcomes, snapshots
        )

    return ReplayReport(
        num_requests=num_queries,
        num_threads=num_threads,
        outcomes=outcomes,
        stats=service.stats(),
        serial_launches=serial_launches,
        results_match=results_match,
        mode="threads",
        elapsed_seconds=elapsed,
        serial_elapsed_seconds=serial_elapsed,
        num_mutations=num_mutations,
    )


def replay_trace_async(
    compressed: Union[CompressedCorpus, Sequence[CompressedCorpus]],
    trace: Sequence[TraceItem],
    *,
    concurrency: int = 64,
    engine_config: Optional[GTadocConfig] = None,
    service_config: Optional[ServiceConfig] = None,
    serial_baseline: bool = True,
    max_workers: int = 4,
) -> ReplayReport:
    """Replay ``trace`` through a fresh asyncio service on one event loop.

    Up to ``concurrency`` requests are in flight at once (far more than
    a thread pool of the same size could hold), so compatible queries
    pile onto the event-driven coalescing windows and micro-batches run
    close to full.  With ``serial_baseline`` the serial per-query
    comparison replay runs afterwards, exactly as in
    :func:`replay_trace`.
    """
    from repro.serve.aio import AsyncAnalyticsService

    corpora, phases, num_queries, num_mutations = _normalize_trace(compressed, trace)
    snapshots = _token_snapshots(corpora) if serial_baseline and num_mutations else None
    service = AsyncAnalyticsService(
        corpora[0],
        engine_config=engine_config,
        service_config=service_config,
        max_workers=max_workers,
    )
    try:
        started = time.perf_counter()
        outcomes = _drive_async(service.submit, corpora, phases, concurrency, num_queries)
        elapsed = time.perf_counter() - started
        stats = service.stats()
    finally:
        service.close()

    serial_launches: Optional[int] = None
    results_match: Optional[bool] = None
    serial_elapsed: Optional[float] = None
    if serial_baseline:
        serial_launches, results_match, serial_elapsed = _serial_comparison(
            corpora, phases, engine_config, outcomes, snapshots
        )

    return ReplayReport(
        num_requests=num_queries,
        num_threads=concurrency,
        outcomes=outcomes,
        stats=stats,
        serial_launches=serial_launches,
        results_match=results_match,
        mode="asyncio",
        elapsed_seconds=elapsed,
        serial_elapsed_seconds=serial_elapsed,
        num_mutations=num_mutations,
    )


def replay_trace_sharded(
    compressed: Union[CompressedCorpus, Sequence[CompressedCorpus]],
    trace: Sequence[TraceItem],
    *,
    num_shards: int = 2,
    replicas: int = 2,
    num_threads: int = 8,
    engine_config: Optional[GTadocConfig] = None,
    service_config: Optional[ServiceConfig] = None,
    sharded_config: Optional["ShardedServiceConfig"] = None,
    serial_baseline: bool = True,
    use_async: bool = False,
    concurrency: int = 64,
    transport: Optional[str] = None,
) -> ReplayReport:
    """Replay ``trace`` through a fingerprint-routed shard pool.

    Each of ``num_shards`` shards owns its own serving core (session
    LRU, result cache, coalescer) on its own executor; queries route by
    corpus fingerprint, and corpora hot enough to cross the replication
    threshold fan out across ``replicas`` shards.  Threaded callers
    drive the trace by default; with ``use_async`` one event loop fans
    up to ``concurrency`` in-flight queries to the owning shards
    through :class:`~repro.serve.aio.AsyncAnalyticsService`'s
    shard-router mode.  The serial baseline is the same one every other
    replay measures against.  ``transport`` picks the shard deployment
    (``"inprocess"``/``"process"``); ``None`` keeps the sharded config's
    choice, which itself defaults to ``REPRO_SHARD_TRANSPORT``.
    """
    from repro.serve.sharding import ShardedAnalyticsService, ShardedServiceConfig

    corpora, phases, num_queries, num_mutations = _normalize_trace(compressed, trace)
    snapshots = _token_snapshots(corpora) if serial_baseline and num_mutations else None
    if sharded_config is None:
        sharded_config = ShardedServiceConfig(
            num_shards=num_shards, replication_factor=replicas
        )
    if transport is not None:
        sharded_config = dataclass_replace(sharded_config, transport=transport)
    service = ShardedAnalyticsService(
        corpora[0],
        engine_config=engine_config,
        service_config=service_config,
        sharded_config=sharded_config,
    )
    try:
        if use_async:
            from repro.serve.aio import AsyncAnalyticsService

            client = AsyncAnalyticsService(router=service)
            try:
                started = time.perf_counter()
                outcomes = _drive_async(
                    client.submit, corpora, phases, concurrency, num_queries
                )
                elapsed = time.perf_counter() - started
            finally:
                client.close()
            mode = "asyncio+sharded"
            drivers = concurrency
        else:
            if num_threads < 1:
                raise ValueError("num_threads must be >= 1")
            started = time.perf_counter()
            outcomes = _drive_phases_threaded(
                lambda index, query: service.submit(query, source=corpora[index]),
                corpora,
                phases,
                num_threads,
                num_queries,
            )
            elapsed = time.perf_counter() - started
            mode = "threads+sharded"
            drivers = num_threads
        stats = service.stats()
        transport_kind = service.transport_kind
    finally:
        service.close()

    serial_launches: Optional[int] = None
    results_match: Optional[bool] = None
    serial_elapsed: Optional[float] = None
    if serial_baseline:
        serial_launches, results_match, serial_elapsed = _serial_comparison(
            corpora, phases, engine_config, outcomes, snapshots
        )

    return ReplayReport(
        num_requests=num_queries,
        num_threads=drivers,
        outcomes=outcomes,
        stats=stats,
        serial_launches=serial_launches,
        results_match=results_match,
        mode=mode,
        num_shards=sharded_config.num_shards,
        elapsed_seconds=elapsed,
        serial_elapsed_seconds=serial_elapsed,
        num_mutations=num_mutations,
        transport=transport_kind,
    )
