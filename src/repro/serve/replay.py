"""Replay a request trace through the serving layer and measure it.

One pair of helpers serves the CLI (``gtadoc serve-bench``), the
serving benchmarks and the serving examples:

* :func:`replay_trace` replays a trace with N worker threads against a
  thread-based :class:`~repro.serve.service.AnalyticsService`;
* :func:`replay_trace_async` replays the same kind of trace through an
  :class:`~repro.serve.aio.AsyncAnalyticsService` on one event loop,
  with a bounded number of requests in flight.

Both optionally replay the trace serially with per-query
:meth:`GTadoc.run` semantics (a fresh session per query — the paper's
full per-query cost), check the served results for bit-identity against
it, and report launches-per-query plus cache/coalescing statistics side
by side in one :class:`ReplayReport`.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.api.backends import GTadocBackend
from repro.api.outcome import RunOutcome
from repro.api.query import Query
from repro.compression.compressor import CompressedCorpus
from repro.core.session import GTadocConfig
from repro.serve.service import AnalyticsService, ServiceConfig, ServiceStats

__all__ = ["ReplayReport", "replay_trace", "replay_trace_async"]


@dataclass(frozen=True)
class ReplayReport:
    """Serving replay vs. serial per-query execution, side by side."""

    num_requests: int
    #: Worker threads (threaded replay) or max in-flight requests (async).
    num_threads: int
    #: Outcomes in trace order, as served by the service.
    outcomes: List[RunOutcome]
    #: Service counters for exactly this replay.
    stats: ServiceStats
    #: Total kernel launches of the serial per-query replay
    #: (``None`` when the serial baseline was skipped).
    serial_launches: Optional[int] = None
    #: Whether every served result equalled its serial counterpart.
    results_match: Optional[bool] = None
    #: How the trace was driven: ``"threads"`` or ``"asyncio"``.
    mode: str = "threads"

    @property
    def served_launches_per_query(self) -> float:
        return self.stats.kernel_launches / self.num_requests if self.num_requests else 0.0

    @property
    def serial_launches_per_query(self) -> Optional[float]:
        if self.serial_launches is None or not self.num_requests:
            return None
        return self.serial_launches / self.num_requests

    @property
    def launch_reduction(self) -> Optional[float]:
        """Fraction of serial launches the serving layer avoided."""
        if self.serial_launches is None or self.serial_launches == 0:
            return None
        return 1.0 - self.stats.kernel_launches / self.serial_launches


def _serial_comparison(
    compressed: CompressedCorpus,
    trace: Sequence[Query],
    engine_config: Optional[GTadocConfig],
    outcomes: Sequence[RunOutcome],
) -> Tuple[int, bool]:
    """Replay serially (fresh session per query) and check bit-identity."""
    serial = GTadocBackend(compressed, config=engine_config, amortize=False)
    launches = 0
    match = True
    for index, query in enumerate(trace):
        reference = serial.run(query)
        launches += reference.kernel_launches
        if outcomes[index].result != reference.result:
            match = False
    return launches, match


def replay_trace(
    compressed: CompressedCorpus,
    trace: Sequence[Query],
    *,
    num_threads: int = 8,
    engine_config: Optional[GTadocConfig] = None,
    service_config: Optional[ServiceConfig] = None,
    serial_baseline: bool = True,
) -> ReplayReport:
    """Replay ``trace`` through a fresh service with ``num_threads`` workers.

    With ``serial_baseline`` (the default) the same trace is also
    executed serially — one fresh-session ``run()`` per query — and the
    served results are checked for bit-identity against it.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    service = AnalyticsService(
        compressed, engine_config=engine_config, service_config=service_config
    )
    outcomes: List[Optional[RunOutcome]] = [None] * len(trace)
    errors: List[BaseException] = []
    cursor = {"next": 0}
    cursor_lock = threading.Lock()

    def worker() -> None:
        while True:
            with cursor_lock:
                index = cursor["next"]
                if index >= len(trace):
                    return
                cursor["next"] = index + 1
            try:
                outcomes[index] = service.submit(trace[index])
            except BaseException as error:  # surface in the caller's thread
                errors.append(error)
                return

    threads = [threading.Thread(target=worker) for _ in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]

    serial_launches: Optional[int] = None
    results_match: Optional[bool] = None
    if serial_baseline:
        serial_launches, results_match = _serial_comparison(
            compressed, trace, engine_config, outcomes
        )

    return ReplayReport(
        num_requests=len(trace),
        num_threads=num_threads,
        outcomes=list(outcomes),
        stats=service.stats(),
        serial_launches=serial_launches,
        results_match=results_match,
        mode="threads",
    )


def replay_trace_async(
    compressed: CompressedCorpus,
    trace: Sequence[Query],
    *,
    concurrency: int = 64,
    engine_config: Optional[GTadocConfig] = None,
    service_config: Optional[ServiceConfig] = None,
    serial_baseline: bool = True,
    max_workers: int = 4,
) -> ReplayReport:
    """Replay ``trace`` through a fresh asyncio service on one event loop.

    Up to ``concurrency`` requests are in flight at once (far more than
    a thread pool of the same size could hold), so compatible queries
    pile onto the event-driven coalescing windows and micro-batches run
    close to full.  With ``serial_baseline`` the serial per-query
    comparison replay runs afterwards, exactly as in
    :func:`replay_trace`.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    from repro.serve.aio import AsyncAnalyticsService

    service = AsyncAnalyticsService(
        compressed,
        engine_config=engine_config,
        service_config=service_config,
        max_workers=max_workers,
    )

    async def replay() -> List[RunOutcome]:
        gate = asyncio.Semaphore(concurrency)

        async def serve(index: int) -> RunOutcome:
            async with gate:
                return await service.submit(trace[index])

        return list(await asyncio.gather(*(serve(index) for index in range(len(trace)))))

    try:
        outcomes = asyncio.run(replay())
        stats = service.stats()
    finally:
        service.close()

    serial_launches: Optional[int] = None
    results_match: Optional[bool] = None
    if serial_baseline:
        serial_launches, results_match = _serial_comparison(
            compressed, trace, engine_config, outcomes
        )

    return ReplayReport(
        num_requests=len(trace),
        num_threads=concurrency,
        outcomes=outcomes,
        stats=stats,
        serial_launches=serial_launches,
        results_match=results_match,
        mode="asyncio",
    )
