"""The per-shard worker host: one serving core behind a message loop.

A shard is, at bottom, an :class:`~repro.serve.service.AnalyticsService`
plus the corpora it serves.  :class:`ShardHost` is exactly that pair
with a transport-agnostic ``handle(op, payload)`` surface, so the same
host backs both deployment shapes:

* **in process** — :class:`~repro.serve.transport.InProcessTransport`
  calls the service directly (no host object needed; the host exists
  for the process path and for tests that want to poke the message
  surface without spawning);
* **worker process** — :func:`worker_main` runs the host behind a
  framed request/reply loop on a ``multiprocessing`` pipe, speaking the
  :mod:`repro.serve.wire` codec.

Corpus state crosses the boundary by ``uid``: the first time a router
routes a corpus to a process shard it ships a full snapshot; later
epochs arrive as append deltas (or fresh snapshots after a rebuild).
The host keeps **one corpus object per uid for its whole lifetime** and
refreshes it in place — the serving core rekeys warm sessions by corpus
object identity when it observes a new epoch, so replacing the object
would silently orphan every warm session the delta path exists to keep.

Errors never kill the loop: an exception inside an op is serialized as
an ``("error", ...)`` reply and re-raised caller-side; only a closed
pipe (the parent died or told us to stop) ends the worker.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.compression.compressor import CompressedCorpus
from repro.core.session import GTadocConfig
from repro.serve import wire
from repro.serve.service import AnalyticsService, ServiceConfig

__all__ = ["ShardHost", "worker_main"]


class ShardHost:
    """One shard's serving core plus its uid-keyed corpus replicas."""

    def __init__(
        self,
        name: str,
        engine_config: Optional[GTadocConfig],
        service_config: Optional[ServiceConfig],
    ) -> None:
        self._service = AnalyticsService(
            engine_config=engine_config, service_config=service_config
        )
        # Outcomes served through a pool carry the pool's backend name.
        self._service.name = name
        self._corpora: Dict[str, CompressedCorpus] = {}

    @property
    def service(self) -> AnalyticsService:
        return self._service

    # -- corpus replicas ---------------------------------------------------------------
    def _corpus(self, uid: str) -> CompressedCorpus:
        try:
            return self._corpora[uid]
        except KeyError:
            raise KeyError(f"shard has no replica of corpus uid {uid[:12]}") from None

    def install_snapshot(self, payload: Dict[str, Any]) -> None:
        """Materialize (or refresh in place) the replica for a snapshot."""
        existing = self._corpora.get(payload["uid"])
        if existing is None:
            self._corpora[payload["uid"]] = wire.corpus_from_snapshot(payload)
        else:
            wire.adopt_corpus_snapshot(existing, payload)

    def apply_delta(self, payload: Dict[str, Any]) -> None:
        """Advance a replica by an append delta (same epoch protocol as local)."""
        wire.apply_corpus_delta(self._corpus(payload["uid"]), payload)

    # -- the op surface ----------------------------------------------------------------
    def handle(self, op: str, payload: Any) -> Any:
        """Execute one transport op; the return value is the reply payload."""
        if op == "submit":
            return self._service.submit(
                payload["query"],
                source=self._corpus(payload["uid"]),
                engine_config=payload["engine_config"],
            )
        if op == "run_batch":
            return self._service.run_batch(
                payload["queries"],
                source=self._corpus(payload["uid"]),
                engine_config=payload["engine_config"],
            )
        if op == "snapshot":
            self.install_snapshot(payload)
            return None
        if op == "delta":
            self.apply_delta(payload)
            return None
        if op == "invalidate":
            replica = self._corpora.get(payload["uid"])
            return 0 if replica is None else self._service.invalidate(replica)
        if op == "stats":
            return self._service.stats()
        if op == "session_keys":
            return [list(key) for key in self._service.session_keys()]
        if op == "drop_session":
            fingerprint, config = payload["key"]
            return self._service.drop_session((fingerprint, config))
        if op == "resident_sessions":
            return self._service.resident_sessions
        if op == "ping":
            return "pong"
        raise ValueError(f"unknown shard op {op!r}")


#: Error types a worker reply may name; anything else surfaces as
#: ``RuntimeError`` caller-side (the wire carries names, not classes).
REPLY_ERRORS = {
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "RuntimeError": RuntimeError,
}


def worker_main(
    conn,
    name: str,
    engine_config: Optional[GTadocConfig],
    service_config: Optional[ServiceConfig],
) -> None:
    """The worker process entry point: serve framed ops until the pipe closes.

    Runs in the spawned child.  ``engine_config``/``service_config`` are
    frozen scalar dataclasses and arrive through the spawn pickle; all
    per-request traffic speaks the :mod:`repro.serve.wire` codec.  Every
    op gets exactly one reply — ``("ok", result)`` or ``("error",
    {"type", "message"})`` — so the parent's request/reply lane never
    desynchronizes.
    """
    host = ShardHost(name, engine_config, service_config)
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            break
        try:
            op, payload = wire.decode_frame(frame)
            if op == "close":
                conn.send_bytes(wire.encode_frame(("ok", None)))
                break
            reply: Tuple[str, Any] = ("ok", host.handle(op, payload))
        except Exception as error:
            reply = (
                "error",
                {"type": type(error).__name__, "message": str(error)},
            )
        try:
            conn.send_bytes(wire.encode_frame(reply))
        except (BrokenPipeError, OSError):
            break
    conn.close()
