"""Asyncio serving front end: event-driven coalescing over the shared core.

The thread-based :class:`~repro.serve.service.AnalyticsService` caps
concurrency — and therefore coalescing opportunity — at its caller's
worker-thread count, and its micro-batch leaders *sleep* through the
coalescing window.  :class:`AsyncAnalyticsService` serves the same
queries from one event loop instead:

* ``await service.submit(query)`` costs a coroutine, not a thread, so
  thousands of requests can be in flight per worker process — the shape
  a long-lived compressed-analytics service (TADOC/G-TADOC's
  build-once, query-many design) actually sees;
* the coalescing window is **event-driven**: a leader awaits an
  :class:`asyncio.Event` under a timeout and the window closes *early*
  the moment the micro-batch fills or the corpus is invalidated — there
  is no clock polling anywhere on the async path;
* micro-batches dispatch engine ``run_batch`` calls through a bounded
  :class:`~concurrent.futures.ThreadPoolExecutor`, so the event loop
  never blocks on simulated kernels and independent sessions still
  execute concurrently.

Everything else — session LRU, result cache, epochs, stats, outcome
assembly — is the same :class:`~repro.serve.service.ServingCore` the
threaded service uses, so the two front ends cannot drift apart.
:class:`AsyncServeBackend` additionally hosts the async service on a
dedicated event-loop thread behind the synchronous
:class:`~repro.api.backend.AnalyticsBackend` protocol (registered as
``"serve_async"``), so threaded callers and the cross-backend
equivalence matrix exercise the exact same code path.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import (
    TYPE_CHECKING,
    Any,
    Awaitable,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.sharding import ShardedAnalyticsService

from repro.analysis.lockcheck import make_lock
from repro.analytics.base import Task
from repro.api.backend import BackendCapabilities
from repro.api.backends import CorpusSource
from repro.api.outcome import RunOutcome
from repro.api.query import Query
from repro.core.session import GTadocConfig
from repro.data.corpus import Corpus
from repro.serve.coalescer import BatchSlot, CoalescerCore, GroupState
from repro.serve.service import ServiceConfig, ServiceStats, ServingCore

__all__ = [
    "AsyncCoalescedRequest",
    "AsyncQueryCoalescer",
    "AsyncAnalyticsService",
    "AsyncServeBackend",
]


class AsyncCoalescedRequest(BatchSlot):
    """One in-flight query of the asyncio coalescer (awaitable completion)."""

    __slots__ = ("done", "promoted")

    def __init__(self, query: Query) -> None:
        super().__init__(query)
        self.done: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
        #: Set when a retiring leader hands this coroutine the lead.
        self.promoted: bool = False


class _AsyncGroup(GroupState):
    """Group state plus the event that closes the leader's open window."""

    __slots__ = ("window",)

    def __init__(self) -> None:
        super().__init__()
        #: The leader's open-window event (``None`` while no window is open).
        self.window: Optional[asyncio.Event] = None

    def close_window(self) -> bool:
        """Wake a leader waiting on its window; returns whether one was open."""
        if self.window is None:
            return False
        self.window.set()
        return True


#: Executes one micro-batch without blocking the loop (awaitable).
AsyncExecuteFn = Callable[[List[BatchSlot]], Awaitable[None]]


class AsyncQueryCoalescer:
    """Event-driven micro-batching on one event loop.

    The group/leader bookkeeping is the shared
    :class:`~repro.serve.coalescer.CoalescerCore`; because every method
    runs on the event loop between awaits, no lock is needed around it.
    A leader's window is an ``asyncio.Event`` awaited under a timeout —
    it closes the instant the batch fills (a follower sets it) or the
    serving layer invalidates the group's corpus (:meth:`close_groups`),
    and simply times out otherwise.  There is no ``time.monotonic``
    polling loop anywhere on this path.
    """

    def __init__(self, window: float = 0.002, max_batch: int = 16) -> None:
        if window < 0:
            raise ValueError("coalescing window must be non-negative")
        self.window = float(window)
        self._core = CoalescerCore(max_batch, group_factory=_AsyncGroup)

    @property
    def max_batch(self) -> int:
        return self._core.max_batch

    @property
    def _groups(self) -> Dict[Any, GroupState]:
        """The live group records (exposed for tests/diagnostics)."""
        return self._core.groups

    async def submit(
        self, group_key: Any, request: AsyncCoalescedRequest, execute: AsyncExecuteFn
    ) -> None:
        """Run ``request`` through its group's micro-batching.

        Suspends until the request's micro-batch has executed; raises
        whatever the batch raised, otherwise ``request.outcome`` is
        filled in on return.  Cancellation-safe: a cancelled leader
        withdraws and wakes a successor (or retires the group), and a
        leader cancelled mid-execution still settles its batch for the
        followers once the engine work lands.
        """
        group, became_leader = self._core.enqueue(group_key, request)
        if became_leader:
            await self._lead(group_key, group, execute, request, hold_window=True)
        else:
            if len(group.pending) >= self._core.max_batch:
                group.close_window()  # type: ignore[attr-defined]
            try:
                await request.done
            except asyncio.CancelledError:
                if request.promoted:
                    # Promoted, then cancelled before taking the lead: the
                    # group must not be orphaned — withdraw this request
                    # and wake a successor (or retire).
                    self._withdraw(group_key, group, request)
                raise
            if request.promoted:
                # A retiring leader handed this coroutine the lead; its
                # own request is still pending, so no window: drain now.
                await self._lead(group_key, group, execute, request, hold_window=False)
        if request.error is not None:
            raise request.error

    async def _lead(
        self,
        group_key: Any,
        group: GroupState,
        execute: AsyncExecuteFn,
        request: AsyncCoalescedRequest,
        hold_window: bool,
    ) -> None:
        """Execute one micro-batch, then hand off leadership or retire."""
        if hold_window and self.window > 0 and len(group.pending) < self._core.max_batch:
            event = asyncio.Event()
            group.window = event  # type: ignore[attr-defined]
            try:
                await asyncio.wait_for(event.wait(), timeout=self.window)
            except asyncio.TimeoutError:
                pass
            except asyncio.CancelledError:
                # A cancelled leader must not abandon its group: withdraw
                # its own request and wake a successor (or retire).
                self._withdraw(group_key, group, request)
                raise
            finally:
                group.window = None  # type: ignore[attr-defined]
        # Followers cancelled while the window was open have no consumer;
        # drop them so the engine does not compute for callers that left.
        group.pending[:] = [
            slot
            for slot in group.pending
            if not slot.done.cancelled()  # type: ignore[attr-defined]
        ]
        batch = self._core.take_batch(group)
        if not batch:  # pragma: no cover - a leader's own request is pending
            self._core.finish(group_key, group)
            return
        job = asyncio.ensure_future(execute(batch))
        try:
            await asyncio.shield(job)
        except asyncio.CancelledError:
            # The leader was cancelled mid-execution; its followers' batch
            # still completes — settle the group when the work lands.
            if job.done():
                self._settle(group_key, group, batch, job)
            else:
                job.add_done_callback(
                    lambda done: self._settle(group_key, group, batch, done)
                )
            raise
        except BaseException:
            pass  # the job's error is distributed to every waiter by _settle
        self._settle(group_key, group, batch, job)

    def _settle(
        self,
        group_key: Any,
        group: GroupState,
        batch: List[BatchSlot],
        job: "asyncio.Future[None]",
    ) -> None:
        """Distribute a finished batch's outcome/error, wake waiters, hand off."""
        if job.cancelled():
            error: Optional[BaseException] = asyncio.CancelledError()
        else:
            error = job.exception()
        if error is not None:
            for slot in batch:
                slot.error = error
        for slot in batch:
            done = slot.done  # type: ignore[attr-defined]
            if not done.done():
                done.set_result(None)
        self._handoff(group_key, group)

    def _withdraw(
        self, group_key: Any, group: GroupState, request: AsyncCoalescedRequest
    ) -> None:
        """Remove a cancelled leader's own request and pass the lead on."""
        if request in group.pending:
            group.pending.remove(request)
        self._handoff(group_key, group)

    def _handoff(self, group_key: Any, group: GroupState) -> None:
        """Wake the next leader, skipping waiters that were cancelled."""
        # A pending request whose future is already done can only have
        # been cancelled; it can neither lead nor consume an outcome.
        group.pending[:] = [
            slot
            for slot in group.pending
            if not slot.done.cancelled()  # type: ignore[attr-defined]
        ]
        successor = self._core.finish(group_key, group)
        if successor is not None:
            done = successor.done  # type: ignore[attr-defined]
            if not done.done():
                done.set_result(None)

    def close_groups(self, predicate: Callable[[Any], bool]) -> int:
        """Close open windows of groups whose key matches ``predicate``.

        Used on invalidation (and shutdown): waiting leaders wake
        immediately and drain whatever queued, instead of sleeping out
        the rest of their window.  Returns how many windows were closed.
        """
        closed = 0
        for key, group in list(self._core.groups.items()):
            if predicate(key) and group.close_window():  # type: ignore[attr-defined]
                closed += 1
        return closed


class AsyncAnalyticsService(ServingCore):
    """Asyncio serving front end over the G-TADOC engine.

    ``submit`` is a coroutine: any number may be in flight on one event
    loop, and compatible concurrent queries coalesce through
    :class:`AsyncQueryCoalescer`'s event-driven micro-batches.  Engine
    work runs on a bounded executor (``max_workers`` threads), so the
    loop stays responsive while simulated kernels execute.  Results are
    bit-identical to serial per-query execution.

    The service object itself must stay on one event loop at a time;
    use :class:`AsyncServeBackend` to share it with synchronous callers.

    **Shard-router mode.**  Constructed with ``router=`` (a
    :class:`~repro.serve.sharding.ShardedAnalyticsService`), the service
    becomes the shard pool's async client: ``submit`` routes each query
    to its owning shard and awaits the shard transport's future, so one
    event loop fans any number of in-flight queries across the pool
    without holding a caller thread per request — whether the shard is
    an in-process thread pool or a worker process behind a framed pipe
    (the router's configured transport; a crashed worker is replaced
    and the query transparently re-routed).  Serving state (session
    LRU, result cache, coalescing) then lives *in the shards*;
    ``stats``/``invalidate``/``resident_sessions`` delegate to the
    router, and closing this service does not close the router.
    """

    name = "serve_async"
    description = "Asyncio serving front end: event-driven coalescing, bounded executor"

    def __init__(
        self,
        source: Optional[CorpusSource] = None,
        *,
        engine_config: Optional[GTadocConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        max_workers: int = 4,
        router: Optional["ShardedAnalyticsService"] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        super().__init__(source, engine_config=engine_config, service_config=service_config)
        self._router = router
        self._coalescer = AsyncQueryCoalescer(
            window=self.config.coalesce_window, max_batch=self.config.max_batch_size
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="gtadoc-serve"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- the query path ----------------------------------------------------------------
    async def submit(
        self,
        query: Union[Query, Task, str],
        *,
        source: Optional[CorpusSource] = None,
        engine_config: Optional[GTadocConfig] = None,
    ) -> RunOutcome:
        """Answer one query, coalescing with compatible in-flight queries."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        if self._router is not None:
            return await self._router.submit_async(
                query,
                source=source,
                engine_config=engine_config,
                resolve_executor=self._executor,
            )
        await self._warm_source(loop, source)
        prepared = self._prepare(query, source, engine_config)
        if prepared.cached is not None:
            # A pure hit neither builds nor touches a session entry.
            return self._hit_outcome(prepared.query, prepared.cached)
        entry = self._entry_for(prepared)
        request = AsyncCoalescedRequest(prepared.query)

        async def execute(batch: List[BatchSlot]) -> None:
            await loop.run_in_executor(self._executor, self._execute_batch, entry, batch)

        await self._coalescer.submit(self._group_key(entry, prepared.query), request, execute)
        outcome = request.outcome
        self._store_result(prepared, outcome)
        return outcome

    async def run(self, query: Union[Query, Task, str]) -> RunOutcome:
        """Async :class:`AnalyticsBackend`-style alias for :meth:`submit`."""
        return await self.submit(query)

    async def run_batch(
        self,
        queries: Iterable[Union[Query, Task, str]],
        *,
        source: Optional[CorpusSource] = None,
        engine_config: Optional[GTadocConfig] = None,
    ) -> List[RunOutcome]:
        """Serve a batch already in hand, coalescing it directly.

        The batch needs no window: compatible queries are grouped into
        micro-batches on the spot (repeated tasks collapse inside the
        engine) and each micro-batch runs on the executor, keeping the
        loop free.  Outcomes keep input order.
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        if self._router is not None:
            return await self._router.run_batch_async(
                queries,
                source=source,
                engine_config=engine_config,
                resolve_executor=self._executor,
            )
        await self._warm_source(loop, source)
        prepared, outcomes, chunks = self._plan_batch(list(queries), source, engine_config)
        # Independent micro-batches overlap on the bounded executor
        # (chunks fill disjoint outcome slots; shared sessions serialize
        # on their own locks).
        await asyncio.gather(
            *(
                loop.run_in_executor(
                    self._executor, self._run_chunk, prepared, outcomes, entry, indices
                )
                for entry, indices in chunks
            )
        )
        return outcomes

    # -- shard-router delegation -------------------------------------------------------
    def stats(self):
        """Service counters — the router's :class:`ShardedStats` in router mode."""
        if self._router is not None:
            return self._router.stats()
        return super().stats()

    def invalidate(self, source: CorpusSource) -> int:
        if self._router is not None:
            return self._router.invalidate(source)
        return super().invalidate(source)

    @property
    def resident_sessions(self) -> int:
        if self._router is not None:
            return self._router.resident_sessions
        return super().resident_sessions

    async def _warm_source(
        self, loop: asyncio.AbstractEventLoop, source: Optional[CorpusSource]
    ) -> None:
        """Compress a raw corpus on the executor, not on the event loop.

        ``_prepare`` resolves sources synchronously; for an unmemoized raw
        :class:`~repro.data.corpus.Corpus` that means a full compression,
        which must not stall every other in-flight coroutine.  Warming the
        memo here keeps the loop-side resolve to a dictionary lookup.
        """
        if isinstance(source, Corpus):
            await loop.run_in_executor(self._executor, self._resolve_source, source)

    # -- lifecycle ---------------------------------------------------------------------
    def _close_windows_for(self, fingerprint: str) -> None:
        """Wake leaders holding windows open for the invalidated corpus."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return

        def close() -> None:
            self._coalescer.close_groups(lambda key: key[0][0] == fingerprint)

        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            close()
        elif loop.is_running():
            loop.call_soon_threadsafe(close)

    def close(self) -> None:
        """Release the executor (idempotent)."""
        self._executor.shutdown(wait=True)


class AsyncServeBackend:
    """``serve_async`` behind the synchronous backend protocol.

    Hosts one :class:`AsyncAnalyticsService` on a dedicated event-loop
    thread; synchronous callers submit through
    ``run_coroutine_threadsafe``, so concurrent *threads* still coalesce
    through the event-driven micro-batches.  This is the adapter the
    backend registry constructs for ``open_backend("serve_async", ...)``
    and the one the cross-backend equivalence matrix drives.
    """

    name = "serve_async"

    def __init__(
        self,
        source: Optional[CorpusSource] = None,
        *,
        engine_config: Optional[GTadocConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        max_workers: int = 4,
    ) -> None:
        self.service = AsyncAnalyticsService(
            source,
            engine_config=engine_config,
            service_config=service_config,
            max_workers=max_workers,
        )
        self._closed = threading.Event()
        # Serializes scheduling against close(): a call that passes the
        # closed check has its coroutine queued on the loop before close()
        # can queue the shutdown, so the drain always sees its task.
        self._call_lock = make_lock("aio.call")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="gtadoc-serve-async", daemon=True
        )
        self._thread.start()

    def _call(self, coroutine: Awaitable[Any]) -> Any:
        with self._call_lock:
            if self._closed.is_set() or not self._thread.is_alive():
                coroutine.close()  # type: ignore[attr-defined]
                raise RuntimeError("AsyncServeBackend is closed")
            future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result()

    # -- the protocol surface ----------------------------------------------------------
    def submit(
        self,
        query: Union[Query, Task, str],
        *,
        source: Optional[CorpusSource] = None,
        engine_config: Optional[GTadocConfig] = None,
    ) -> RunOutcome:
        return self._call(self.service.submit(query, source=source, engine_config=engine_config))

    def run(self, query: Union[Query, Task, str]) -> RunOutcome:
        return self.submit(query)

    def run_batch(self, queries: Iterable[Union[Query, Task, str]]) -> List[RunOutcome]:
        return self._call(self.service.run_batch(list(queries)))

    def capabilities(self) -> BackendCapabilities:
        return self.service.capabilities()

    # -- management passthroughs -------------------------------------------------------
    def stats(self) -> ServiceStats:
        return self.service.stats()

    def invalidate(self, source: CorpusSource) -> int:
        return self.service.invalidate(source)

    @property
    def resident_sessions(self) -> int:
        return self.service.resident_sessions

    def close(self) -> None:
        """Stop the event-loop thread and release the executor (idempotent).

        In-flight calls from other threads are cancelled (their
        ``submit``/``run_batch`` raises ``CancelledError``) rather than
        left blocked on a loop that will never resume them.
        """
        with self._call_lock:
            self._closed.set()
        if self._thread.is_alive():

            def shutdown() -> None:
                async def stop_when_drained() -> None:
                    # Halting immediately would strand the callers: a
                    # cancelled task resolves its caller's future from a
                    # loop callback, so the loop must keep running until
                    # every cancellation has fully propagated.  Re-check
                    # until no task remains in case cancellation handlers
                    # spawned further work.
                    current = asyncio.current_task()
                    while True:
                        tasks = [
                            task
                            for task in asyncio.all_tasks(self._loop)
                            if task is not current
                        ]
                        if not tasks:
                            break
                        for task in tasks:
                            task.cancel()
                        await asyncio.gather(*tasks, return_exceptions=True)
                    self._loop.stop()

                self._loop.create_task(stop_when_drained())

            self._loop.call_soon_threadsafe(shutdown)
            self._thread.join(timeout=5.0)
        if not self._loop.is_closed():
            self._loop.close()
        self.service.close()

    def __enter__(self) -> "AsyncServeBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
