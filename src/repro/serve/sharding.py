"""Sharded serving: a fingerprint-routed shard pool over the serving core.

One :class:`~repro.serve.service.ServingCore` owns every session, so a
single device's session LRU caps how many corpora can stay resident.
:class:`ShardedAnalyticsService` scales past that by running N *shard
workers* — each wrapping its own thread-safe
:class:`~repro.serve.service.AnalyticsService` (own session LRU, result
cache and coalescer) on its own bounded executor, modeling one device
per shard — and routing every query to a shard by its corpus
fingerprint:

* **Rendezvous (HRW) routing.**  A corpus's owner is the shard with the
  highest hash of ``(shard id, fingerprint)``.  Adding or removing a
  shard therefore moves only the corpora whose top-ranked shard
  changed — there is no modulo reshuffle — so a :meth:`resize` migrates
  the minimal set of sessions (counted in
  :attr:`ShardedStats.moved_sessions`).
* **Hot-corpus replication.**  A corpus whose share of routed queries
  crosses :attr:`ShardedServiceConfig.hot_query_share` is *promoted*:
  its queries fan out round-robin across the top
  :attr:`~ShardedServiceConfig.replication_factor` shards of its
  rendezvous ranking, spreading a hot corpus over R devices.  When its
  share decays below the threshold it is *demoted* back to its single
  owner (replica sessions simply age out of the other shards' LRUs).
* **Placement accounting.**  Routing a query to a shard and shipping
  its result back are network events; the router charges them to a
  :class:`~repro.perf.counters.CostCounter` with the same discipline as
  the fixed :meth:`~repro.cluster.simulator.ClusterSimulator.execute`
  (messages only for non-empty sends), priced under the configured
  :class:`~repro.cluster.simulator.ClusterSpec`'s latency and bandwidth
  (:attr:`ShardedStats.network_seconds`).
* **Pluggable shard transports.**  *Where* a shard's serving core runs
  is a deployment choice, not part of routing: every shard sits behind
  a :class:`~repro.serve.transport.ShardTransport`.  The default is the
  in-process thread pool; ``transport="process"`` (or the
  ``REPRO_SHARD_TRANSPORT`` environment variable) promotes each shard
  to a spawned worker process — one GIL per shard, crash-isolated.  A
  worker that dies with work in flight surfaces as
  :class:`~repro.serve.transport.ShardFailure`; the router replaces the
  dead shard with a fresh worker (new shard id, so rendezvous rankings
  re-route its corpora to live owners) and retries — queries are
  idempotent reads, so failover changes latency, never answers.  The
  replacement is counted in :attr:`ShardedStats.shard_failures` /
  :attr:`ShardedStats.replaced_shards`, and the *actual* serialized
  traffic (framed queries, results and corpus shipping) is metered in
  :attr:`ShardedStats.wire_bytes` and priced under the same cluster
  spec as the modelled placement numbers.

The service satisfies the synchronous
:class:`~repro.api.backend.AnalyticsBackend` protocol and is registered
as the ``"serve_sharded"`` backend.  The asyncio front end is the
natural shard *client*: constructed with ``router=``, an
:class:`~repro.serve.aio.AsyncAnalyticsService` fans every in-flight
coroutine to the owning shard's executor via :meth:`submit_async`
without holding a caller thread per request.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import Executor
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import asyncio

from repro.analysis.lockcheck import make_lock
from repro.analytics.base import Task
from repro.api.backend import BackendCapabilities
from repro.api.backends import CorpusSource
from repro.api.outcome import RunOutcome
from repro.api.query import Query, as_query
from repro.baselines.merge import result_entry_count
from repro.cluster.simulator import ClusterSpec
from repro.compression.compressor import CompressedCorpus
from repro.core.session import GTadocConfig
from repro.data.corpus import Corpus
from repro.perf import workcosts as wc
from repro.perf.counters import CostCounter
from repro.serve.service import AnalyticsService, CorpusMemo, ServiceConfig, ServiceStats
from repro.serve.transport import (
    TRANSPORT_KINDS,
    ShardFailure,
    ShardTransport,
    create_transport,
)

__all__ = [
    "ShardedServiceConfig",
    "ShardedStats",
    "ShardedAnalyticsService",
    "rendezvous_rank",
]

#: Modelled wire size of one routed query (task name + knobs), matching
#: the coarse granularity of :data:`repro.perf.workcosts.RESULT_ENTRY_BYTES`.
QUERY_MESSAGE_BYTES = 64.0

#: A replicated corpus is demoted only when its share falls below this
#: fraction of the promotion threshold — hysteresis, so a share hovering
#: at the threshold does not flap between single-owner and replicated
#: routing on every query.
DEMOTION_HYSTERESIS = 0.8


def _hrw_score(fingerprint: str, shard_id: int) -> int:
    """The rendezvous weight of ``shard_id`` for ``fingerprint``."""
    digest = hashlib.blake2b(
        f"{shard_id}:{fingerprint}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def rendezvous_rank(fingerprint: str, shard_ids: Sequence[int]) -> List[int]:
    """Shard ids ordered by rendezvous (highest-random-weight) preference.

    The head of the list owns the corpus; a replicated corpus fans out
    across the first R entries.  The ranking of the *surviving* shards
    is unchanged when ids are added or removed — the HRW property that
    makes shard resizes move only the corpora whose winner changed.
    """
    return sorted(
        shard_ids, key=lambda shard_id: _hrw_score(fingerprint, shard_id), reverse=True
    )


@dataclass(frozen=True)
class ShardedServiceConfig:
    """Tunable parameters of the shard pool (on top of each shard's own
    :class:`~repro.serve.service.ServiceConfig`)."""

    #: Number of shard workers (one modelled device each).
    num_shards: int = 2
    #: Shards a hot corpus fans out across (capped at the pool size).
    replication_factor: int = 2
    #: Fraction of routed queries a corpus must carry to be replicated.
    hot_query_share: float = 0.5
    #: Routed queries before replication decisions are trusted (a share
    #: computed over two queries is noise, not heat).
    min_queries_for_replication: int = 8
    #: Worker threads per shard executor — the shard device's concurrent
    #: submit lanes (coalescing across them happens in the shard's core).
    shard_workers: int = 4
    #: Bound on per-corpus routing state (query counts + cached shard
    #: rankings).  Past the bound the coldest corpora are forgotten —
    #: their share restarts from zero if they return — so a long-lived
    #: pool fronting a stream of distinct corpora cannot grow router
    #: state without limit.  Replicated corpora are never evicted.
    max_tracked_corpora: int = 1024
    #: Half-life of the heat counters, in routed queries: every
    #: ``heat_decay_window`` placements, per-corpus counts halve.  Query
    #: share therefore tracks *recent* traffic — a corpus that turns hot
    #: late in a long-lived pool still crosses the replication threshold
    #: instead of being buried under all-time history.
    heat_decay_window: int = 1024
    #: Network model used to price placement traffic.
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    #: Shard deployment shape: ``"inprocess"`` (serving cores on thread
    #: pools, today's default), ``"process"`` (spawned worker processes
    #: behind framed pipes — crash isolation and one GIL per shard), or
    #: ``None`` to follow the ``REPRO_SHARD_TRANSPORT`` environment
    #: variable (falling back to in-process).
    transport: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if not 0.0 < self.hot_query_share <= 1.0:
            raise ValueError("hot_query_share must be within (0, 1]")
        if self.min_queries_for_replication < 1:
            raise ValueError("min_queries_for_replication must be >= 1")
        if self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")
        if self.max_tracked_corpora < 1:
            raise ValueError("max_tracked_corpora must be >= 1")
        if self.heat_decay_window < 1:
            raise ValueError("heat_decay_window must be >= 1")
        if self.transport is not None and self.transport not in TRANSPORT_KINDS:
            raise ValueError(
                f"transport must be None or one of {TRANSPORT_KINDS}, "
                f"got {self.transport!r}"
            )


@dataclass(frozen=True)
class ShardedStats:
    """Aggregated point-in-time snapshot of the shard pool.

    Per-shard serving counters sit next to the router's own counters:
    placements (routing decisions), replica promotions/demotions, the
    sessions moved by resizes, and the modelled placement network
    traffic.
    """

    #: One :class:`~repro.serve.service.ServiceStats` per shard.
    shards: Tuple[ServiceStats, ...]
    #: Stable shard ids, aligned with :attr:`shards`.
    shard_ids: Tuple[int, ...]
    #: Queries routed to each shard, aligned with :attr:`shards`.
    routed_queries: Tuple[int, ...]
    #: Resident device sessions per shard, aligned with :attr:`shards`.
    resident_sessions: Tuple[int, ...]
    #: Routing decisions made (one per submitted query).
    placements: int
    #: Corpora promoted to replicated serving.
    replica_promotions: int
    #: Corpora demoted back to single-owner serving.
    replica_demotions: int
    #: Sessions dropped because a resize changed their owner.
    moved_sessions: int
    #: Corpora currently served from replicas.
    replicated_corpora: int
    #: Placement traffic: routed queries + non-empty result returns.
    network_messages: float
    network_bytes: float
    #: Those messages/bytes priced under the configured cluster's
    #: latency and bandwidth.
    network_seconds: float
    #: Shard workers observed dead with work in flight.
    shard_failures: int = 0
    #: Fresh shards spawned to replace dead workers.
    replaced_shards: int = 0
    #: *Actual* serialized transport traffic — every framed message and
    #: its bytes, queries, results and corpus shipping alike.  Zero for
    #: in-process shards, where nothing crosses a wire; the modelled
    #: ``network_*`` placement numbers above are transport-independent.
    wire_messages: float = 0.0
    wire_bytes: float = 0.0
    #: The wire traffic priced under the same cluster spec as
    #: :attr:`network_seconds`.
    wire_seconds: float = 0.0

    # -- aggregates over the shard pool ------------------------------------------------
    @property
    def queries(self) -> int:
        return sum(stats.queries for stats in self.shards)

    @property
    def executed_queries(self) -> int:
        return sum(stats.executed_queries for stats in self.shards)

    @property
    def micro_batches(self) -> int:
        return sum(stats.micro_batches for stats in self.shards)

    @property
    def coalesced_queries(self) -> int:
        return sum(stats.coalesced_queries for stats in self.shards)

    @property
    def kernel_launches(self) -> int:
        return sum(stats.kernel_launches for stats in self.shards)

    @property
    def shared_kernel_launches(self) -> int:
        return sum(stats.shared_kernel_launches for stats in self.shards)

    @property
    def launches_per_query(self) -> float:
        return self.kernel_launches / self.queries if self.queries else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.executed_queries / self.micro_batches if self.micro_batches else 0.0

    @property
    def result_cache_hit_rate(self) -> float:
        hits = sum(stats.result_cache.hits for stats in self.shards)
        lookups = sum(stats.result_cache.lookups for stats in self.shards)
        return hits / lookups if lookups else 0.0

    @property
    def max_resident_sessions(self) -> int:
        return max(self.resident_sessions) if self.resident_sessions else 0

    @property
    def epoch_expirations(self) -> int:
        """Pool-wide entries dropped because their corpus epoch passed.

        Replicas observe new epochs lazily on their next routed query;
        the sessions/results they drop then are expirations, not cache
        evictions, and aggregate here across every shard.
        """
        return sum(stats.epoch_expirations for stats in self.shards)


class _Shard:
    """One shard worker: a serving core behind a transport (one device)."""

    __slots__ = ("shard_id", "transport", "routed")

    def __init__(self, shard_id: int, transport: ShardTransport) -> None:
        self.shard_id = shard_id
        self.transport = transport
        #: Queries the router placed on this shard.
        self.routed = 0

    @property
    def service(self) -> AnalyticsService:
        """The shard's serving core — in-process transports only.

        A process shard's core lives in its worker; reach it through
        :attr:`transport` ops instead.
        """
        return self.transport.service

    def close(self) -> None:
        self.transport.close()


class ShardedAnalyticsService:
    """Fingerprint-routed shard pool behind the synchronous backend protocol.

    ``submit`` resolves the query's corpus, routes it to the owning
    shard (or one of a hot corpus's replicas, round-robin) and executes
    it on that shard's executor; every shard keeps its own session LRU,
    result cache and coalescer, so corpora sharded apart never contend
    for one device's session budget.  Thread-safe; registered as the
    ``"serve_sharded"`` backend.
    """

    name = "serve_sharded"
    description = "Sharded serving: rendezvous-routed shard pool with hot-corpus replication"

    #: Dead-shard retries per query before the failure propagates.  Each
    #: retry replaces the dead worker and re-routes, so hitting the cap
    #: means shards are dying faster than they can be respawned.
    MAX_FAILOVER_ATTEMPTS = 3

    def __init__(
        self,
        source: Optional[CorpusSource] = None,
        *,
        engine_config: Optional[GTadocConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        sharded_config: Optional[ShardedServiceConfig] = None,
        num_shards: Optional[int] = None,
        replicas: Optional[int] = None,
    ) -> None:
        config = sharded_config or ShardedServiceConfig()
        if num_shards is not None:
            config = replace(config, num_shards=num_shards)
        if replicas is not None:
            config = replace(config, replication_factor=replicas)
        self.config = config
        self._engine_config = engine_config
        self._service_config = service_config or ServiceConfig()
        transport_kind = (
            config.transport
            or os.environ.get("REPRO_SHARD_TRANSPORT", "").strip()
            or "inprocess"
        )
        if transport_kind not in TRANSPORT_KINDS:
            raise ValueError(
                f"REPRO_SHARD_TRANSPORT must be one of {TRANSPORT_KINDS}, "
                f"got {transport_kind!r}"
            )
        self._transport_kind = transport_kind
        self._lock = make_lock("serve.router")
        self._shards: List[_Shard] = [
            self._new_shard(shard_id) for shard_id in range(config.num_shards)
        ]
        self._next_shard_id = config.num_shards
        # Routing state: per-fingerprint query counts decide replication;
        # replicated fingerprints carry a round-robin cursor.  Rankings
        # are memoized per fingerprint (dropped on resize — the only
        # event that changes them) so the hot path does one dict lookup,
        # not num_shards hashes, under the router lock.
        self._fingerprint_queries: Dict[str, int] = {}
        self._total_routed = 0
        #: Sum of the (decayed) per-fingerprint counts — the share basis.
        self._heat_total = 0
        #: Placements since the last heat decay.
        self._window_routed = 0
        self._replica_cursor: Dict[str, int] = {}
        self._rank_cache: Dict[str, List[int]] = {}
        # Mutable corpora route by their *uid* (first-epoch fingerprint),
        # which is stable across mutations, so a live corpus keeps landing
        # on its warm shard.  Sessions, however, are keyed by the current
        # epoch's fingerprint inside each shard; this bounded alias maps
        # the fingerprints seen at routing time back to the routing uid so
        # resize() can decide ownership of resident sessions.
        self._routing_alias: Dict[str, str] = {}
        self._placements = 0
        self._promotions = 0
        self._demotions = 0
        self._moved_sessions = 0
        self._shard_failures = 0
        self._replaced_shards = 0
        # Wire traffic of shards that already left the pool (dead workers,
        # resizes) — folded into stats() so replacing a shard never makes
        # the pool's serialized-traffic totals go backwards.
        self._retired_wire_messages = 0.0
        self._retired_wire_bytes = 0.0
        # Placement traffic has its own lock: charging a finished outcome
        # must not contend with the routing hot path.
        self._network = CostCounter()
        self._network_lock = make_lock("serve.network")
        self._corpus_memo = CorpusMemo(self._service_config.corpus_memo_capacity)
        self._closed = False
        self._default: Optional[CompressedCorpus] = (
            self._resolve_source(source) if source is not None else None
        )

    def _new_shard(self, shard_id: int) -> _Shard:
        return _Shard(
            shard_id,
            create_transport(
                self._transport_kind,
                shard_id=shard_id,
                # Outcomes served through the pool carry the pool's name.
                name=self.name,
                engine_config=self._engine_config,
                service_config=self._service_config,
                workers=self.config.shard_workers,
            ),
        )

    # -- the protocol surface ----------------------------------------------------------
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description=self.description,
            device="gpu",
            compressed_domain=True,
            native_sequence_length=True,
            native_file_filter=True,
            amortizes_batches=True,
            supports_traversal_choice=True,
        )

    def submit(
        self,
        query: Union[Query, Task, str],
        *,
        source: Optional[CorpusSource] = None,
        engine_config: Optional[GTadocConfig] = None,
    ) -> RunOutcome:
        """Route one query to its owning shard and answer it there.

        A :class:`~repro.serve.transport.ShardFailure` — the shard's
        worker process died with this query in flight — is a placement
        problem, not an answer: the dead shard is replaced and the query
        re-routes to the corpus's next live rendezvous owner, up to
        :attr:`MAX_FAILOVER_ATTEMPTS` times.  Queries are idempotent
        reads, so failover changes latency, never answers.
        """
        query = as_query(query)
        compressed = self._resolve_target(source)
        outcome: Optional[RunOutcome] = None
        for attempt in range(self.MAX_FAILOVER_ATTEMPTS + 1):
            # Routing and enqueueing happen under one lock hold, so a
            # concurrent resize/close cannot shut the chosen shard's
            # transport in between.
            with self._lock:
                shard = self._route_locked(self._route_key_locked(compressed))
                future = shard.transport.submit(query, compressed, engine_config)
            try:
                outcome = future.result()
                break
            except ShardFailure:
                self._handle_shard_failure(shard)
                if attempt >= self.MAX_FAILOVER_ATTEMPTS:
                    raise
        self._charge_outcome(query, outcome)
        return outcome

    def run(self, query: Union[Query, Task, str]) -> RunOutcome:
        """:class:`AnalyticsBackend` alias for :meth:`submit`."""
        return self.submit(query)

    def run_batch(
        self,
        queries: Iterable[Union[Query, Task, str]],
        *,
        source: Optional[CorpusSource] = None,
        engine_config: Optional[GTadocConfig] = None,
    ) -> List[RunOutcome]:
        """Serve a batch already in hand, fanned out across the owning shards.

        Queries are routed individually (replicated corpora still
        round-robin), grouped by shard, and each shard group runs as one
        ``run_batch`` on its shard's executor — groups execute
        concurrently, outcomes keep input order.
        """
        queries = [as_query(query) for query in queries]
        if not queries:
            return []
        compressed = self._resolve_target(source)
        outcomes: List[Optional[RunOutcome]] = [None] * len(queries)
        # The whole batch is placed under one lock hold: routing and
        # enqueueing are atomic against resize/close.
        with self._lock:
            route_key = self._route_key_locked(compressed)
            futures = [
                (
                    shard,
                    positions,
                    shard.transport.run_batch(
                        [queries[position] for position in positions],
                        compressed,
                        engine_config,
                    ),
                )
                for shard, positions in self._group_locked(len(queries), route_key)
            ]
        for shard, positions, future in futures:
            try:
                served = future.result()
            except ShardFailure:
                # The group's worker died mid-batch: replace it, then
                # re-route each position individually through submit's
                # own failover loop (idempotent reads — same answers).
                self._handle_shard_failure(shard)
                for position in positions:
                    outcomes[position] = self.submit(
                        queries[position], source=compressed, engine_config=engine_config
                    )
                continue
            for position, outcome in zip(positions, served):
                outcomes[position] = outcome
                self._charge_outcome(queries[position], outcome)
        return outcomes

    # -- the async shard-client path ---------------------------------------------------
    async def submit_async(
        self,
        query: Union[Query, Task, str],
        *,
        source: Optional[CorpusSource] = None,
        engine_config: Optional[GTadocConfig] = None,
        resolve_executor: Optional[Executor] = None,
    ) -> RunOutcome:
        """Route one query from an event loop without holding a caller thread.

        The owning shard's executor runs the engine work; the caller
        pays only a coroutine.  This is what
        :class:`~repro.serve.aio.AsyncAnalyticsService` delegates to in
        shard-router mode.  An unmemoized raw corpus is compressed on
        ``resolve_executor`` (the loop's default executor when ``None``)
        so resolution cannot stall the loop either.
        """
        loop = asyncio.get_running_loop()
        query = as_query(query)
        if isinstance(source, Corpus):
            compressed = await loop.run_in_executor(
                resolve_executor, self._resolve_source, source
            )
        else:
            compressed = self._resolve_target(source)
        outcome: Optional[RunOutcome] = None
        for attempt in range(self.MAX_FAILOVER_ATTEMPTS + 1):
            with self._lock:
                shard = self._route_locked(self._route_key_locked(compressed))
                job = asyncio.wrap_future(
                    shard.transport.submit(query, compressed, engine_config), loop=loop
                )
            try:
                outcome = await job
                break
            except ShardFailure:
                # Replacing a shard drains its transport; keep that
                # blocking work off the event loop.
                await loop.run_in_executor(None, self._handle_shard_failure, shard)
                if attempt >= self.MAX_FAILOVER_ATTEMPTS:
                    raise
        self._charge_outcome(query, outcome)
        return outcome

    async def run_batch_async(
        self,
        queries: Iterable[Union[Query, Task, str]],
        *,
        source: Optional[CorpusSource] = None,
        engine_config: Optional[GTadocConfig] = None,
        resolve_executor: Optional[Executor] = None,
    ) -> List[RunOutcome]:
        """Async counterpart of :meth:`run_batch`: shard groups run
        concurrently on their executors while the loop stays free."""
        loop = asyncio.get_running_loop()
        queries = [as_query(query) for query in queries]
        if not queries:
            return []
        if isinstance(source, Corpus):
            compressed = await loop.run_in_executor(
                resolve_executor, self._resolve_source, source
            )
        else:
            compressed = self._resolve_target(source)
        outcomes: List[Optional[RunOutcome]] = [None] * len(queries)
        with self._lock:
            route_key = self._route_key_locked(compressed)
            jobs = [
                (
                    shard,
                    positions,
                    asyncio.wrap_future(
                        shard.transport.run_batch(
                            [queries[position] for position in positions],
                            compressed,
                            engine_config,
                        ),
                        loop=loop,
                    ),
                )
                for shard, positions in self._group_locked(len(queries), route_key)
            ]

        async def settle(shard: _Shard, positions: List[int], job) -> None:
            try:
                served = await job
            except ShardFailure:
                await loop.run_in_executor(None, self._handle_shard_failure, shard)
                for position in positions:
                    outcomes[position] = await self.submit_async(
                        queries[position], source=compressed, engine_config=engine_config
                    )
                return
            for position, outcome in zip(positions, served):
                outcomes[position] = outcome
                self._charge_outcome(queries[position], outcome)

        await asyncio.gather(*(settle(shard, positions, job) for shard, positions, job in jobs))
        return outcomes

    # -- routing -----------------------------------------------------------------------
    def _route_key_locked(self, compressed: CompressedCorpus) -> str:
        """The stable routing identity of a corpus: its uid.

        A corpus's uid is its first-epoch fingerprint and never changes
        under mutation, so a live corpus keeps hitting its warm shard
        while each shard's core retires old epochs lazily.  The current
        fingerprint is recorded as an alias so :meth:`resize` can map
        resident session keys (current-epoch fingerprints) back to the
        identity they were routed by.  Callers hold :attr:`_lock`.
        """
        uid = compressed.uid
        fingerprint = compressed.fingerprint()
        if fingerprint != uid:
            self._routing_alias[fingerprint] = uid
            while len(self._routing_alias) > self.config.max_tracked_corpora:
                self._routing_alias.pop(next(iter(self._routing_alias)))
        return uid

    def _ranked(self, fingerprint: str) -> List[_Shard]:
        """The fingerprint's shard ranking (memoized until the pool resizes).

        Only *tracked* fingerprints (those with a query count) are
        cached: placement probes — :meth:`shard_for` and friends — for a
        stream of never-routed corpora must not grow router state.
        """
        by_id = {shard.shard_id: shard for shard in self._shards}
        ids = self._rank_cache.get(fingerprint)
        if ids is None:
            ids = rendezvous_rank(fingerprint, list(by_id))
            if fingerprint in self._fingerprint_queries:
                self._rank_cache[fingerprint] = ids
        return [by_id[shard_id] for shard_id in ids]

    def _replica_count(self) -> int:
        return min(self.config.replication_factor, len(self._shards))

    def _decay_heat(self) -> None:
        """Halve every heat counter once per ``heat_decay_window`` placements.

        Exponential decay keeps query *share* a measure of recent
        traffic: a corpus turning hot after a long cold history crosses
        the replication threshold once it dominates the last couple of
        windows, instead of having to outweigh the pool's entire past.
        """
        if self._window_routed < self.config.heat_decay_window:
            return
        self._window_routed = 0
        decayed: Dict[str, int] = {}
        for fingerprint, count in self._fingerprint_queries.items():
            count //= 2
            if count > 0 or fingerprint in self._replica_cursor:
                decayed[fingerprint] = count
            else:
                self._rank_cache.pop(fingerprint, None)
        self._fingerprint_queries = decayed
        self._heat_total = sum(decayed.values())

    def _sweep_replicated(self) -> None:
        """Demote replicated corpora whose query share decayed.

        Evaluated on every routing decision (the replicated set can hold
        at most ``1 / hot_query_share`` corpora, so this is O(1)-ish), so
        a promoted corpus whose traffic simply *stops* is still demoted
        by other corpora's queries diluting its share.  Demotion sits
        below promotion by :data:`DEMOTION_HYSTERESIS`, so a share
        hovering at the threshold does not flap.
        """
        threshold = self.config.hot_query_share * DEMOTION_HYSTERESIS
        basis = max(self._heat_total, 1)
        for fingerprint in list(self._replica_cursor):
            count = self._fingerprint_queries.get(fingerprint, 0)
            if count / basis < threshold:
                del self._replica_cursor[fingerprint]
                self._demotions += 1

    def _evict_cold_corpora(self) -> None:
        """Bound the router's per-corpus state (counts + cached rankings).

        At most one fingerprint overflows per placement, so this evicts
        the single coldest entry with one O(N) scan — no sorting, no
        cache rebuild — and the routing lock is held briefly.
        """
        limit = self.config.max_tracked_corpora
        while len(self._fingerprint_queries) > limit:
            victim = min(
                (
                    fingerprint
                    for fingerprint in self._fingerprint_queries
                    if fingerprint not in self._replica_cursor
                ),
                key=lambda fingerprint: self._fingerprint_queries[fingerprint],
                default=None,
            )
            if victim is None:
                return
            self._heat_total -= self._fingerprint_queries.pop(victim)
            self._rank_cache.pop(victim, None)

    def _route_locked(self, fingerprint: str) -> _Shard:
        """Pick the shard that serves this query; update heat and counters.

        Callers hold :attr:`_lock` and must enqueue the shard's work
        before releasing it, so a concurrent :meth:`resize`/:meth:`close`
        can never shut the chosen shard's executor between routing and
        submission.
        """
        if self._closed:
            raise RuntimeError("ShardedAnalyticsService is closed")
        self._total_routed += 1
        self._window_routed += 1
        self._heat_total += 1
        count = self._fingerprint_queries.get(fingerprint, 0) + 1
        self._fingerprint_queries[fingerprint] = count
        self._decay_heat()
        self._sweep_replicated()
        share = self._fingerprint_queries.get(fingerprint, 0) / max(self._heat_total, 1)
        hot = (
            share >= self.config.hot_query_share
            and self._total_routed >= self.config.min_queries_for_replication
            and self._replica_count() > 1
        )
        if hot and fingerprint not in self._replica_cursor:
            self._replica_cursor[fingerprint] = 0
            self._promotions += 1
        ranked = self._ranked(fingerprint)
        if fingerprint in self._replica_cursor:
            owners = ranked[: self._replica_count()]
            cursor = self._replica_cursor[fingerprint]
            self._replica_cursor[fingerprint] = cursor + 1
            shard = owners[cursor % len(owners)]
        else:
            shard = ranked[0]
        self._evict_cold_corpora()
        self._placements += 1
        shard.routed += 1
        return shard

    def _group_locked(
        self, count: int, fingerprint: str
    ) -> List[Tuple[_Shard, List[int]]]:
        """Route ``count`` batch positions and group them by shard.

        Shared by the sync and async batch paths so routing, replica
        round-robin and grouping cannot drift between them.  Callers
        hold :attr:`_lock` and enqueue each group's work before
        releasing it.
        """
        groups: Dict[int, Tuple[_Shard, List[int]]] = {}
        for position in range(count):
            shard = self._route_locked(fingerprint)
            if shard.shard_id not in groups:
                groups[shard.shard_id] = (shard, [])
            groups[shard.shard_id][1].append(position)
        return list(groups.values())

    # -- crash isolation ---------------------------------------------------------------
    def _handle_shard_failure(self, shard: _Shard) -> None:
        """Replace a dead shard with a fresh worker.

        The replacement takes a **new** shard id, so every rendezvous
        ranking that named the dead shard re-ranks and its corpora land
        on live owners — replicas of their state rebuild there on next
        touch, exactly like a resize, but the sessions lost with the
        worker are counted as :attr:`ShardedStats.shard_failures`, not
        ``moved_sessions`` (nothing *moved*; a process died).  The dead
        transport's wire traffic is folded into the retired totals so
        pool-level accounting never goes backwards.  Idempotent under
        racing callers: only the caller that still finds the shard in
        the pool performs (and counts) the replacement.
        """
        with self._lock:
            if self._closed:
                return
            try:
                index = self._shards.index(shard)
            except ValueError:
                return  # a concurrent failover already replaced it
            replacement = self._new_shard(self._next_shard_id)
            self._next_shard_id += 1
            self._shards[index] = replacement
            # The shard set changed: every memoized ranking is stale.
            self._rank_cache.clear()
            self._shard_failures += 1
            self._replaced_shards += 1
            self._retired_wire_messages += shard.transport.wire_messages
            self._retired_wire_bytes += shard.transport.wire_bytes
        # Drain outside the router lock: close joins the worker process.
        shard.close()

    def _owners(self, fingerprint: str) -> List[_Shard]:
        """The shards currently serving ``fingerprint`` (no counters touched)."""
        ranked = self._ranked(fingerprint)
        if fingerprint in self._replica_cursor:
            return ranked[: self._replica_count()]
        return ranked[:1]

    def shard_for(self, source: CorpusSource) -> int:
        """Index (into the current pool) of the shard owning ``source``."""
        compressed = self._resolve_source(source)
        with self._lock:
            return self._shards.index(self._owners(self._route_key_locked(compressed))[0])

    def owners_for(self, source: CorpusSource) -> List[int]:
        """Pool indices of every shard currently serving ``source``."""
        compressed = self._resolve_source(source)
        with self._lock:
            key = self._route_key_locked(compressed)
            return [self._shards.index(shard) for shard in self._owners(key)]

    def is_replicated(self, source: CorpusSource) -> bool:
        compressed = self._resolve_source(source)
        with self._lock:
            return self._route_key_locked(compressed) in self._replica_cursor

    # -- placement accounting ----------------------------------------------------------
    def _charge_outcome(self, query: Query, outcome: RunOutcome) -> None:
        """Charge the placement traffic of one answered query.

        One message carries the query to its shard; the result comes
        back as one message weighed by its entry count — charged only
        when the result is non-empty, the same discipline as the
        cluster simulator's shuffle accounting.
        """
        entries = result_entry_count(query.task, outcome.result)
        with self._network_lock:
            self._network.charge_network(bytes_sent=QUERY_MESSAGE_BYTES, messages=1.0)
            if entries > 0:
                self._network.charge_network(
                    bytes_sent=wc.RESULT_ENTRY_BYTES * entries, messages=1.0
                )

    def _network_seconds(self, messages: float, sent_bytes: float) -> float:
        spec = self.config.cluster
        return messages * spec.network_latency_s + sent_bytes / (
            spec.network_bandwidth_gb_s * 1e9
        )

    # -- pool management ---------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        with self._lock:
            return len(self._shards)

    @property
    def transport_kind(self) -> str:
        """The deployed shard transport: ``"inprocess"`` or ``"process"``."""
        return self._transport_kind

    @property
    def resident_sessions(self) -> int:
        """Device sessions resident across the whole pool."""
        with self._lock:
            shards = list(self._shards)
        return sum(shard.transport.resident_sessions for shard in shards)

    def resize(self, num_shards: int) -> int:
        """Grow or shrink the pool to ``num_shards``; returns moved sessions.

        Rendezvous hashing keeps the surviving shards' rankings intact,
        so only sessions whose corpus changed owner are dropped (they
        rebuild on their new shard at next touch).  Removed shards are
        drained (their in-flight work completes) and every session they
        held counts as moved.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        with self._lock:
            if self._closed:
                raise RuntimeError("ShardedAnalyticsService is closed")
            old = list(self._shards)
            if num_shards == len(old):
                return 0
            if num_shards > len(old):
                added = [
                    self._new_shard(self._next_shard_id + offset)
                    for offset in range(num_shards - len(old))
                ]
                self._next_shard_id += len(added)
                survivors, removed = old, []
                self._shards = old + added
            else:
                survivors, removed = old[:num_shards], old[num_shards:]
                self._shards = survivors
            # The shard set changed: every memoized ranking is stale.
            self._rank_cache.clear()
            moved = 0
            for shard in removed:
                moved += shard.transport.resident_sessions
                self._retired_wire_messages += shard.transport.wire_messages
                self._retired_wire_bytes += shard.transport.wire_bytes
                shard.close()
            for shard in survivors:
                for key in shard.transport.session_keys():
                    # Sessions are keyed by their epoch's fingerprint; a
                    # mutated corpus routes by uid, so translate through
                    # the alias recorded at routing time.
                    route_key = self._routing_alias.get(key[0], key[0])
                    if shard not in self._owners(route_key):
                        if shard.transport.drop_session(key):
                            moved += 1
            self._moved_sessions += moved
            return moved

    def invalidate(self, source: CorpusSource) -> int:
        """Drop everything derived from ``source`` on every shard.

        Fans out to the whole pool, not just the current owners: a
        demoted corpus may still have replica sessions aging out of
        other shards' LRUs.  Returns total entries dropped.
        """
        compressed = self._resolve_source(source)
        self._corpus_memo.drop_fingerprint(compressed.fingerprint())
        with self._lock:
            shards = list(self._shards)
        return sum(shard.transport.invalidate(compressed) for shard in shards)

    def stats(self) -> ShardedStats:
        with self._lock:
            shards = list(self._shards)
            placements = self._placements
            promotions = self._promotions
            demotions = self._demotions
            moved = self._moved_sessions
            replicated = len(self._replica_cursor)
            routed = tuple(shard.routed for shard in shards)
            failures = self._shard_failures
            replaced = self._replaced_shards
            wire_messages = self._retired_wire_messages
            wire_bytes = self._retired_wire_bytes
            for shard in shards:
                wire_messages += shard.transport.wire_messages
                wire_bytes += shard.transport.wire_bytes
        with self._network_lock:
            messages = self._network.network_messages
            sent_bytes = self._network.network_bytes
        return ShardedStats(
            shards=tuple(shard.transport.stats() for shard in shards),
            shard_ids=tuple(shard.shard_id for shard in shards),
            routed_queries=routed,
            resident_sessions=tuple(
                shard.transport.resident_sessions for shard in shards
            ),
            placements=placements,
            replica_promotions=promotions,
            replica_demotions=demotions,
            moved_sessions=moved,
            replicated_corpora=replicated,
            network_messages=messages,
            network_bytes=sent_bytes,
            network_seconds=self._network_seconds(messages, sent_bytes),
            shard_failures=failures,
            replaced_shards=replaced,
            wire_messages=wire_messages,
            wire_bytes=wire_bytes,
            wire_seconds=self._network_seconds(wire_messages, wire_bytes),
        )

    def close(self) -> None:
        """Drain and release every shard executor (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            shards = list(self._shards)
        for shard in shards:
            shard.close()

    def __enter__(self) -> "ShardedAnalyticsService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------------
    def _resolve_source(self, source: CorpusSource) -> CompressedCorpus:
        return self._corpus_memo.resolve(source)

    def _resolve_target(self, source: Optional[CorpusSource]) -> CompressedCorpus:
        if source is None:
            if self._default is None:
                raise ValueError(
                    "no corpus to serve: pass source= or construct the service with one"
                )
            return self._default
        return self._resolve_source(source)
