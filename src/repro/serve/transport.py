"""Shard transports: how the router reaches a shard's serving core.

The sharded service used to *be* its deployment shape — every shard a
``ThreadPoolExecutor`` in the router's process.  This module makes the
shape a strategy.  :class:`ShardTransport` is the seam: the router
routes, meters heat and aggregates stats exactly as before, and talks
to each shard only through this interface.  Two implementations ship:

:class:`InProcessTransport`
    Today's path, bit for bit: the shard's
    :class:`~repro.serve.service.AnalyticsService` on its own bounded
    thread pool.  Zero serialization, zero wire bytes.

:class:`ProcessTransport`
    The shard's serving core in a **spawned worker process**
    (:func:`repro.serve.worker.worker_main`) behind a duplex pipe
    speaking the length-prefixed :mod:`repro.serve.wire` codec.  This
    buys true parallel CPU-side traversal (one GIL per shard) and crash
    isolation: a dead worker — broken pipe, nonzero exit — surfaces as
    :class:`ShardFailure`, which the router turns into a shard
    replacement and a re-route instead of a poisoned pool.

    Corpora ship by ``uid``: the first route sends a full snapshot, a
    later epoch sends an append delta when the primary's mutation log
    proves appends-only (so the mutable-corpora delta path — warm
    sessions surviving an append — works across the process boundary),
    and falls back to a fresh snapshot after rebuilds.  One request
    lane serializes the pipe, so the protocol needs no request ids; the
    worker's own coalescer still batches ``run_batch`` groups.

Both transports hand back :class:`concurrent.futures.Future` objects
from ``submit``/``run_batch``.  Enqueueing must stay cheap and
non-blocking because the router calls it under the router lock (that is
what makes route-and-enqueue atomic against resize/close); all pipe
traffic happens on the transport's lane thread afterwards.

Locking: the transport lock (``serve.transport``, rank 12) only guards
spawn state, the liveness flag and the wire byte/message counters.  It
is **never held across a blocking receive** — under the runtime lock
witness that invariant is enforced on every round trip via
:func:`repro.analysis.lockcheck.held_levels`, not assumed.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro.analysis import lockcheck
from repro.analysis.lockcheck import make_lock
from repro.api.outcome import RunOutcome
from repro.api.query import Query
from repro.compression.compressor import CompressedCorpus
from repro.core.session import GTadocConfig
from repro.serve import wire
from repro.serve.service import AnalyticsService, ServiceConfig, ServiceStats
from repro.serve.worker import REPLY_ERRORS, worker_main

__all__ = [
    "TRANSPORT_KINDS",
    "ShardFailure",
    "ShardTransport",
    "InProcessTransport",
    "ProcessTransport",
    "create_transport",
]

#: The deployable transport kinds, in preference order.
TRANSPORT_KINDS = ("inprocess", "process")


class ShardFailure(RuntimeError):
    """A shard worker died with work in flight (or was found dead).

    Raised by a transport when its worker's pipe breaks or its process
    exits.  The router treats it as a *placement* problem, not a query
    problem: the dead shard is replaced, the corpus re-routes to its
    next live rendezvous owner, and the query is retried there —
    queries are idempotent reads, so a retry can never produce a wrong
    answer, only a later one.
    """


class ShardTransport:
    """The router's view of one shard, wherever its serving core runs.

    ``submit``/``run_batch`` return futures and must be safe to call
    under the router lock (enqueue only — no blocking I/O).  The
    control-plane methods (``invalidate``, ``stats``, ``session_keys``,
    ``drop_session``, ``resident_sessions``) are synchronous.
    """

    #: ``"inprocess"`` or ``"process"``; mirrors :data:`TRANSPORT_KINDS`.
    kind: str = ""

    def submit(
        self,
        query: Query,
        compressed: CompressedCorpus,
        engine_config: Optional[GTadocConfig] = None,
    ) -> "Future[RunOutcome]":
        raise NotImplementedError

    def run_batch(
        self,
        queries: List[Query],
        compressed: CompressedCorpus,
        engine_config: Optional[GTadocConfig] = None,
    ) -> "Future[List[RunOutcome]]":
        raise NotImplementedError

    def invalidate(self, compressed: CompressedCorpus) -> int:
        raise NotImplementedError

    def stats(self) -> ServiceStats:
        raise NotImplementedError

    def session_keys(self) -> List[Tuple[str, Optional[GTadocConfig]]]:
        raise NotImplementedError

    def drop_session(self, key: Tuple[str, Optional[GTadocConfig]]) -> bool:
        raise NotImplementedError

    @property
    def resident_sessions(self) -> int:
        raise NotImplementedError

    @property
    def alive(self) -> bool:
        return True

    #: Serialized wire traffic (zero for in-process transports).
    @property
    def wire_messages(self) -> float:
        return 0.0

    @property
    def wire_bytes(self) -> float:
        return 0.0

    def close(self) -> None:
        raise NotImplementedError


class InProcessTransport(ShardTransport):
    """The classic shard shape: a serving core on its own thread pool."""

    kind = "inprocess"

    def __init__(
        self,
        shard_id: int,
        name: str,
        engine_config: Optional[GTadocConfig],
        service_config: Optional[ServiceConfig],
        workers: int,
    ) -> None:
        self.service = AnalyticsService(
            engine_config=engine_config, service_config=service_config
        )
        # Outcomes served through the pool carry the pool's backend name.
        self.service.name = name
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"gtadoc-shard-{shard_id}"
        )

    def submit(self, query, compressed, engine_config=None):
        return self._executor.submit(
            self.service.submit, query, source=compressed, engine_config=engine_config
        )

    def run_batch(self, queries, compressed, engine_config=None):
        return self._executor.submit(
            self.service.run_batch,
            queries,
            source=compressed,
            engine_config=engine_config,
        )

    def invalidate(self, compressed):
        return self.service.invalidate(compressed)

    def stats(self):
        return self.service.stats()

    def session_keys(self):
        return self.service.session_keys()

    def drop_session(self, key):
        return self.service.drop_session(key)

    @property
    def resident_sessions(self):
        return self.service.resident_sessions

    def close(self):
        self._executor.shutdown(wait=True)


def _empty_service_stats() -> ServiceStats:
    from repro.serve.caches import CacheStats

    empty = CacheStats(capacity=0, size=0)
    return ServiceStats(
        queries=0,
        executed_queries=0,
        micro_batches=0,
        coalesced_queries=0,
        kernel_launches=0,
        shared_kernel_launches=0,
        session_cache=empty,
        result_cache=empty,
    )


def _ensure_child_importable() -> None:
    """Make sure a spawned worker can ``import repro``.

    Spawn re-imports the target by qualified name in a fresh
    interpreter, which only works if the package root is on the child's
    path.  Tests and the CLI run with ``PYTHONPATH=src`` already; this
    covers callers that grew ``sys.path`` some other way.
    """
    root = str(Path(__file__).resolve().parents[2])
    existing = os.environ.get("PYTHONPATH", "")
    paths = existing.split(os.pathsep) if existing else []
    if root not in paths and root in sys.path or not paths:
        os.environ["PYTHONPATH"] = (
            os.pathsep.join([root] + paths) if paths else root
        )


class ProcessTransport(ShardTransport):
    """One shard in a spawned worker process behind a framed pipe.

    The worker starts lazily on the first request, so constructing a
    pool (or resizing one) stays cheap.  A single lane thread owns the
    pipe: requests enqueue as futures and execute strictly in order —
    corpus sync, then the op — which keeps the wire protocol free of
    request ids and makes ``_shipped`` (per-uid shipped epoch state)
    lane-private, needing no lock.
    """

    kind = "process"

    def __init__(
        self,
        shard_id: int,
        name: str,
        engine_config: Optional[GTadocConfig],
        service_config: Optional[ServiceConfig],
        workers: int,
    ) -> None:
        # ``workers`` shapes the in-process thread pool; a worker
        # process serves its single request lane, so it is unused here.
        del workers
        self._shard_id = shard_id
        self._name = name
        self._engine_config = engine_config
        self._service_config = service_config
        self._lane = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"gtadoc-wire-{shard_id}"
        )
        self._lock = make_lock("serve.transport")
        self._process: Optional[multiprocessing.process.BaseProcess] = None
        self._conn = None
        self._dead = False
        self._closed = False
        #: uid -> (shipped version, shipped file count); lane-thread only.
        self._shipped = {}
        self._wire_message_count = 0.0
        self._wire_byte_count = 0.0

    # -- data plane --------------------------------------------------------------------
    def submit(self, query, compressed, engine_config=None):
        return self._lane.submit(self._submit_task, query, compressed, engine_config)

    def run_batch(self, queries, compressed, engine_config=None):
        return self._lane.submit(
            self._run_batch_task, list(queries), compressed, engine_config
        )

    def _submit_task(self, query, compressed, engine_config):
        uid = self._sync_corpus(compressed)
        return self._roundtrip(
            ("submit", {"uid": uid, "query": query, "engine_config": engine_config})
        )

    def _run_batch_task(self, queries, compressed, engine_config):
        uid = self._sync_corpus(compressed)
        return self._roundtrip(
            (
                "run_batch",
                {"uid": uid, "queries": queries, "engine_config": engine_config},
            )
        )

    # -- control plane -----------------------------------------------------------------
    def invalidate(self, compressed):
        try:
            return self._lane.submit(
                self._roundtrip, ("invalidate", {"uid": compressed.uid})
            ).result()
        except ShardFailure:
            # A dead worker's caches are already gone with it.
            return 0

    def stats(self):
        try:
            return self._lane.submit(self._roundtrip, ("stats", None)).result()
        except ShardFailure:
            return _empty_service_stats()

    def session_keys(self):
        try:
            keys = self._lane.submit(
                self._roundtrip, ("session_keys", None)
            ).result()
        except ShardFailure:
            return []
        return [(fingerprint, config) for fingerprint, config in keys]

    def drop_session(self, key):
        try:
            return self._lane.submit(
                self._roundtrip, ("drop_session", {"key": list(key)})
            ).result()
        except ShardFailure:
            return False

    @property
    def resident_sessions(self):
        try:
            return self._lane.submit(
                self._roundtrip, ("resident_sessions", None)
            ).result()
        except ShardFailure:
            return 0

    # -- liveness and accounting -------------------------------------------------------
    @property
    def alive(self) -> bool:
        with self._lock:
            if self._dead or self._closed:
                return False
            process = self._process
        return process is None or process.exitcode is None

    @property
    def wire_messages(self) -> float:
        with self._lock:
            return self._wire_message_count

    @property
    def wire_bytes(self) -> float:
        with self._lock:
            return self._wire_byte_count

    def _count_wire(self, num_bytes: int) -> None:
        with self._lock:
            self._wire_message_count += 1.0
            self._wire_byte_count += float(num_bytes)

    def kill(self) -> None:
        """Hard-kill the worker process (crash-isolation tests/benchmarks).

        The transport is *not* marked dead: the next request discovers
        the corpse through the broken pipe, exactly like a real crash.
        """
        with self._lock:
            process = self._process
        if process is not None:
            process.terminate()
            process.join(timeout=10.0)

    # -- the wire ----------------------------------------------------------------------
    def _spawn(self):
        _ensure_child_importable()
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=worker_main,
            args=(child_conn, self._name, self._engine_config, self._service_config),
            name=f"gtadoc-shard-worker-{self._shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        with self._lock:
            self._process = process
            self._conn = parent_conn
        return parent_conn

    def _ensure_worker(self):
        with self._lock:
            if self._dead:
                raise ShardFailure(f"shard worker {self._shard_id} is dead")
            if self._closed:
                raise ShardFailure(f"shard worker {self._shard_id} is closed")
            if self._conn is not None:
                return self._conn
        return self._spawn()

    def _worker_died(self, error: BaseException) -> ShardFailure:
        with self._lock:
            self._dead = True
            process = self._process
        exitcode = process.exitcode if process is not None else None
        return ShardFailure(
            f"shard worker {self._shard_id} died "
            f"(exitcode {exitcode}): {error!r}"
        )

    def _roundtrip(self, message: Tuple[str, Any]) -> Any:
        """One framed request/reply exchange; lane thread only."""
        conn = self._ensure_worker()
        frame = wire.encode_frame(message)
        try:
            conn.send_bytes(frame)
        except (BrokenPipeError, OSError) as error:
            raise self._worker_died(error) from None
        self._count_wire(len(frame))
        if lockcheck.is_enabled():
            held = lockcheck.held_levels()
            if held:
                raise RuntimeError(
                    f"transport blocking recv with locks held: {held} — "
                    "the wire must never be awaited under a lock"
                )
        try:
            reply = conn.recv_bytes()
        except (EOFError, OSError) as error:
            raise self._worker_died(error) from None
        self._count_wire(len(reply))
        status, payload = wire.decode_frame(reply)
        if status == "error":
            raise REPLY_ERRORS.get(payload["type"], RuntimeError)(payload["message"])
        return payload

    def _sync_corpus(self, compressed: CompressedCorpus) -> str:
        """Bring the worker's replica of ``compressed`` to the current epoch.

        Full snapshot on first contact or after a rebuild; append delta
        when the primary's mutation log proves the gap is appends-only.
        The payload is captured under the corpus lock (one coherent
        epoch), the exchange happens lock-free, and the *payload's*
        version is recorded as shipped — a mutation racing the exchange
        simply re-ships on the next request.
        """
        with compressed.lock:
            uid = compressed.uid
            version = compressed.version
        shipped = self._shipped.get(uid)
        if shipped is not None and shipped[0] >= version:
            return uid
        delta = None
        if shipped is not None:
            delta = wire.corpus_delta(compressed, shipped[0], shipped[1])
        if delta is not None:
            self._roundtrip(("delta", delta))
            self._shipped[uid] = (
                delta["version"],
                shipped[1] + len(delta["appended"]),
            )
        else:
            snapshot = wire.corpus_snapshot(compressed)
            self._roundtrip(("snapshot", snapshot))
            self._shipped[uid] = (snapshot["version"], len(snapshot["file_names"]))
        return uid

    def close(self) -> None:
        """Stop the worker and release the lane (idempotent, crash-tolerant)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            dead = self._dead
            started = self._process is not None
        if started and not dead:
            try:
                self._lane.submit(self._roundtrip, ("close", None)).result(
                    timeout=30.0
                )
            except Exception:
                pass
        self._lane.shutdown(wait=True)
        with self._lock:
            process, conn = self._process, self._conn
            self._process = None
            self._conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=10.0)


def create_transport(
    kind: str,
    *,
    shard_id: int,
    name: str,
    engine_config: Optional[GTadocConfig],
    service_config: Optional[ServiceConfig],
    workers: int,
) -> ShardTransport:
    """Instantiate the transport called ``kind`` for one shard."""
    if kind == "inprocess":
        return InProcessTransport(shard_id, name, engine_config, service_config, workers)
    if kind == "process":
        return ProcessTransport(shard_id, name, engine_config, service_config, workers)
    raise ValueError(
        f"unknown shard transport {kind!r} (choose from {TRANSPORT_KINDS})"
    )
