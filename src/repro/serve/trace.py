"""Synthetic request traces for exercising the serving layer.

A serving workload is not a benchmark grid: requests repeat (users ask
the same hot queries), mix tasks, and sprinkle per-query knobs.  The
generator here produces a deterministic, seeded trace with exactly that
shape so the CLI (``gtadoc serve-bench``), the serving benchmark and
the serving example all replay the same kind of traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analytics.base import Task
from repro.api.query import Query
from repro.compression.compressor import CompressedCorpus
from repro.data.corpus import tokenize
from repro.relational.spec import (
    Aggregate,
    Condition,
    FieldSpec,
    RelationalQuery,
    RowSchema,
)

__all__ = [
    "MutationEvent",
    "TraceConfig",
    "synthesize_trace",
    "default_relational_specs",
]


def default_relational_specs(
    keys: Sequence[str] = ("w1", "w2")
) -> Tuple[RelationalQuery, ...]:
    """A small spec family for relational traffic in synthetic traces.

    The schema is keyed on ``keys`` (each field's value is the token
    following its key), which matches the synthetic datasets' ``wN``
    vocabulary.  On corpora where the keys never occur the rows parse to
    all-``None`` fields and every query deterministically returns no
    groups — still a valid end-to-end exercise of the relational path.
    """
    first, second = keys[0], keys[1 % len(keys)]
    schema = RowSchema(
        fields=(FieldSpec("head", key=first), FieldSpec("tail", key=second))
    )
    return (
        RelationalQuery(schema=schema, group_by="head"),
        RelationalQuery(
            schema=schema,
            group_by="tail",
            aggregates=(Aggregate("count"), Aggregate("min", "head")),
        ),
        RelationalQuery(
            schema=schema,
            predicate=(Condition("head", "ne", second),),
            group_by="head",
            order_by="count",
        ),
    )


@dataclass(frozen=True)
class MutationEvent:
    """One corpus mutation inside a request trace.

    Replays treat mutation events as barriers: in-flight queries of the
    current phase drain, the mutation is applied to the *live* corpus
    through its incremental API, and the trace continues — the serving
    tiers then observe the new epoch lazily on the next routed query.
    The serial baseline applies the same event to its token snapshot and
    recompresses from scratch, so a mutating replay doubles as an
    end-to-end incremental-vs-scratch equivalence check.
    """

    #: ``"append"`` (new files) or ``"replace"`` (rewrite existing files).
    kind: str
    #: ``(file name, text)`` pairs the event introduces or rewrites.
    documents: Tuple[Tuple[str, str], ...]
    #: Index of the corpus this event mutates (multi-corpus traces).
    source: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("append", "replace"):
            raise ValueError(f"mutation kind must be 'append' or 'replace', got {self.kind!r}")
        if not self.documents:
            raise ValueError("a mutation event needs at least one document")
        if self.source < 0:
            raise ValueError("source index must be non-negative")

    def apply(self, compressed: CompressedCorpus) -> None:
        """Apply this event to a live corpus via the incremental API."""
        if self.kind == "append":
            compressed.append_files({name: text for name, text in self.documents})
        else:
            for name, text in self.documents:
                compressed.replace_file(name, text)

    def apply_to_documents(self, streams: Dict[str, List[str]]) -> None:
        """Apply this event to a ``{file name: tokens}`` snapshot in place."""
        for name, text in self.documents:
            if self.kind == "append" and name in streams:
                raise ValueError(f"append of existing file {name!r}")
            if self.kind == "replace" and name not in streams:
                raise KeyError(f"replace of unknown file {name!r}")
            streams[name] = tokenize(text)


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a synthetic request trace."""

    num_requests: int = 64
    seed: int = 17
    #: Probability that a request repeats an earlier query verbatim
    #: (hot queries; these are what the result cache serves).
    repeat_fraction: float = 0.35
    #: Probability that a fresh query asks for a top-k cut.
    top_k_fraction: float = 0.4
    #: Probability that a fresh query restricts itself to a file subset.
    file_subset_fraction: float = 0.2
    #: Sequence lengths a sequence-count query may ask for (``None``
    #: uses the engine default).
    sequence_lengths: Tuple[Optional[int], ...] = (None, None, 4)
    tasks: Tuple[Task, ...] = tuple(Task.all())
    #: Largest file subset a restricted query may name (capped at the
    #: corpus size).  Multi-corpus serving traces raise this so subset
    #: queries exercise more than two files.
    max_subset_files: int = 2
    #: Probability that a fresh request is a relational query (drawn
    #: from :attr:`relational_specs`) instead of a classic task.
    relational_fraction: float = 0.0
    #: Relational specs relational requests draw from; empty uses
    #: :func:`default_relational_specs`.
    relational_specs: Tuple[RelationalQuery, ...] = ()
    #: Probability that a trace slot is a :class:`MutationEvent` (an
    #: append of fresh live files, occasionally a replace) instead of a
    #: query.  Mutating traces model live corpora: replays apply the
    #: events through the incremental mutation API mid-trace.
    mutation_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        fractions = (
            self.repeat_fraction,
            self.top_k_fraction,
            self.file_subset_fraction,
            self.relational_fraction,
            self.mutation_fraction,
        )
        for fraction in fractions:
            if not 0.0 <= fraction <= 1.0:
                raise ValueError("trace fractions must be within [0, 1]")
        if self.max_subset_files < 1:
            raise ValueError("max_subset_files must be >= 1")
        for spec in self.relational_specs:
            if not isinstance(spec, RelationalQuery):
                raise ValueError("relational_specs must hold RelationalQuery specs")


def synthesize_trace(
    file_names: Sequence[str], config: Optional[TraceConfig] = None
) -> List[Union[Query, MutationEvent]]:
    """A deterministic mixed-task trace over a corpus's files.

    ``file_names`` may come from a raw or compressed corpus
    (:attr:`CompressedCorpus.file_names`); the same names and config
    always produce the same trace.  With
    :attr:`TraceConfig.mutation_fraction` on, the trace interleaves
    :class:`MutationEvent` entries between queries.
    """
    if isinstance(file_names, CompressedCorpus):  # convenience
        file_names = file_names.file_names
    config = config or TraceConfig()
    rng = random.Random(config.seed)
    trace: List[Union[Query, MutationEvent]] = []
    num_mutations = 0
    # Repeats are drawn uniformly from the *distinct* fresh queries seen
    # so far, never from the trace itself: sampling the trace would pick
    # repeats-of-repeats, compounding weight onto whichever queries came
    # first instead of modelling a stable set of hot queries.
    distinct: List[Query] = []
    seen: set = set()
    relational_specs = config.relational_specs or default_relational_specs()
    for _ in range(config.num_requests):
        # Only draw when the knob is on, so non-mutating traces keep
        # their exact seeded shape.
        if config.mutation_fraction > 0.0 and rng.random() < config.mutation_fraction:
            num_mutations += 1
            # Appends carry fresh vocabulary (live-ingest shape — and the
            # structurally-stable case the session delta path exercises);
            # the occasional replace rewrites an original file, forcing
            # the rebuild fallback.
            fresh = [f"live{num_mutations}w{j}" for j in range(6)]
            body = " ".join(rng.choice(fresh) for _ in range(rng.randint(8, 24)))
            if file_names and rng.random() < 0.25:
                trace.append(
                    MutationEvent(
                        kind="replace",
                        documents=((rng.choice(list(file_names)), body),),
                    )
                )
            else:
                trace.append(
                    MutationEvent(
                        kind="append", documents=((f"live-{num_mutations}", body),)
                    )
                )
            continue
        if distinct and rng.random() < config.repeat_fraction:
            trace.append(rng.choice(distinct))
            continue
        # Only draw when the knob is on, so traces generated before the
        # relational family existed keep their exact seeded shape.
        relational = (
            config.relational_fraction > 0.0
            and rng.random() < config.relational_fraction
        )
        task = Task.RELATIONAL if relational else rng.choice(config.tasks)
        top_k = rng.choice((5, 10, 20)) if rng.random() < config.top_k_fraction else None
        files = None
        if len(file_names) > 1 and rng.random() < config.file_subset_fraction:
            count = rng.randint(1, min(config.max_subset_files, len(file_names)))
            files = tuple(rng.sample(list(file_names), count))
        if relational:
            query = Query(
                task=task,
                top_k=top_k,
                files=files,
                extras={"relational": rng.choice(relational_specs)},
            )
            trace.append(query)
            if query not in seen:
                seen.add(query)
                distinct.append(query)
            continue
        sequence_length = (
            rng.choice(config.sequence_lengths) if task.is_sequence_sensitive else None
        )
        query = Query(task=task, sequence_length=sequence_length, top_k=top_k, files=files)
        trace.append(query)
        if query not in seen:
            seen.add(query)
            distinct.append(query)
    return trace
