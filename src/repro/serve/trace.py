"""Synthetic request traces for exercising the serving layer.

A serving workload is not a benchmark grid: requests repeat (users ask
the same hot queries), mix tasks, and sprinkle per-query knobs.  The
generator here produces a deterministic, seeded trace with exactly that
shape so the CLI (``gtadoc serve-bench``), the serving benchmark and
the serving example all replay the same kind of traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analytics.base import Task
from repro.api.query import Query
from repro.compression.compressor import CompressedCorpus
from repro.relational.spec import (
    Aggregate,
    Condition,
    FieldSpec,
    RelationalQuery,
    RowSchema,
)

__all__ = ["TraceConfig", "synthesize_trace", "default_relational_specs"]


def default_relational_specs(
    keys: Sequence[str] = ("w1", "w2")
) -> Tuple[RelationalQuery, ...]:
    """A small spec family for relational traffic in synthetic traces.

    The schema is keyed on ``keys`` (each field's value is the token
    following its key), which matches the synthetic datasets' ``wN``
    vocabulary.  On corpora where the keys never occur the rows parse to
    all-``None`` fields and every query deterministically returns no
    groups — still a valid end-to-end exercise of the relational path.
    """
    first, second = keys[0], keys[1 % len(keys)]
    schema = RowSchema(
        fields=(FieldSpec("head", key=first), FieldSpec("tail", key=second))
    )
    return (
        RelationalQuery(schema=schema, group_by="head"),
        RelationalQuery(
            schema=schema,
            group_by="tail",
            aggregates=(Aggregate("count"), Aggregate("min", "head")),
        ),
        RelationalQuery(
            schema=schema,
            predicate=(Condition("head", "ne", second),),
            group_by="head",
            order_by="count",
        ),
    )


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a synthetic request trace."""

    num_requests: int = 64
    seed: int = 17
    #: Probability that a request repeats an earlier query verbatim
    #: (hot queries; these are what the result cache serves).
    repeat_fraction: float = 0.35
    #: Probability that a fresh query asks for a top-k cut.
    top_k_fraction: float = 0.4
    #: Probability that a fresh query restricts itself to a file subset.
    file_subset_fraction: float = 0.2
    #: Sequence lengths a sequence-count query may ask for (``None``
    #: uses the engine default).
    sequence_lengths: Tuple[Optional[int], ...] = (None, None, 4)
    tasks: Tuple[Task, ...] = tuple(Task.all())
    #: Largest file subset a restricted query may name (capped at the
    #: corpus size).  Multi-corpus serving traces raise this so subset
    #: queries exercise more than two files.
    max_subset_files: int = 2
    #: Probability that a fresh request is a relational query (drawn
    #: from :attr:`relational_specs`) instead of a classic task.
    relational_fraction: float = 0.0
    #: Relational specs relational requests draw from; empty uses
    #: :func:`default_relational_specs`.
    relational_specs: Tuple[RelationalQuery, ...] = ()

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        fractions = (
            self.repeat_fraction,
            self.top_k_fraction,
            self.file_subset_fraction,
            self.relational_fraction,
        )
        for fraction in fractions:
            if not 0.0 <= fraction <= 1.0:
                raise ValueError("trace fractions must be within [0, 1]")
        if self.max_subset_files < 1:
            raise ValueError("max_subset_files must be >= 1")
        for spec in self.relational_specs:
            if not isinstance(spec, RelationalQuery):
                raise ValueError("relational_specs must hold RelationalQuery specs")


def synthesize_trace(
    file_names: Sequence[str], config: Optional[TraceConfig] = None
) -> List[Query]:
    """A deterministic mixed-task trace over a corpus's files.

    ``file_names`` may come from a raw or compressed corpus
    (:attr:`CompressedCorpus.file_names`); the same names and config
    always produce the same trace.
    """
    if isinstance(file_names, CompressedCorpus):  # convenience
        file_names = file_names.file_names
    config = config or TraceConfig()
    rng = random.Random(config.seed)
    trace: List[Query] = []
    # Repeats are drawn uniformly from the *distinct* fresh queries seen
    # so far, never from the trace itself: sampling the trace would pick
    # repeats-of-repeats, compounding weight onto whichever queries came
    # first instead of modelling a stable set of hot queries.
    distinct: List[Query] = []
    seen: set = set()
    relational_specs = config.relational_specs or default_relational_specs()
    for _ in range(config.num_requests):
        if distinct and rng.random() < config.repeat_fraction:
            trace.append(rng.choice(distinct))
            continue
        # Only draw when the knob is on, so traces generated before the
        # relational family existed keep their exact seeded shape.
        relational = (
            config.relational_fraction > 0.0
            and rng.random() < config.relational_fraction
        )
        task = Task.RELATIONAL if relational else rng.choice(config.tasks)
        top_k = rng.choice((5, 10, 20)) if rng.random() < config.top_k_fraction else None
        files = None
        if len(file_names) > 1 and rng.random() < config.file_subset_fraction:
            count = rng.randint(1, min(config.max_subset_files, len(file_names)))
            files = tuple(rng.sample(list(file_names), count))
        if relational:
            query = Query(
                task=task,
                top_k=top_k,
                files=files,
                extras={"relational": rng.choice(relational_specs)},
            )
            trace.append(query)
            if query not in seen:
                seen.add(query)
                distinct.append(query)
            continue
        sequence_length = (
            rng.choice(config.sequence_lengths) if task.is_sequence_sensitive else None
        )
        query = Query(task=task, sequence_length=sequence_length, top_k=top_k, files=files)
        trace.append(query)
        if query not in seen:
            seen.add(query)
            distinct.append(query)
    return trace
