"""Task enumeration and canonical result shapes.

Every analytics engine in the library (uncompressed reference, CPU
TADOC, parallel TADOC, distributed TADOC, G-TADOC) returns results in
the shapes defined here so that correctness tests can compare them with
plain equality.

Result shapes
-------------
``WORD_COUNT``
    ``{word: corpus-wide count}``
``SORT``
    ``[(word, count), ...]`` sorted by descending count, then word.
``INVERTED_INDEX``
    ``{word: [file name, ...]}`` with file lists sorted by name.
``TERM_VECTOR``
    ``{file name: {word: count}}``
``SEQUENCE_COUNT``
    ``{(w1, ..., wl): count}`` over word *l*-grams (default ``l = 3``)
    that do not cross file boundaries.
``RANKED_INVERTED_INDEX``
    ``{word: [(file name, count), ...]}`` sorted by descending count,
    then file name.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Tuple, Union

__all__ = [
    "Task",
    "TaskResult",
    "SEQUENCE_LENGTH_DEFAULT",
    "normalize_result",
    "copy_normalized",
    "results_equal",
]

#: Sequence length used by sequence count unless overridden ("counting
#: three continuous word sequences" in the paper's challenge 3).
SEQUENCE_LENGTH_DEFAULT = 3

#: Union of all task result shapes.
TaskResult = Union[
    Dict[str, int],
    List[Tuple[str, int]],
    Dict[str, List[str]],
    Dict[str, Dict[str, int]],
    Dict[Tuple[str, ...], int],
    Dict[str, List[Tuple[str, int]]],
]


class Task(str, enum.Enum):
    """The six CompressDirect analytics tasks supported by G-TADOC."""

    WORD_COUNT = "word_count"
    SORT = "sort"
    INVERTED_INDEX = "inverted_index"
    TERM_VECTOR = "term_vector"
    SEQUENCE_COUNT = "sequence_count"
    RANKED_INVERTED_INDEX = "ranked_inverted_index"

    @property
    def is_sequence_sensitive(self) -> bool:
        """True for tasks that need word-order (sequence) information."""
        return self is Task.SEQUENCE_COUNT

    @property
    def is_file_sensitive(self) -> bool:
        """True for tasks whose result is broken down per file."""
        return self in (Task.INVERTED_INDEX, Task.TERM_VECTOR, Task.RANKED_INVERTED_INDEX)

    @classmethod
    def all(cls) -> List["Task"]:
        """All tasks in the paper's evaluation order."""
        return [
            cls.WORD_COUNT,
            cls.SORT,
            cls.INVERTED_INDEX,
            cls.TERM_VECTOR,
            cls.SEQUENCE_COUNT,
            cls.RANKED_INVERTED_INDEX,
        ]

    @classmethod
    def from_name(cls, name: str) -> "Task":
        """Parse a task from its string value (case-insensitive)."""
        lowered = name.strip().lower()
        for task in cls:
            if task.value == lowered:
                return task
        raise ValueError(f"unknown task {name!r}; expected one of {[t.value for t in cls]}")


def normalize_result(task: Task, result: Any) -> TaskResult:
    """Bring a raw engine result into the canonical, order-stable shape."""
    if task is Task.WORD_COUNT:
        return dict(result)
    if task is Task.SORT:
        return sorted(dict(result).items(), key=lambda item: (-item[1], item[0]))
    if task is Task.INVERTED_INDEX:
        return {word: sorted(set(files)) for word, files in dict(result).items()}
    if task is Task.TERM_VECTOR:
        return {file_name: dict(counts) for file_name, counts in dict(result).items()}
    if task is Task.SEQUENCE_COUNT:
        return {tuple(key): value for key, value in dict(result).items()}
    if task is Task.RANKED_INVERTED_INDEX:
        return {
            word: sorted(pairs, key=lambda pair: (-pair[1], pair[0]))
            for word, pairs in dict(result).items()
        }
    raise ValueError(f"unknown task: {task!r}")


def copy_normalized(task: Task, result: Any) -> TaskResult:
    """A fresh copy of an *already canonical* result.

    Equivalent to :func:`normalize_result` when the input is known to be
    in canonical shape already (e.g. an engine result that was
    normalized at the engine boundary), but skips the per-entry
    re-sorting — on large inverted indexes that re-sort dominates the
    serving layer's result shaping.
    """
    if task is Task.SORT:
        return list(result)
    if task is Task.INVERTED_INDEX:
        return {word: list(files) for word, files in result.items()}
    if task is Task.RANKED_INVERTED_INDEX:
        return {word: list(pairs) for word, pairs in result.items()}
    if task is Task.TERM_VECTOR:
        return {file_name: dict(counts) for file_name, counts in result.items()}
    return dict(result)


def results_equal(task: Task, left: Any, right: Any) -> bool:
    """Compare two engine results for the same task, ignoring ordering noise."""
    return normalize_result(task, left) == normalize_result(task, right)
