"""Task enumeration and canonical result shapes.

Every analytics engine in the library (uncompressed reference, CPU
TADOC, parallel TADOC, distributed TADOC, G-TADOC) returns results in
the shapes defined here so that correctness tests can compare them with
plain equality.

Result shapes
-------------
``WORD_COUNT``
    ``{word: corpus-wide count}``
``SORT``
    ``[(word, count), ...]`` sorted by descending count, then word.
``INVERTED_INDEX``
    ``{word: [file name, ...]}`` with file lists sorted by name.
``TERM_VECTOR``
    ``{file name: {word: count}}``
``SEQUENCE_COUNT``
    ``{(w1, ..., wl): count}`` over word *l*-grams (default ``l = 3``)
    that do not cross file boundaries.
``RANKED_INVERTED_INDEX``
    ``{word: [(file name, count), ...]}`` sorted by descending count,
    then file name.
``RELATIONAL``
    ``[(group value, (aggregate values...)), ...]`` sorted by group
    value; a single ``(None, ...)`` entry when the query has no
    ``group_by``.  The query spec travels in ``Query.extras``.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Tuple, Union

__all__ = [
    "Task",
    "TaskResult",
    "SEQUENCE_LENGTH_DEFAULT",
    "normalize_result",
    "copy_normalized",
    "results_equal",
]

#: Sequence length used by sequence count unless overridden ("counting
#: three continuous word sequences" in the paper's challenge 3).
SEQUENCE_LENGTH_DEFAULT = 3

#: Union of all task result shapes.
TaskResult = Union[
    Dict[str, int],
    List[Tuple[str, int]],
    Dict[str, List[str]],
    Dict[str, Dict[str, int]],
    Dict[Tuple[str, ...], int],
    Dict[str, List[Tuple[str, int]]],
    List[Tuple[Any, Tuple[Any, ...]]],
]


class Task(str, enum.Enum):
    """The six CompressDirect analytics tasks, plus relational analytics.

    :attr:`RELATIONAL` executes SELECT-style filter/group-by/aggregate
    queries over typed per-file rows (see :mod:`repro.relational`); its
    query spec is carried in ``Query.extras["relational"]``.
    """

    WORD_COUNT = "word_count"
    SORT = "sort"
    INVERTED_INDEX = "inverted_index"
    TERM_VECTOR = "term_vector"
    SEQUENCE_COUNT = "sequence_count"
    RANKED_INVERTED_INDEX = "ranked_inverted_index"
    RELATIONAL = "relational"

    @property
    def is_sequence_sensitive(self) -> bool:
        """True for tasks that need word-order (sequence) information."""
        return self is Task.SEQUENCE_COUNT

    @property
    def is_file_sensitive(self) -> bool:
        """True for tasks whose result is broken down per file."""
        return self in (Task.INVERTED_INDEX, Task.TERM_VECTOR, Task.RANKED_INVERTED_INDEX)

    @classmethod
    def all(cls) -> List["Task"]:
        """The six classic tasks in the paper's evaluation order.

        :attr:`RELATIONAL` is excluded: it is parameterised by a query
        spec, so there is no single default run for a plain batch.
        """
        return [
            cls.WORD_COUNT,
            cls.SORT,
            cls.INVERTED_INDEX,
            cls.TERM_VECTOR,
            cls.SEQUENCE_COUNT,
            cls.RANKED_INVERTED_INDEX,
        ]

    @classmethod
    def from_name(cls, name: str) -> "Task":
        """Parse a task from its string value (case-insensitive)."""
        lowered = name.strip().lower()
        for task in cls:
            if task.value == lowered:
                return task
        raise ValueError(f"unknown task {name!r}; expected one of {[t.value for t in cls]}")


def normalize_result(task: Task, result: Any) -> TaskResult:
    """Bring a raw engine result into the canonical, order-stable shape."""
    if task is Task.WORD_COUNT:
        return dict(result)
    if task is Task.SORT:
        return sorted(dict(result).items(), key=lambda item: (-item[1], item[0]))
    if task is Task.INVERTED_INDEX:
        return {word: sorted(set(files)) for word, files in dict(result).items()}
    if task is Task.TERM_VECTOR:
        return {file_name: dict(counts) for file_name, counts in dict(result).items()}
    if task is Task.SEQUENCE_COUNT:
        return {tuple(key): value for key, value in dict(result).items()}
    if task is Task.RANKED_INVERTED_INDEX:
        return {
            word: sorted(pairs, key=lambda pair: (-pair[1], pair[0]))
            for word, pairs in dict(result).items()
        }
    if task is Task.RELATIONAL:
        entries = [(group, tuple(values)) for group, values in result]
        if len(entries) > 1:
            # A None group only ever occurs alone (no group_by), so the
            # keys here are homogeneous and directly comparable.
            entries.sort(key=lambda entry: entry[0])
        return entries
    raise ValueError(f"unknown task: {task!r}")


def copy_normalized(task: Task, result: Any) -> TaskResult:
    """A fresh copy of an *already canonical* result.

    Equivalent to :func:`normalize_result` when the input is known to be
    in canonical shape already (e.g. an engine result that was
    normalized at the engine boundary), but skips the per-entry
    re-sorting — on large inverted indexes that re-sort dominates the
    serving layer's result shaping.
    """
    if task in (Task.SORT, Task.RELATIONAL):
        return list(result)
    if task is Task.INVERTED_INDEX:
        return {word: list(files) for word, files in result.items()}
    if task is Task.RANKED_INVERTED_INDEX:
        return {word: list(pairs) for word, pairs in result.items()}
    if task is Task.TERM_VECTOR:
        return {file_name: dict(counts) for file_name, counts in result.items()}
    return dict(result)


def results_equal(task: Task, left: Any, right: Any) -> bool:
    """Compare two engine results for the same task, ignoring ordering noise."""
    return normalize_result(task, left) == normalize_result(task, right)
