"""Reference analytics over uncompressed token streams.

These implementations scan the raw documents directly.  They are the
ground truth that every compressed-domain engine is tested against, and
they double as the functional core of the "GPU-accelerated analytics on
uncompressed data" comparator (paper section VI-E): the GPU baseline
executes exactly this work, only priced on a GPU device model.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Tuple

from repro.analytics.base import SEQUENCE_LENGTH_DEFAULT, Task, TaskResult, normalize_result
from repro.data.corpus import Corpus

__all__ = ["UncompressedAnalytics"]


class UncompressedAnalytics:
    """Compute the six analytics tasks directly on a :class:`Corpus`."""

    def __init__(self, corpus: Corpus, sequence_length: int = SEQUENCE_LENGTH_DEFAULT) -> None:
        if sequence_length < 1:
            raise ValueError("sequence_length must be >= 1")
        self.corpus = corpus
        self.sequence_length = sequence_length

    # -- individual tasks ------------------------------------------------------------
    def word_count(self) -> Dict[str, int]:
        """Corpus-wide word frequencies."""
        counts: Counter = Counter()
        for document in self.corpus:
            counts.update(document.tokens)
        return dict(counts)

    def sort(self) -> List[Tuple[str, int]]:
        """Words sorted by descending corpus frequency (ties by word)."""
        return normalize_result(Task.SORT, self.word_count())

    def inverted_index(self) -> Dict[str, List[str]]:
        """Word -> sorted list of files containing the word."""
        index: Dict[str, set] = defaultdict(set)
        for document in self.corpus:
            for token in set(document.tokens):
                index[token].add(document.name)
        return {word: sorted(files) for word, files in index.items()}

    def term_vector(self) -> Dict[str, Dict[str, int]]:
        """File -> word frequency vector."""
        return {
            document.name: dict(Counter(document.tokens)) for document in self.corpus
        }

    def sequence_count(self) -> Dict[Tuple[str, ...], int]:
        """Corpus-wide counts of word *l*-grams that stay within one file."""
        length = self.sequence_length
        counts: Counter = Counter()
        for document in self.corpus:
            tokens = document.tokens
            for start in range(len(tokens) - length + 1):
                counts[tuple(tokens[start : start + length])] += 1
        return dict(counts)

    def ranked_inverted_index(self) -> Dict[str, List[Tuple[str, int]]]:
        """Word -> files ranked by the word's in-file frequency."""
        per_file = self.term_vector()
        ranked: Dict[str, List[Tuple[str, int]]] = defaultdict(list)
        for file_name, vector in per_file.items():
            for word, count in vector.items():
                ranked[word].append((file_name, count))
        return {
            word: sorted(pairs, key=lambda pair: (-pair[1], pair[0]))
            for word, pairs in ranked.items()
        }

    def relational(self, spec) -> List[Tuple[object, Tuple[object, ...]]]:
        """SELECT-style filter/group-by/aggregate over per-file rows.

        Each document is parsed into one typed row by scanning its
        token stream with the same parse-state monoid the compressed
        engines fold over the grammar, so results are bit-identical to
        the compressed-domain path.
        """
        from repro.relational import compute as rc

        rows = [rc.row_from_tokens(document.tokens, spec.schema) for document in self.corpus]
        return rc.execute_relational(rows, spec)

    # -- dispatcher --------------------------------------------------------------------
    def run(self, task: Task, *, relational=None) -> TaskResult:
        """Run ``task`` and return its canonical result.

        ``relational`` is the :class:`~repro.relational.spec.RelationalQuery`
        required by :attr:`Task.RELATIONAL`.
        """
        if task is Task.RELATIONAL:
            if relational is None:
                raise ValueError("the relational task needs a RelationalQuery spec")
            return normalize_result(task, self.relational(relational))
        handlers = {
            Task.WORD_COUNT: self.word_count,
            Task.SORT: self.sort,
            Task.INVERTED_INDEX: self.inverted_index,
            Task.TERM_VECTOR: self.term_vector,
            Task.SEQUENCE_COUNT: self.sequence_count,
            Task.RANKED_INVERTED_INDEX: self.ranked_inverted_index,
        }
        return normalize_result(task, handlers[task]())
