"""Analytics task definitions and reference implementations.

The paper (section V) exposes six text-analytics tasks through the
CompressDirect interfaces: *word count*, *sort*, *inverted index*,
*term vector*, *sequence count* and *ranked inverted index*.  This
package defines

* :class:`Task` — the task enumeration shared by every engine,
* the canonical result shapes for each task (plain dictionaries/lists,
  so results from different engines compare with ``==``), and
* :class:`UncompressedAnalytics` — straightforward implementations over
  the raw token streams.  They serve both as the ground truth for
  correctness tests and as the functional core of the
  "GPU-accelerated uncompressed analytics" comparator in section VI-E.
"""

from repro.analytics.base import (
    SEQUENCE_LENGTH_DEFAULT,
    Task,
    TaskResult,
    normalize_result,
    results_equal,
)
from repro.analytics.reference import UncompressedAnalytics

__all__ = [
    "Task",
    "TaskResult",
    "SEQUENCE_LENGTH_DEFAULT",
    "normalize_result",
    "results_equal",
    "UncompressedAnalytics",
]
