"""Shared result-derivation helpers.

Several engines (CPU TADOC, distributed TADOC, G-TADOC) produce the
same intermediate shapes — corpus-wide word-id counts or per-file
word-id counts — and then derive the task-specific results from them.
These helpers centralise that derivation so every engine reports
results in exactly the canonical shapes defined in
:mod:`repro.analytics.base`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analytics.base import Task, TaskResult, normalize_result
from repro.compression.dictionary import Dictionary

__all__ = [
    "decode_word_counts",
    "decode_per_file_counts",
    "word_count_to_sort",
    "per_file_counts_to_term_vector",
    "per_file_counts_to_inverted_index",
    "per_file_counts_to_ranked_inverted_index",
    "per_file_counts_to_word_count",
    "decode_sequence_counts",
]


def decode_word_counts(counts: Dict[int, int], dictionary: Dictionary) -> Dict[str, int]:
    """Word-id counts -> word counts."""
    return {dictionary.decode(word_id): count for word_id, count in counts.items() if count}


def decode_per_file_counts(
    per_file: Sequence[Dict[int, int]],
    file_names: Sequence[str],
    dictionary: Dictionary,
) -> Dict[str, Dict[str, int]]:
    """Per-file word-id counts -> ``{file: {word: count}}``."""
    decoded: Dict[str, Dict[str, int]] = {}
    for file_index, counts in enumerate(per_file):
        decoded[file_names[file_index]] = {
            dictionary.decode(word_id): count for word_id, count in counts.items() if count
        }
    return decoded


def word_count_to_sort(word_counts: Dict[str, int]) -> List[Tuple[str, int]]:
    return normalize_result(Task.SORT, word_counts)


def per_file_counts_to_word_count(term_vector: Dict[str, Dict[str, int]]) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for counts in term_vector.values():
        for word, count in counts.items():
            totals[word] = totals.get(word, 0) + count
    return totals


def per_file_counts_to_term_vector(term_vector: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    return {file_name: dict(counts) for file_name, counts in term_vector.items()}


def per_file_counts_to_inverted_index(term_vector: Dict[str, Dict[str, int]]) -> Dict[str, List[str]]:
    index: Dict[str, List[str]] = {}
    for file_name, counts in term_vector.items():
        for word, count in counts.items():
            if count:
                index.setdefault(word, []).append(file_name)
    return {word: sorted(files) for word, files in index.items()}


def per_file_counts_to_ranked_inverted_index(
    term_vector: Dict[str, Dict[str, int]],
) -> Dict[str, List[Tuple[str, int]]]:
    ranked: Dict[str, List[Tuple[str, int]]] = {}
    for file_name, counts in term_vector.items():
        for word, count in counts.items():
            if count:
                ranked.setdefault(word, []).append((file_name, count))
    return {
        word: sorted(pairs, key=lambda pair: (-pair[1], pair[0]))
        for word, pairs in ranked.items()
    }


def decode_sequence_counts(
    counts: Dict[Tuple[int, ...], int], dictionary: Dictionary
) -> Dict[Tuple[str, ...], int]:
    """Word-id l-gram counts -> word l-gram counts."""
    return {
        tuple(dictionary.decode(word_id) for word_id in key): count
        for key, count in counts.items()
        if count
    }
