"""Shared result-derivation helpers.

Several engines (CPU TADOC, distributed TADOC, G-TADOC) produce the
same intermediate shapes — corpus-wide word-id counts or per-file
word-id counts — and then derive the task-specific results from them.
These helpers centralise that derivation so every engine reports
results in exactly the canonical shapes defined in
:mod:`repro.analytics.base`.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analytics.base import Task, normalize_result
from repro.compression.dictionary import Dictionary

__all__ = [
    "decode_word_counts",
    "decode_per_file_counts",
    "word_count_to_sort",
    "per_file_counts_to_term_vector",
    "per_file_counts_to_inverted_index",
    "per_file_counts_to_ranked_inverted_index",
    "per_file_counts_to_word_count",
    "decode_sequence_counts",
]


def decode_word_counts(counts: Dict[int, int], dictionary: Dictionary) -> Dict[str, int]:
    """Word-id counts -> word counts."""
    decode = dictionary.decode
    return {decode(word_id): count for word_id, count in counts.items() if count}


def decode_per_file_counts(
    per_file: Sequence[Dict[int, int]],
    file_names: Sequence[str],
    dictionary: Dictionary,
) -> Dict[str, Dict[str, int]]:
    """Per-file word-id counts -> ``{file: {word: count}}``."""
    decode = dictionary.decode
    decoded: Dict[str, Dict[str, int]] = {}
    for file_index, counts in enumerate(per_file):
        decoded[file_names[file_index]] = {
            decode(word_id): count for word_id, count in counts.items() if count
        }
    return decoded


def word_count_to_sort(word_counts: Dict[str, int]) -> List[Tuple[str, int]]:
    return normalize_result(Task.SORT, word_counts)


def per_file_counts_to_word_count(term_vector: Dict[str, Dict[str, int]]) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for counts in term_vector.values():
        for word, count in counts.items():
            totals[word] = totals.get(word, 0) + count
    return totals


def per_file_counts_to_term_vector(term_vector: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    return {file_name: dict(counts) for file_name, counts in term_vector.items()}


def per_file_counts_to_inverted_index(term_vector: Dict[str, Dict[str, int]]) -> Dict[str, List[str]]:
    # Visiting files in name order makes every posting list come out
    # already sorted, replacing one sort per word with one per call.
    index: Dict[str, List[str]] = {}
    setdefault = index.setdefault
    for file_name in sorted(term_vector):
        for word, count in term_vector[file_name].items():
            if count:
                setdefault(word, []).append(file_name)
    return index


def per_file_counts_to_ranked_inverted_index(
    term_vector: Dict[str, Dict[str, int]],
) -> Dict[str, List[Tuple[str, int]]]:
    # One ``np.lexsort`` over the flattened (word, count, file) triples
    # replaces a Python sort per word: entries are ordered by word in
    # first-encounter order, then count descending, then file name
    # ascending (via the file's rank in name order), and the sorted run
    # is split at word boundaries.
    word_codes: Dict[str, int] = {}
    file_rank = {name: rank for rank, name in enumerate(sorted(term_vector))}
    codes: List[int] = []
    ranks: List[int] = []
    cnts: List[int] = []
    files: List[str] = []
    for file_name, counts in term_vector.items():
        rank = file_rank[file_name]
        for word, count in counts.items():
            if count:
                codes.append(word_codes.setdefault(word, len(word_codes)))
                ranks.append(rank)
                cnts.append(count)
                files.append(file_name)
    if not codes:
        return {}
    code_arr = np.asarray(codes, dtype=np.int64)
    count_arr = np.asarray(cnts, dtype=np.int64)
    order = np.lexsort((np.asarray(ranks, dtype=np.int64), -count_arr, code_arr))
    sorted_codes = code_arr[order]
    sorted_counts = count_arr[order].tolist()
    sorted_files = [files[i] for i in order.tolist()]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    starts = [0, *boundaries.tolist(), len(order)]
    word_list = list(word_codes)
    return {
        word_list[sorted_codes[start]]: list(
            zip(sorted_files[start:end], sorted_counts[start:end])
        )
        for start, end in zip(starts, starts[1:])
    }


def decode_sequence_counts(
    counts: Dict[Tuple[int, ...], int], dictionary: Dictionary
) -> Dict[Tuple[str, ...], int]:
    """Word-id l-gram counts -> word l-gram counts."""
    if not counts:
        return {}
    length = len(next(iter(counts)))
    # One object-array gather decodes every gram at C speed — far
    # cheaper than a per-word ``decode`` call on large gram tables.
    words = getattr(dictionary, "_decode_array", None)
    if words is None or len(words) != dictionary.num_words:
        words = np.asarray(
            [dictionary.decode(word_id) for word_id in range(dictionary.num_words)],
            dtype=object,
        )
        try:
            dictionary._decode_array = words  # type: ignore[attr-defined]
        except AttributeError:
            pass
    ids = np.fromiter(
        chain.from_iterable(counts), dtype=np.int64, count=len(counts) * length
    )
    grams = map(tuple, words[ids].reshape(len(counts), length).tolist())
    return {gram: count for gram, count in zip(grams, counts.values()) if count}
