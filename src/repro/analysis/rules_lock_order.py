"""Static lock-order rule: the held-before graph must respect lockspec.

The rule rebuilds, from source alone, an approximation of every
``held -> acquired`` lock transition the code can perform:

1. **Direct nesting** — a ``with <lock>`` (or ``.acquire()``) inside the
   body of another ``with <lock>`` in the same function.
2. **Nesting through calls** — a call under a held lock to a function
   whose *summary* (the set of lock levels it may acquire, computed as a
   fixpoint over the call graph) is non-empty.  Calls are resolved
   conservatively: ``self.method()`` through the class and its bases,
   ``receiver.method()`` only for the unambiguous receiver names in
   :data:`repro.analysis.lockspec.RECEIVER_CLASSES`, and bare calls to
   same-module functions.
3. **Declared edges** — :data:`~repro.analysis.lockspec.KNOWN_EDGES`,
   the transitions that exist at runtime but hide behind properties or
   callbacks (the runtime witness confirms these dynamically).

Every edge must go *down* the hierarchy (strictly increasing rank); the
only exception is re-acquiring a level declared re-entrant.  A final
cycle check over the surviving edges is kept as a safety net.  Lock
expressions that resolve to no declared level are ignored — the rule
checks the serving stack's hierarchy, not arbitrary private locks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import lockspec
from repro.analysis.lint import Finding, Project, SourceFile, rule

RULE = "lock-order"

_LOCKSPEC_PATH = "repro/analysis/lockspec.py"


@dataclass(frozen=True)
class _Edge:
    held: str
    acquired: str
    path: str
    line: int
    detail: str


@dataclass
class _Func:
    """One function/method with the context needed to resolve its calls."""

    key: Tuple[str, Optional[str], str]  # (rel_path, class name, func name)
    node: ast.AST
    source: SourceFile
    class_name: Optional[str]


class _Index:
    """Project-wide class/method/function tables for call resolution."""

    def __init__(self) -> None:
        self.functions: List[_Func] = []
        #: ``(class name, method name) -> function key``
        self.methods: Dict[Tuple[str, str], Tuple[str, Optional[str], str]] = {}
        #: ``class name -> direct base-class names``
        self.bases: Dict[str, List[str]] = {}
        #: ``(rel_path, function name) -> function key`` for module-level defs
        self.module_funcs: Dict[Tuple[str, str], Tuple[str, Optional[str], str]] = {}

    def add(self, func: _Func) -> None:
        self.functions.append(func)
        rel_path, class_name, name = func.key
        if class_name is not None:
            self.methods.setdefault((class_name, name), func.key)
        else:
            self.module_funcs.setdefault((rel_path, name), func.key)

    def resolve_method(self, class_name: str, method: str) -> Optional[Tuple[str, Optional[str], str]]:
        """Look ``method`` up on ``class_name`` and then its base chain."""
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            key = self.methods.get((current, method))
            if key is not None:
                return key
            queue.extend(self.bases.get(current, []))
        return None


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _index_project(project: Project) -> _Index:
    index = _Index()

    def visit(node: ast.AST, source: SourceFile, class_name: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                index.bases.setdefault(
                    child.name,
                    [name for name in (_base_name(base) for base in child.bases) if name],
                )
                visit(child, source, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                index.add(
                    _Func(
                        key=(source.rel_path, class_name, child.name),
                        node=child,
                        source=source,
                        class_name=class_name,
                    )
                )
                # Defs nested inside this one are module-scope workers
                # (thread bodies), not methods of the enclosing class.
                visit(child, source, None)
            else:
                visit(child, source, class_name)

    for source in project:
        visit(source.tree, source, None)
    return index


def _receiver_name(node: ast.expr) -> Optional[str]:
    """The innermost attribute/name a lock or call hangs off."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _resolve_lock(node: ast.expr, class_name: Optional[str]) -> Optional[str]:
    """Map a lock expression to a declared level name, or ``None``."""
    if isinstance(node, ast.Name):
        return lockspec.RECEIVER_HINTS.get((node.id, ""))
    if isinstance(node, ast.Attribute):
        value = node.value
        if isinstance(value, ast.Name) and value.id in ("self", "cls"):
            if class_name is not None:
                level = lockspec.ATTRIBUTE_LEVELS.get((class_name, node.attr))
                if level is not None:
                    return level
            return None
        receiver = _receiver_name(value)
        if receiver is not None:
            return lockspec.RECEIVER_HINTS.get((receiver, node.attr))
    return None


def _resolve_call(
    call: ast.Call, func: _Func, index: _Index
) -> Optional[Tuple[Tuple[str, Optional[str], str], str]]:
    """``(callee key, display label)`` for a statically resolvable call."""
    target = call.func
    if isinstance(target, ast.Name):
        key = index.module_funcs.get((func.key[0], target.id))
        return (key, target.id) if key is not None else None
    if not isinstance(target, ast.Attribute):
        return None
    value = target.value
    if isinstance(value, ast.Name) and value.id in ("self", "cls"):
        if func.class_name is None:
            return None
        key = index.resolve_method(func.class_name, target.attr)
        if key is not None:
            return key, f"{func.class_name}.{target.attr}"
        return None
    receiver = _receiver_name(value)
    if receiver is None:
        return None
    owner = lockspec.RECEIVER_CLASSES.get(receiver)
    if owner is None:
        return None
    key = index.resolve_method(owner, target.attr)
    if key is not None:
        return key, f"{owner}.{target.attr}"
    return None


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _is_reentrant_reacquire(level: str, held: Tuple[str, ...]) -> bool:
    """Re-acquiring a re-entrant level already held is not a new edge.

    A thread under ``session`` (an RLock) that also holds ``corpus`` and
    then calls a method re-taking ``session`` does not establish a
    ``corpus -> session`` ordering — it never blocks, it just bumps the
    recursion count.  The runtime witness makes the same exception.
    """
    return level in held and lockspec.level(level).reentrant


def _walk_body(
    nodes: Sequence[ast.AST],
    held: Tuple[str, ...],
    func: _Func,
    index: _Index,
    summaries: Dict[Tuple[str, Optional[str], str], Set[str]],
    edges: List[_Edge],
) -> None:
    for node in nodes:
        _walk_node(node, held, func, index, summaries, edges)


def _walk_node(
    node: ast.AST,
    held: Tuple[str, ...],
    func: _Func,
    index: _Index,
    summaries: Dict[Tuple[str, Optional[str], str], Set[str]],
    edges: List[_Edge],
) -> None:
    if isinstance(node, _SCOPE_NODES):
        return  # nested scopes run on their own stacks; walked separately
    if isinstance(node, (ast.With, ast.AsyncWith)):
        inner = held
        for item in node.items:
            _walk_node(item.context_expr, inner, func, index, summaries, edges)
            level = _resolve_lock(item.context_expr, func.class_name)
            if level is not None:
                if not _is_reentrant_reacquire(level, inner):
                    for holder in inner:
                        edges.append(
                            _Edge(holder, level, func.key[0], item.context_expr.lineno,
                                  "nested 'with' acquisition")
                        )
                inner = inner + (level,)
        _walk_body(node.body, inner, func, index, summaries, edges)
        return
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and node.func.attr == "acquire":
            level = _resolve_lock(node.func.value, func.class_name)
            if level is not None and not _is_reentrant_reacquire(level, held):
                for holder in held:
                    edges.append(
                        _Edge(holder, level, func.key[0], node.lineno,
                              "explicit .acquire() under held lock")
                    )
        elif held:
            resolved = _resolve_call(node, func, index)
            if resolved is not None:
                key, label = resolved
                for level in sorted(summaries.get(key, ())):
                    if _is_reentrant_reacquire(level, held):
                        continue
                    for holder in held:
                        edges.append(
                            _Edge(holder, level, func.key[0], node.lineno,
                                  f"call to {label}() which may acquire it")
                        )
    for child in ast.iter_child_nodes(node):
        _walk_node(child, held, func, index, summaries, edges)


def _direct_levels(func: _Func) -> Set[str]:
    """Lock levels this function acquires in its own body (no calls)."""
    levels: Set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            if isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    level = _resolve_lock(item.context_expr, func.class_name)
                    if level is not None:
                        levels.add(level)
            elif (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "acquire"
            ):
                level = _resolve_lock(child.func.value, func.class_name)
                if level is not None:
                    levels.add(level)
            visit(child)

    visit(func.node)
    return levels


def _call_targets(func: _Func, index: _Index) -> List[Tuple[str, Optional[str], str]]:
    targets: List[Tuple[str, Optional[str], str]] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            if isinstance(child, ast.Call):
                resolved = _resolve_call(child, func, index)
                if resolved is not None:
                    targets.append(resolved[0])
            visit(child)

    visit(func.node)
    return targets


def _summaries(index: _Index) -> Dict[Tuple[str, Optional[str], str], Set[str]]:
    """Fixpoint: levels each function may acquire, transitively."""
    summary = {func.key: _direct_levels(func) for func in index.functions}
    calls = {func.key: _call_targets(func, index) for func in index.functions}
    changed = True
    while changed:
        changed = False
        for key, targets in calls.items():
            levels = summary[key]
            before = len(levels)
            for target in targets:
                levels |= summary.get(target, set())
            if len(levels) != before:
                changed = True
    return summary


@rule(RULE, "locks must be acquired in the canonical lockspec hierarchy order")
def check(project: Project) -> List[Finding]:
    index = _index_project(project)
    summaries = _summaries(index)

    edges: List[_Edge] = []
    for func in index.functions:
        body = getattr(func.node, "body", [])
        _walk_body(body, (), func, index, summaries, edges)
    for held, acquired, why in lockspec.KNOWN_EDGES:
        edges.append(_Edge(held, acquired, _LOCKSPEC_PATH, 1, f"declared edge: {why}"))

    findings: List[Finding] = []
    valid_edges: Set[Tuple[str, str]] = set()
    seen: Set[Tuple[str, str, str, int]] = set()
    for edge in edges:
        dedupe = (edge.held, edge.acquired, edge.path, edge.line)
        if dedupe in seen:
            continue
        seen.add(dedupe)
        if edge.held == edge.acquired:
            if lockspec.level(edge.held).reentrant:
                continue
            findings.append(
                Finding(RULE, edge.path, edge.line,
                        f"non-reentrant lock level '{edge.held}' re-acquired while held "
                        f"({edge.detail})")
            )
            continue
        held_rank = lockspec.rank_of(edge.held)
        acquired_rank = lockspec.rank_of(edge.acquired)
        if acquired_rank <= held_rank:
            findings.append(
                Finding(RULE, edge.path, edge.line,
                        f"lock-order inversion: acquires '{edge.acquired}' "
                        f"(rank {acquired_rank}) while holding '{edge.held}' "
                        f"(rank {held_rank}) — {edge.detail}; the hierarchy in "
                        f"analysis/lockspec.py requires strictly increasing rank")
            )
            continue
        valid_edges.add((edge.held, edge.acquired))

    findings.extend(_cycle_findings(valid_edges))
    return findings


def _cycle_findings(edges: Set[Tuple[str, str]]) -> List[Finding]:
    """Safety net: report any cycle among the rank-valid edges."""
    graph: Dict[str, List[str]] = {}
    for held, acquired in sorted(edges):
        graph.setdefault(held, []).append(acquired)
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[str, int] = {}
    stack: List[str] = []
    cycles: List[Tuple[str, ...]] = []

    def visit(node: str) -> None:
        colour[node] = GREY
        stack.append(node)
        for neighbour in graph.get(node, ()):  # pragma: no branch
            state = colour.get(neighbour, WHITE)
            if state == GREY:  # pragma: no cover - unreachable once ranks validate
                cycles.append(tuple(stack[stack.index(neighbour):]) + (neighbour,))
            elif state == WHITE:
                visit(neighbour)
        stack.pop()
        colour[node] = BLACK

    for node in sorted(graph):
        if colour.get(node, WHITE) == WHITE:
            visit(node)
    return [
        Finding(RULE, _LOCKSPEC_PATH, 1,
                "cycle in the held-before graph: " + " -> ".join(cycle))
        for cycle in cycles
    ]
