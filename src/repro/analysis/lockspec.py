"""The canonical lock hierarchy of the serving stack.

Nine modules own :mod:`threading` locks — ``core/session.py``,
``serve/{service,sharding,transport,aio,coalescer,caches,replay}.py``
and ``compression/compressor.py`` — and a query's path through the serving
stack can hold several of them at once (the shard router routes while
resolving a corpus fingerprint; the engine holds its session lock while
delta-syncing against the corpus; a cache write-back evaluates its epoch
guard under the cache lock).  Deadlock freedom therefore rests on one
global rule: **locks are only ever acquired in increasing rank order**.

This module *is* that rule, as data.  Each :class:`LockLevel` names one
lock class, assigns it a rank, and records where it lives; the static
lock-order lint rule (:mod:`repro.analysis.rules_lock_order`) checks
every extracted held-before edge against these ranks, and the runtime
witness (:mod:`repro.analysis.lockcheck`) enforces them at acquire time.

The hierarchy, outermost first
------------------------------

====  ==================  =====================================================
rank  level               lock
====  ==================  =====================================================
 10   serve.router        ``ShardedAnalyticsService._lock`` — shard routing,
                          replication heat, resize/close.  Held while
                          resolving a corpus identity (rank 50) and while
                          walking shard session keys (rank 30) on resize.
 12   serve.transport     ``ProcessTransport._lock`` — a process shard's
                          spawn state, liveness flag and wire counters.
                          Held briefly under the router lock (stats
                          reads, enqueue); never held across a blocking
                          pipe receive.
 20   serve.coalescer     ``QueryCoalescer._lock`` (+ its arrival
                          ``Condition``) — micro-batch group bookkeeping.
                          Never holds anything else: batches execute after
                          it is released.
 30   serve.cache         ``LRUCache._lock`` — session LRU and result
                          cache.  Factories and guards run under it, so it
                          sits above the epoch leaf (rank 62) and above the
                          corpus lock (a session factory may fingerprint).
 32   serve.corpus_memo   ``CorpusMemo._lock`` — raw-corpus compression
                          memo.  Fingerprints corpora (rank 50) while held.
 40   session             ``DeviceSession._lock`` (re-entrant) — all cached
                          device state.  Held across whole batches; acquires
                          the corpus lock to snapshot grammar state.
 50   corpus              ``CompressedCorpus.lock`` (re-entrant) — grammar /
                          dictionary / version coherence.  Innermost of the
                          structural locks: nothing below it but leaves.
 60   serve.stats         ``ServingCore._stats_lock`` — serving counters.
                          A leaf: snapshot reads copy cache stats *before*
                          taking it.
 62   serve.epoch         ``ServingCore._epoch_lock`` — fingerprint
                          generations.  A leaf; acquired under the cache
                          lock by write-back guards.
 64   serve.version       ``ServingCore._version_lock`` — per-uid mutation
                          observations.  A leaf.
 66   serve.network       ``ShardedAnalyticsService._network_lock`` —
                          placement traffic accounting.  A leaf.
 70   aio.call            ``AsyncServeBackend._call_lock`` — serializes
                          sync-adapter calls onto the loop.  A leaf for the
                          holding thread (loop work runs on other threads).
 72   replay.cursor       trace replay's claim-loop cursor lock.  A leaf.
====  ==================  =====================================================

A thread may skip levels going down (router straight to corpus is fine);
it must never acquire a lock whose rank is ≤ the highest rank it already
holds, except re-acquiring a re-entrant lock it already owns.  Same-rank
nesting across *different* instances is a violation too (two sessions,
two caches): no code path needs it, so the witness treats it as an
inversion rather than guessing an instance order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "LockLevel",
    "LEVELS",
    "level",
    "rank_of",
    "ATTRIBUTE_LEVELS",
    "RECEIVER_HINTS",
    "RECEIVER_CLASSES",
    "KNOWN_EDGES",
]


@dataclass(frozen=True)
class LockLevel:
    """One named level of the canonical hierarchy."""

    #: Stable name, also the witness's lock label (e.g. ``"session"``).
    name: str
    #: Position in the hierarchy; locks must be acquired in increasing rank.
    rank: int
    #: Where the lock lives, for reports (``Class.attribute``).
    owner: str
    #: Re-entrant levels may be re-acquired by their holder (RLocks).
    reentrant: bool = False
    #: What the level protects, one line.
    note: str = ""


LEVELS: Tuple[LockLevel, ...] = (
    LockLevel("serve.router", 10, "ShardedAnalyticsService._lock",
              note="shard routing, replication heat, resize/close"),
    LockLevel("serve.transport", 12, "ProcessTransport._lock",
              note="process-shard spawn state, liveness and wire counters"),
    LockLevel("serve.coalescer", 20, "QueryCoalescer._lock",
              note="micro-batch group bookkeeping + arrival condition"),
    LockLevel("serve.cache", 30, "LRUCache._lock",
              note="session LRU / result cache entries and counters"),
    LockLevel("serve.corpus_memo", 32, "CorpusMemo._lock",
              note="raw-corpus compression memo"),
    LockLevel("session", 40, "DeviceSession._lock", reentrant=True,
              note="cached device state; held across batches"),
    LockLevel("corpus", 50, "CompressedCorpus.lock", reentrant=True,
              note="grammar/dictionary/version coherence under mutation"),
    LockLevel("serve.stats", 60, "ServingCore._stats_lock",
              note="serving counters (leaf)"),
    LockLevel("serve.epoch", 62, "ServingCore._epoch_lock",
              note="fingerprint generations (leaf)"),
    LockLevel("serve.version", 64, "ServingCore._version_lock",
              note="per-uid mutation observations (leaf)"),
    LockLevel("serve.network", 66, "ShardedAnalyticsService._network_lock",
              note="placement traffic accounting (leaf)"),
    LockLevel("aio.call", 70, "AsyncServeBackend._call_lock",
              note="sync adapter call serialization (leaf)"),
    LockLevel("replay.cursor", 72, "replay cursor lock",
              note="trace replay claim loop (leaf)"),
)

_BY_NAME: Dict[str, LockLevel] = {entry.name: entry for entry in LEVELS}


def level(name: str) -> LockLevel:
    """The declared level called ``name`` (raises ``KeyError`` if unknown)."""
    return _BY_NAME[name]


def rank_of(name: str) -> int:
    return _BY_NAME[name].rank


# ----------------------------------------------------------------------------------------
# Static-analysis resolution tables
# ----------------------------------------------------------------------------------------
# The lint rule sees attribute expressions, not objects.  These tables
# map what the AST shows to the levels above.

#: ``(class name, attribute name) -> level`` for locks acquired through
#: ``self`` (or a hinted receiver) inside their owning class.
ATTRIBUTE_LEVELS: Dict[Tuple[str, str], str] = {
    ("ShardedAnalyticsService", "_lock"): "serve.router",
    ("ShardedAnalyticsService", "_network_lock"): "serve.network",
    ("ProcessTransport", "_lock"): "serve.transport",
    ("QueryCoalescer", "_lock"): "serve.coalescer",
    ("QueryCoalescer", "_arrival"): "serve.coalescer",
    ("LRUCache", "_lock"): "serve.cache",
    ("CorpusMemo", "_lock"): "serve.corpus_memo",
    ("DeviceSession", "_lock"): "session",
    ("CompressedCorpus", "lock"): "corpus",
    ("ServingCore", "_stats_lock"): "serve.stats",
    ("ServingCore", "_epoch_lock"): "serve.epoch",
    ("ServingCore", "_version_lock"): "serve.version",
    # Front ends inherit the core's locks.
    ("AnalyticsService", "_stats_lock"): "serve.stats",
    ("AnalyticsService", "_epoch_lock"): "serve.epoch",
    ("AnalyticsService", "_version_lock"): "serve.version",
    ("AsyncAnalyticsService", "_stats_lock"): "serve.stats",
    ("AsyncAnalyticsService", "_epoch_lock"): "serve.epoch",
    ("AsyncAnalyticsService", "_version_lock"): "serve.version",
    ("AsyncServeBackend", "_call_lock"): "aio.call",
}

#: Receiver variable (or attribute) names whose lock attributes resolve
#: without class context: ``session.lock`` / ``corpus.lock`` /
#: ``compressed.lock`` in *any* module mean these levels.
RECEIVER_HINTS: Dict[Tuple[str, str], str] = {
    ("session", "lock"): "session",
    ("corpus", "lock"): "corpus",
    ("compressed", "lock"): "corpus",
    ("cursor_lock", ""): "replay.cursor",
}

#: Receiver variable names the call-summary propagation may resolve to a
#: class: a call ``session.sync_with_corpus()`` is looked up as
#: ``DeviceSession.sync_with_corpus``.  Deliberately narrow — only
#: receivers whose binding is unambiguous across the codebase — so the
#: extracted graph stays free of name-collision false edges.
RECEIVER_CLASSES: Dict[str, str] = {
    "session": "DeviceSession",
    "corpus": "CompressedCorpus",
    "compressed": "CompressedCorpus",
    "_sessions": "LRUCache",
    "_results": "LRUCache",
    "_corpus_memo": "CorpusMemo",
    "_coalescer": "QueryCoalescer",
}

#: Held-before edges that exist at runtime but that the syntactic
#: extractor cannot see (property accesses, callables passed as
#: arguments).  Declared here so the static graph validates the *whole*
#: hierarchy, with the runtime witness confirming them dynamically.
KNOWN_EDGES: Tuple[Tuple[str, str, str], ...] = (
    ("serve.router", "corpus",
     "_route_key_locked reads compressed.uid/fingerprint() under the router lock"),
    ("serve.router", "serve.cache",
     "resize() walks shard.service.session_keys()/drop_session() under the router lock"),
    ("serve.cache", "serve.epoch",
     "put_if evaluates the epoch write-back guard under the cache lock"),
    ("serve.corpus_memo", "corpus",
     "CorpusMemo fingerprints corpora while holding the memo lock"),
    ("serve.router", "serve.transport",
     "stats() reads each process shard's wire counters under the router lock"),
)
