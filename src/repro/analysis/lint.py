"""Repo-aware lint engine for project-specific invariants.

Generic linters check Python; this engine checks *this codebase*.  The
invariants the repo's correctness rests on — locks acquired in the
canonical hierarchy order, every simulated kernel routed through the
device, scalar/vector kernel parity, every task with a plan, no
nondeterminism in compute paths — are structural facts about the whole
source tree, not single files, so each rule receives a :class:`Project`
(every parsed module, addressable by repo-relative path) and returns
:class:`Finding` objects.

Rules register themselves with the :func:`rule` decorator; the CLI front
end (``python -m repro.cli lint``) runs them all and exits nonzero when
any finding survives.  Rules must locate files by *relative* path (e.g.
``repro/core/traversal.py``), never absolute, so tests can point the
engine at miniature synthetic repos containing one deliberate violation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "SourceFile",
    "Project",
    "rule",
    "registered_rules",
    "load_project",
    "run_lint",
]


@dataclass(frozen=True)
class Finding:
    """One violation: rule, location, and what is wrong."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """A parsed module of the project."""

    #: Path relative to the project root, POSIX-style (``repro/cli.py``).
    rel_path: str
    path: Path
    text: str
    tree: ast.Module

    @property
    def module(self) -> str:
        """Dotted module name (``repro.core.traversal``)."""
        return self.rel_path[: -len(".py")].replace("/", ".")

    def finding(self, rule_name: str, node_or_line, message: str) -> Finding:
        line = node_or_line if isinstance(node_or_line, int) else getattr(node_or_line, "lineno", 1)
        return Finding(rule=rule_name, path=self.rel_path, line=line, message=message)


class Project:
    """Every parsed source file under one root, addressable by rel path."""

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = root
        self.files: Tuple[SourceFile, ...] = tuple(files)
        self._by_rel: Dict[str, SourceFile] = {entry.rel_path: entry for entry in files}

    def file(self, rel_path: str) -> Optional[SourceFile]:
        """The file at ``rel_path``, or ``None`` if the project lacks it."""
        return self._by_rel.get(rel_path)

    def __iter__(self):
        return iter(self.files)

    def under(self, prefix: str) -> List[SourceFile]:
        """Files whose relative path starts with ``prefix`` (a directory)."""
        if not prefix.endswith("/"):
            prefix += "/"
        return [entry for entry in self.files if entry.rel_path.startswith(prefix)]


RuleFn = Callable[[Project], List[Finding]]


@dataclass(frozen=True)
class _Rule:
    name: str
    description: str
    fn: RuleFn


_REGISTRY: Dict[str, _Rule] = {}


def rule(name: str, description: str) -> Callable[[RuleFn], RuleFn]:
    """Register a rule: ``@rule("lock-order", "...")`` above its function."""

    def register(fn: RuleFn) -> RuleFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate lint rule {name!r}")
        _REGISTRY[name] = _Rule(name=name, description=description, fn=fn)
        return fn

    return register


def registered_rules() -> List[Tuple[str, str]]:
    """``(name, description)`` for every registered rule, sorted by name."""
    _ensure_rules_loaded()
    return sorted((entry.name, entry.description) for entry in _REGISTRY.values())


def _ensure_rules_loaded() -> None:
    # Rule modules register on import; import them lazily so `lint` stays
    # importable even if a rule module is mid-edit.
    from repro.analysis import (  # noqa: F401  (imported for registration side effect)
        rules_determinism,
        rules_epoch_guard,
        rules_kernels,
        rules_lock_order,
        rules_plans,
    )


def load_project(root: Path) -> Project:
    """Parse every ``*.py`` under ``root`` (tests/build trees excluded).

    ``root`` is the directory *containing* the top-level package — for
    this repo, ``src/`` — so relative paths read ``repro/...``.
    """
    root = Path(root).resolve()
    files: List[SourceFile] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if "__pycache__" in rel:
            continue
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise SyntaxError(f"{rel}: {exc}") from exc
        files.append(SourceFile(rel_path=rel, path=path, text=text, tree=tree))
    return Project(root=root, files=files)


def default_root() -> Path:
    """The ``src/`` directory this installed ``repro`` package lives in."""
    return Path(__file__).resolve().parents[2]


def run_lint(
    root: Optional[Path] = None,
    *,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the (selected) rules over the project; findings sorted by site."""
    _ensure_rules_loaded()
    project = load_project(root if root is not None else default_root())
    selected = list(rules) if rules is not None else sorted(_REGISTRY)
    unknown = [name for name in selected if name not in _REGISTRY]
    if unknown:
        raise KeyError(f"unknown lint rule(s): {', '.join(unknown)}")
    findings: List[Finding] = []
    for name in selected:
        findings.extend(_REGISTRY[name].fn(project))
    findings.sort(key=lambda item: (item.path, item.line, item.rule, item.message))
    return findings
