"""Determinism rule: no hidden entropy in kernel/compute paths.

Simulated launches must replay bit-identically: the serving layer's
result cache keys on corpus fingerprint + config, the replay harness
re-executes recorded traces, and the scalar/vector equivalence tests
compare exact counter values.  Any unseeded RNG or wall-clock read
inside a compute module breaks all three silently.  This rule flags, in
the compute packages only (``core``, ``gpusim``, ``compression``,
``analytics``, ``relational``, ``baselines``, ``perf``, ``cluster``):

* module-level ``random.*`` draws (``random.Random(seed)`` instances
  are fine — the seed is explicit);
* wall-clock reads (``time.time``/``monotonic``/``perf_counter`` and
  friends, ``datetime.now``/``utcnow``/``today``);
* unseeded numpy entropy (``np.random.<draw>``, or ``default_rng()``
  with no seed argument).

The benchmarking (``bench``) and serving (``serve``) layers time things
on purpose and are out of scope.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.lint import Finding, Project, rule

RULE = "determinism"

_COMPUTE_DIRS = (
    "repro/core",
    "repro/gpusim",
    "repro/compression",
    "repro/analytics",
    "repro/relational",
    "repro/baselines",
    "repro/perf",
    "repro/cluster",
)

_RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "randbytes",
})
_TIME_READS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
})
_DATETIME_READS = frozenset({"now", "utcnow", "today"})
_NP_RANDOM_DRAWS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "bytes", "uniform", "normal",
})


def _receiver(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _classify(call: ast.Call) -> Optional[str]:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    receiver = _receiver(func.value)
    if receiver == "random":
        if func.attr in _RANDOM_DRAWS:
            return (f"unseeded module-level random.{func.attr}() in a compute path; "
                    f"use an explicitly seeded random.Random(seed) instance")
        if func.attr == "default_rng" and not call.args and not call.keywords:
            return ("np.random.default_rng() without a seed in a compute path; "
                    "pass an explicit seed")
        if func.attr in _NP_RANDOM_DRAWS and receiver == "random":
            # numpy's legacy global RNG (np.random.rand etc.) shares the
            # attribute namespace check above; reached via np.random.<draw>.
            return (f"unseeded numpy global RNG draw random.{func.attr}() in a "
                    f"compute path; use a seeded Generator")
    if receiver == "time" and func.attr in _TIME_READS:
        return (f"wall-clock read time.{func.attr}() in a compute path; simulated "
                f"kernels must derive all values from their inputs")
    if receiver in ("datetime", "date") and func.attr in _DATETIME_READS:
        return (f"wall-clock read {receiver}.{func.attr}() in a compute path; "
                f"compute results must not depend on the calendar")
    return None


@rule(RULE, "no unseeded RNG or wall-clock reads inside compute modules")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for source in project:
        if not any(source.rel_path.startswith(prefix + "/") for prefix in _COMPUTE_DIRS):
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                message = _classify(node)
                if message is not None:
                    findings.append(source.finding(RULE, node, message))
    return findings
