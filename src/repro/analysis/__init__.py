"""Correctness tooling: project-specific lint rules + runtime lock witness.

Two halves, one hierarchy:

* :mod:`repro.analysis.lint` — an AST-based, repo-aware lint engine
  (``python -m repro.cli lint``) whose rules check the invariants this
  codebase's correctness rests on: lock-order
  (:mod:`~repro.analysis.rules_lock_order`), kernel discipline
  (:mod:`~repro.analysis.rules_kernels`), plan/backend coverage
  (:mod:`~repro.analysis.rules_plans`) and compute-path determinism
  (:mod:`~repro.analysis.rules_determinism`).
* :mod:`repro.analysis.lockcheck` — an opt-in runtime lock-order
  witness (``REPRO_LOCK_WITNESS=1``) that turns the existing
  concurrency test suites into a deadlock sanitizer pass.

Both consume :mod:`repro.analysis.lockspec`, the canonical lock
hierarchy declared as data.
"""

from __future__ import annotations

from repro.analysis.lint import Finding, run_lint
from repro.analysis.lockcheck import make_lock

__all__ = ["Finding", "run_lint", "make_lock"]
