"""Plan-coverage rule: every task planned, every backend a real backend.

The engine dispatches through :data:`repro.core.plans.PLAN_REGISTRY`, so
a :class:`~repro.analytics.base.Task` member without a plan is a latent
``KeyError`` on a path no example test may cover.  Likewise the registry
in ``api/registry.py`` hands out whatever ``register_backend`` was given
— this rule statically verifies each registered class (or the class a
factory returns) actually provides the :class:`AnalyticsBackend`
protocol surface (``name``/``run``/``run_batch``/``capabilities``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lint import Finding, Project, SourceFile, rule

RULE = "plan-coverage"

_TASK_MODULE = "repro/analytics/base.py"
_PLANS_MODULE = "repro/core/plans.py"
_REGISTRY_MODULE = "repro/api/registry.py"

_PROTOCOL_MEMBERS = ("name", "run", "run_batch", "capabilities")


def _task_members(source: SourceFile) -> List[str]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef) and node.name == "Task":
            members = []
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and target.id.isupper():
                            members.append(target.id)
            return members
    return []


def _plan_keys(source: SourceFile) -> Tuple[Set[str], int]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        else:
            continue
        if "PLAN_REGISTRY" not in targets or not isinstance(node.value, ast.Dict):
            continue
        keys = {
            key.attr
            for key in node.value.keys
            if isinstance(key, ast.Attribute)
            and isinstance(key.value, ast.Name)
            and key.value.id == "Task"
        }
        return keys, node.lineno
    return set(), 1


def _registered_backends(source: SourceFile) -> List[Tuple[str, int]]:
    """``(class name, registration line)`` per ``register_backend`` call."""
    factories: Dict[str, str] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in ast.walk(node):
                if (
                    isinstance(stmt, ast.Return)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Name)
                ):
                    factories.setdefault(node.name, stmt.value.func.id)

    backends: List[Tuple[str, int]] = []
    for node in ast.walk(source.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "register_backend"
            and len(node.args) >= 2
        ):
            continue
        target = node.args[1]
        if not isinstance(target, ast.Name):
            continue
        backends.append((factories.get(target.id, target.id), node.lineno))
    return backends


class _ClassIndex:
    def __init__(self, project: Project) -> None:
        self.defs: Dict[str, ast.ClassDef] = {}
        for source in project:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    self.defs.setdefault(node.name, node)

    def provides(self, class_name: str, member: str) -> Optional[bool]:
        """Whether the class (or a base) defines ``member``; None = unknown."""
        seen: Set[str] = set()
        queue = [class_name]
        found_any = False
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            node = self.defs.get(current)
            if node is None:
                continue
            found_any = True
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if stmt.name == member:
                        return True
                elif isinstance(stmt, ast.Assign):
                    if any(isinstance(t, ast.Name) and t.id == member for t in stmt.targets):
                        return True
                elif isinstance(stmt, ast.AnnAssign):
                    if isinstance(stmt.target, ast.Name) and stmt.target.id == member:
                        return True
            for base in node.bases:
                if isinstance(base, ast.Name):
                    queue.append(base.id)
                elif isinstance(base, ast.Attribute):
                    queue.append(base.attr)
        if not found_any:
            return None  # class defined outside the project; cannot verify
        return False


@rule(RULE, "every Task has a plan; every registered backend satisfies the protocol")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []

    tasks_src = project.file(_TASK_MODULE)
    plans_src = project.file(_PLANS_MODULE)
    if tasks_src is not None and plans_src is not None:
        members = _task_members(tasks_src)
        keys, line = _plan_keys(plans_src)
        for member in members:
            if member not in keys:
                findings.append(plans_src.finding(
                    RULE, line,
                    f"Task.{member} has no entry in PLAN_REGISTRY; every task "
                    f"member needs a registered TaskPlan",
                ))

    registry_src = project.file(_REGISTRY_MODULE)
    if registry_src is not None:
        index = _ClassIndex(project)
        for class_name, line in _registered_backends(registry_src):
            missing = []
            for member in _PROTOCOL_MEMBERS:
                provided = index.provides(class_name, member)
                if provided is False:
                    missing.append(member)
            if missing:
                findings.append(registry_src.finding(
                    RULE, line,
                    f"registered backend {class_name!r} does not satisfy "
                    f"AnalyticsBackend: missing {', '.join(missing)}",
                ))

    return findings
