"""Kernel-discipline rule: all simulated kernels go through the device.

Two invariants keep the performance model trustworthy:

* **No ad-hoc stats.**  :class:`~repro.perf.counters.KernelStats` may
  only be constructed inside its defining module and inside
  ``gpusim/device.py`` (the ``launch``/``launch_bulk``/``launch_modelled``
  entry points).  Anywhere else, constructing one bypasses the device —
  the launch never lands in ``launch_history``, never charges occupancy,
  and silently drifts from the scalar/vector accounting that the
  equivalence tests pin down.
* **Scalar/vector parity.**  Every kernel name launched by the scalar
  reference walkers in ``core/traversal.py`` must also be launched by a
  bulk counterpart in ``core/vectorized.py`` (parity by launch-name
  set): the bit-identical-stats contract is only testable for kernels
  that exist on both sides.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.lint import Finding, Project, SourceFile, rule

RULE = "kernel-discipline"

#: Modules allowed to construct ``KernelStats`` directly: the defining
#: module (plus its ``scaled()`` copies) and the device's launch paths.
_ALLOWED_STATS_MODULES = frozenset({
    "repro/perf/counters.py",
    "repro/gpusim/device.py",
})

_SCALAR_MODULE = "repro/core/traversal.py"
_VECTOR_MODULE = "repro/core/vectorized.py"


def _launch_names(source: SourceFile, methods: Set[str]) -> Dict[str, int]:
    """Kernel-name literal -> first launch line, for the given entry points."""
    names: Dict[str, int] = {}
    for node in ast.walk(source.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in methods or not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            names.setdefault(first.value, first.lineno)
    return names


@rule(RULE, "kernels launch only via GPUDevice, with scalar/vector name parity")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []

    for source in project:
        if source.rel_path in _ALLOWED_STATS_MODULES:
            continue
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "KernelStats"
            ):
                findings.append(source.finding(
                    RULE, node,
                    "ad-hoc KernelStats construction bypasses the simulated device; "
                    "route the launch through GPUDevice.launch/launch_bulk/"
                    "launch_modelled so it is recorded and charged",
                ))

    scalar = project.file(_SCALAR_MODULE)
    vector = project.file(_VECTOR_MODULE)
    if scalar is not None and vector is not None:
        scalar_names = _launch_names(scalar, {"launch"})
        vector_names = _launch_names(vector, {"launch_bulk", "launch"})
        for name in sorted(set(scalar_names) - set(vector_names)):
            findings.append(scalar.finding(
                RULE, scalar_names[name],
                f"scalar kernel {name!r} has no vectorized counterpart launch in "
                f"{_VECTOR_MODULE}; the scalar/vector bit-identity contract "
                f"requires name-set parity",
            ))

    return findings
