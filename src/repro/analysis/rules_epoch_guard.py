"""Epoch-guard rule: serving caches never write back unguarded.

The serving layer's result cache is only correct because every write
lands through :meth:`repro.serve.caches.LRUCache.put_if` with an epoch
guard: the guard re-checks, *inside the cache's critical section*, that
the corpus epoch the result was computed against is still current.  A
raw ``put`` (or a guard-less ``put_if``) reopens the classic race the
guard closes — compute against epoch N, corpus mutates and invalidation
sweeps the cache, stale write-back lands *after* the sweep and serves
pre-mutation answers forever.

This rule enforces the pattern structurally in ``repro/serve/``: any
attribute a serving class assigns an ``LRUCache(...)`` to is a serving
cache, and every ``.put(...)`` / guard-less ``.put_if(...)`` on such an
attribute is flagged.  ``caches.py`` itself is exempt (``put`` is
defined there, delegating to ``put_if``), as are reads and
``get_or_create`` (the session path keys by fingerprint, so a stale
epoch can never be *looked up*; the races live on the write-back side).
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.lint import Finding, Project, SourceFile, rule

RULE = "epoch-guard"

#: Where LRUCache is defined; its own delegation is not a violation.
_CACHE_MODULE = "repro/serve/caches.py"


def _is_lru_cache_call(node: ast.AST) -> bool:
    """``LRUCache(...)`` or ``caches.LRUCache(...)``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "LRUCache"
    return isinstance(func, ast.Attribute) and func.attr == "LRUCache"


def _cache_attributes(class_node: ast.ClassDef) -> Set[str]:
    """Attribute names the class assigns an ``LRUCache(...)`` to."""
    attrs: Set[str] = set()
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign) or not _is_lru_cache_call(node.value):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return attrs


def _has_guard(call: ast.Call) -> bool:
    """Whether a ``put_if`` call passes a guard (3rd positional or keyword)."""
    if len(call.args) >= 3:
        return True
    return any(keyword.arg == "guard" for keyword in call.keywords)


def _check_class(source: SourceFile, class_node: ast.ClassDef) -> List[Finding]:
    cache_attrs = _cache_attributes(class_node)
    if not cache_attrs:
        return []
    findings: List[Finding] = []
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        receiver = node.func.value
        if not (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and receiver.attr in cache_attrs
        ):
            continue
        if node.func.attr == "put":
            findings.append(source.finding(
                RULE, node,
                f"raw put() on serving cache self.{receiver.attr} in "
                f"{class_node.name}: write back through put_if(..., "
                f"guard=<epoch check>) so a stale result computed against a "
                f"retired corpus epoch cannot land after invalidation",
            ))
        elif node.func.attr == "put_if" and not _has_guard(node):
            findings.append(source.finding(
                RULE, node,
                f"put_if() without a guard on serving cache "
                f"self.{receiver.attr} in {class_node.name}: pass guard= "
                f"re-checking the corpus epoch under the cache lock",
            ))
    return findings


@rule(RULE, "serve/ caches write back only through epoch-guarded put_if")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for source in project.under("repro/serve"):
        if source.rel_path == _CACHE_MODULE:
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(_check_class(source, node))
    return findings
