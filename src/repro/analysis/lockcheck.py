"""Runtime lock-order witness: an opt-in deadlock/race sanitizer.

The static lock-order rule (:mod:`repro.analysis.rules_lock_order`)
checks the held-before edges it can *extract*; this module checks the
edges that actually *happen*.  When enabled, every lock the serving
stack creates through :func:`make_lock` is wrapped in an instrumented
shim that, on each first (non-re-entrant) acquisition,

* records the acquiring thread's stack against the lock,
* adds a ``held -> acquiring`` edge to a global held-before graph for
  every lock the thread already holds, and
* fails **at acquire time** — before blocking — if the acquisition
  violates the canonical hierarchy in :mod:`repro.analysis.lockspec`
  (acquiring a rank ≤ the highest rank held, unless re-acquiring a
  re-entrant lock the thread already owns).

The raised :class:`LockOrderViolation` carries *both* acquisition
stacks: where this thread took the lock it is still holding, and where
it is now trying to take the offending one (plus, when another thread
already established the opposite edge, that thread's two stacks as
well).  Running an existing concurrency test suite with the witness on
therefore doubles as a lock-order/deadlock sanitizer pass — any
interleaving the suite drives is checked against the hierarchy, even if
no deadlock happens to materialize in that run.

Zero overhead when off
----------------------

The witness is disabled by default.  :func:`make_lock` then returns a
plain ``threading.Lock``/``RLock`` — not a wrapper with a fast path,
the actual primitive — so production paths pay nothing, not even an
attribute indirection.  Enable it with the ``REPRO_LOCK_WITNESS=1``
environment variable (checked at import, the CI sanitizer path), with
:func:`enable`, or scoped with the :func:`witness` context manager.
Locks are instrumented at *creation*: construct the objects under test
while the witness is enabled.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis import lockspec

__all__ = [
    "LockOrderViolation",
    "HoldProfile",
    "make_lock",
    "enable",
    "disable",
    "is_enabled",
    "witness",
    "witness_edges",
    "witness_report",
    "held_levels",
    "reset_witness",
    "WitnessLock",
]

#: Stack frames kept per acquisition site (innermost last).
_STACK_DEPTH = 12


class LockOrderViolation(RuntimeError):
    """A lock acquisition that breaks the canonical hierarchy.

    The message embeds both acquisition stacks (and the opposing
    thread's stacks when the inverse edge was already witnessed), so the
    report alone pinpoints the two code paths that disagree on order.
    """

    def __init__(
        self,
        message: str,
        *,
        held_stack: str,
        acquire_stack: str,
        opposite: Optional["_Edge"] = None,
    ) -> None:
        parts = [
            message,
            "",
            "stack that acquired the held lock:",
            held_stack.rstrip(),
            "",
            "stack attempting the offending acquisition:",
            acquire_stack.rstrip(),
        ]
        if opposite is not None:
            parts += [
                "",
                f"opposite-order edge witnessed earlier (thread {opposite.thread!r}):",
                "  while holding (acquired at):",
                opposite.held_stack.rstrip(),
                "  acquired at:",
                opposite.acquire_stack.rstrip(),
            ]
        super().__init__("\n".join(parts))
        self.held_stack = held_stack
        self.acquire_stack = acquire_stack
        self.opposite = opposite


@dataclass(frozen=True)
class _Edge:
    """First witnessed ``held -> acquired`` transition between two levels."""

    held: str
    acquired: str
    thread: str
    held_stack: str
    acquire_stack: str


@dataclass
class _Hold:
    """One lock a thread currently holds."""

    lock: "WitnessLock"
    stack: str
    count: int = 1
    #: ``time.monotonic()`` of the first (outermost) acquisition —
    #: re-entrant re-acquisitions measure one combined hold.
    since: float = field(default_factory=time.monotonic)


@dataclass(frozen=True)
class HoldProfile:
    """Aggregated hold times of one lock level, in seconds."""

    level: str
    rank: int
    count: int
    total: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _WitnessState:
    """Global witness state: the held-before graph and per-thread holds."""

    def __init__(self) -> None:
        self.enabled = False
        self._graph_lock = threading.Lock()
        #: ``(held level, acquired level) -> first witnessed edge``.
        self.edges: Dict[Tuple[str, str], _Edge] = {}
        #: ``level -> [count, total, min, max]`` hold-time aggregates.
        self.hold_times: Dict[str, List[float]] = {}
        self._local = threading.local()

    # -- per-thread holds --------------------------------------------------------------
    def holds(self) -> List[_Hold]:
        stack = getattr(self._local, "holds", None)
        if stack is None:
            stack = self._local.holds = []
        return stack

    # -- the check ---------------------------------------------------------------------
    def on_acquire(self, lock: "WitnessLock") -> Optional[_Hold]:
        """Validate and record one acquisition attempt (before blocking).

        Returns the existing :class:`_Hold` when this is a re-entrant
        re-acquisition (the caller only bumps its count), else ``None``
        (the caller pushes a new hold after the real acquire succeeds).
        """
        holds = self.holds()
        for hold in holds:
            if hold.lock is lock:
                if lock.reentrant:
                    return hold
                raise LockOrderViolation(
                    f"non-reentrant lock {lock.describe()} re-acquired by its holder",
                    held_stack=hold.stack,
                    acquire_stack=_capture_stack(),
                )
        if not holds:
            return None
        acquire_stack = _capture_stack()
        for hold in holds:
            self._record_edge(hold, lock, acquire_stack)
        worst = max(holds, key=lambda hold: hold.lock.rank)
        if lock.rank <= worst.lock.rank:
            opposite = self.edges.get((lock.level, worst.lock.level))
            raise LockOrderViolation(
                f"lock-order inversion: acquiring {lock.describe()} while holding "
                f"{worst.lock.describe()} — the hierarchy requires "
                f"{worst.lock.level} (rank {worst.lock.rank}) to be inner to "
                f"{lock.level} (rank {lock.rank}), never held across it",
                held_stack=worst.stack,
                acquire_stack=acquire_stack,
                opposite=opposite,
            )
        return None

    def _record_edge(self, hold: _Hold, lock: "WitnessLock", acquire_stack: str) -> None:
        key = (hold.lock.level, lock.level)
        if key[0] == key[1]:
            return
        with self._graph_lock:
            if key not in self.edges:
                self.edges[key] = _Edge(
                    held=key[0],
                    acquired=key[1],
                    thread=threading.current_thread().name,
                    held_stack=hold.stack,
                    acquire_stack=acquire_stack,
                )

    def push(self, lock: "WitnessLock") -> None:
        self.holds().append(_Hold(lock=lock, stack=_capture_stack()))

    def pop(self, lock: "WitnessLock") -> None:
        holds = self.holds()
        for index in range(len(holds) - 1, -1, -1):
            hold = holds[index]
            if hold.lock is lock:
                hold.count -= 1
                if hold.count == 0:
                    del holds[index]
                    self.record_hold(lock.level, time.monotonic() - hold.since)
                return
        # Releasing a lock the witness never saw acquired (e.g. the
        # witness was enabled between acquire and release): ignore.

    def record_hold(self, level: str, seconds: float) -> None:
        """Fold one finished hold into the per-level aggregates."""
        with self._graph_lock:
            entry = self.hold_times.get(level)
            if entry is None:
                self.hold_times[level] = [1.0, seconds, seconds, seconds]
            else:
                entry[0] += 1.0
                entry[1] += seconds
                entry[2] = min(entry[2], seconds)
                entry[3] = max(entry[3], seconds)

    def snapshot_edges(self) -> List[Tuple[str, str]]:
        with self._graph_lock:
            return sorted(self.edges)

    def snapshot_hold_times(self) -> Dict[str, HoldProfile]:
        with self._graph_lock:
            return {
                level: HoldProfile(
                    level=level,
                    rank=lockspec.rank_of(level),
                    count=int(entry[0]),
                    total=entry[1],
                    min=entry[2],
                    max=entry[3],
                )
                for level, entry in sorted(
                    self.hold_times.items(),
                    key=lambda item: lockspec.rank_of(item[0]),
                )
            }

    def reset(self) -> None:
        with self._graph_lock:
            self.edges.clear()
            self.hold_times.clear()


_STATE = _WitnessState()
_STATE.enabled = os.environ.get("REPRO_LOCK_WITNESS", "").strip() not in ("", "0", "false")


def _capture_stack() -> str:
    frames = traceback.extract_stack()
    # Drop the witness's own frames from the tail so reports start at
    # the acquisition site.
    while frames and frames[-1].filename == __file__:
        frames.pop()
    return "".join(traceback.format_list(frames[-_STACK_DEPTH:]))


class WitnessLock:
    """Instrumented lock: validates the hierarchy on every acquisition.

    Wraps a real ``threading.Lock``/``RLock`` and mirrors its interface
    (including the ``_release_save``/``_acquire_restore``/``_is_owned``
    trio, so it backs a ``threading.Condition``).  All bookkeeping is
    per-thread except the shared held-before graph, which takes one
    short internal lock only on a level pair's *first* observation.
    """

    __slots__ = ("level", "rank", "reentrant", "_inner", "_label")

    def __init__(self, level_name: str, reentrant: bool) -> None:
        spec = lockspec.level(level_name)
        self.level = spec.name
        self.rank = spec.rank
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()
        self._label = f"{spec.name}[{spec.owner}]"

    def describe(self) -> str:
        return self._label

    # -- lock interface ----------------------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = _STATE.on_acquire(self)
        if held is not None:  # re-entrant re-acquisition
            acquired = self._inner.acquire(blocking, timeout)
            if acquired:
                held.count += 1
            return acquired
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _STATE.push(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        _STATE.pop(self)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        return inner_locked() if inner_locked is not None else False

    # -- Condition support -------------------------------------------------------------
    def _release_save(self):
        """Fully release (dropping re-entrant depth), for ``Condition.wait``."""
        holds = _STATE.holds()
        for index in range(len(holds) - 1, -1, -1):
            if holds[index].lock is self:
                hold = holds[index]
                del holds[index]
                _STATE.record_hold(self.level, time.monotonic() - hold.since)
                break
        if self.reentrant:
            return self._inner._release_save()  # type: ignore[union-attr]
        self._inner.release()
        return None

    def _acquire_restore(self, state) -> None:
        if self.reentrant:
            self._inner._acquire_restore(state)  # type: ignore[union-attr]
        else:
            self._inner.acquire()
        _STATE.push(self)

    def _is_owned(self) -> bool:
        inner_owned = getattr(self._inner, "_is_owned", None)
        if inner_owned is not None:
            return inner_owned()
        # Plain Lock: owned iff locked but not acquirable (CPython's own
        # Condition fallback heuristic).
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True


LockType = Union[threading.Lock, threading.RLock, WitnessLock]


def make_lock(level_name: str, *, reentrant: bool = False) -> LockType:
    """A lock at ``level_name`` of the canonical hierarchy.

    With the witness disabled (the default) this returns the plain
    ``threading`` primitive — zero overhead, no wrapper.  With it
    enabled, an instrumented :class:`WitnessLock` that validates every
    acquisition against :mod:`repro.analysis.lockspec`.  Unknown level
    names raise ``KeyError`` either way, so new locks cannot dodge the
    hierarchy by never being declared.
    """
    spec = lockspec.level(level_name)  # validate even when disabled
    if not _STATE.enabled:
        return threading.RLock() if reentrant else threading.Lock()
    if reentrant and not spec.reentrant:
        raise ValueError(f"level {level_name!r} is not declared re-entrant in lockspec")
    return WitnessLock(level_name, reentrant)


def enable() -> None:
    """Instrument locks created from now on (existing locks stay plain)."""
    _STATE.enabled = True


def disable() -> None:
    _STATE.enabled = False


def is_enabled() -> bool:
    return _STATE.enabled


class witness:
    """Context manager scoping the witness: ``with witness(): ...``."""

    def __enter__(self) -> "witness":
        self._previous = _STATE.enabled
        _STATE.enabled = True
        return self

    def __exit__(self, *exc_info) -> None:
        _STATE.enabled = self._previous


def witness_edges() -> List[Tuple[str, str]]:
    """Every ``(held, acquired)`` level pair witnessed so far, sorted."""
    return _STATE.snapshot_edges()


def witness_report() -> Dict[str, HoldProfile]:
    """Per-level hold-time aggregates witnessed so far, ordered by rank.

    Each completed (outermost) acquisition of an instrumented lock
    contributes one sample — count, total, min and max seconds held,
    with :attr:`HoldProfile.mean` derived.  Only populated while the
    witness is enabled; :func:`reset_witness` clears it.
    """
    return _STATE.snapshot_hold_times()


def held_levels() -> List[str]:
    """Level names of every instrumented lock the *current thread* holds.

    The transport uses this as a runtime tripwire: a blocking pipe
    receive must never happen while ``"serve.transport"`` (or anything
    else) is held, and under the witness that invariant is checked on
    every wire round trip rather than trusted.
    """
    return [hold.lock.level for hold in _STATE.holds()]


def reset_witness() -> None:
    """Forget the witnessed edges and hold times (tests isolate with this)."""
    _STATE.reset()
