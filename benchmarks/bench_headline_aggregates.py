"""Headline aggregates — the paper's §I / §VI-B / §VI-C summary claims.

This benchmark aggregates the whole Figure 9/10 grid into the numbers
the paper quotes directly:

* 31.1x average speedup over state-of-the-art TADOC (abstract, §I),
* 57.5x average on single nodes and 2.7x against the 10-node cluster (§VI-B),
* 111.3x / 112.0x for sequence count and ranked inverted index (§VI-B),
* 9.5x / 64.1x per-phase speedups, i.e. 76.5% / 82.2% time savings (§I, §VI-C).
"""

from __future__ import annotations

from repro.bench.aggregate import summarize_rows
from repro.bench.experiment import ExperimentRunner
from repro.bench.tables import format_table, save_report

#: Paper-reported values the measured aggregates are compared against.
PAPER_CLAIMS = {
    "overall_speedup": 31.1,
    "single_node_speedup": 57.5,
    "cluster_speedup": 2.7,
    "sequence_count_speedup": 111.3,
    "ranked_inverted_index_speedup": 112.0,
    "initialization_speedup": 9.5,
    "traversal_speedup": 64.1,
    "initialization_time_saving": 0.765,
    "traversal_time_saving": 0.822,
}


def _build_report(runner: ExperimentRunner) -> str:
    rows_grid = runner.speedup_grid()
    measured = summarize_rows(rows_grid)
    rows = []
    for key, paper_value in PAPER_CLAIMS.items():
        measured_value = measured.get(key, 0.0)
        if key.endswith("time_saving"):
            rows.append([key, f"{paper_value * 100:.1f}%", f"{measured_value * 100:.1f}%"])
        else:
            rows.append([key, f"{paper_value:.1f}x", f"{measured_value:.1f}x"])
    table = format_table(
        ["aggregate", "paper", "measured (modelled)"],
        rows,
        title="Headline claims: paper vs this reproduction",
    )
    return table


def test_headline_aggregates(benchmark, runner) -> None:
    report = benchmark.pedantic(_build_report, args=(runner,), rounds=1, iterations=1)
    save_report("headline_aggregates", report)
    print("\n" + report)
