"""Figure 10 — per-phase speedups (initialization and DAG traversal).

Figure 10 splits the Figure 9 comparison into TADOC's two phases: the
initialization phase (data-structure preparation and light-weight
scanning) and the graph-traversal phase.  The paper reports an average
9.5x speedup for the first phase and 64.1x for the second (i.e. 76.5%
and 82.2% time savings).
"""

from __future__ import annotations

from repro.analytics.base import Task
from repro.bench.aggregate import geometric_mean
from repro.bench.experiment import ExperimentRunner
from repro.bench.tables import format_table, save_report
from repro.data.generators import list_datasets
from repro.perf.platforms import list_platforms


def _build_report(runner: ExperimentRunner) -> str:
    sections = []
    for platform in list_platforms(gpu_only=True):
        rows = []
        init_speedups = []
        traversal_speedups = []
        for dataset in list_datasets():
            for task in Task.all():
                row = runner.speedup_row(dataset, task, platform)
                init_speedups.append(row.speedup_initialization)
                traversal_speedups.append(row.speedup_traversal)
                rows.append(
                    [
                        dataset,
                        task.value,
                        f"{row.tadoc.initialization * 1000:10.2f}",
                        f"{row.gtadoc.initialization * 1000:10.2f}",
                        f"{row.speedup_initialization:7.1f}x",
                        f"{row.tadoc.traversal * 1000:10.2f}",
                        f"{row.gtadoc.traversal * 1000:10.2f}",
                        f"{row.speedup_traversal:7.1f}x",
                    ]
                )
        table = format_table(
            [
                "dataset",
                "task",
                "TADOC init (ms)",
                "G-TADOC init (ms)",
                "init speedup",
                "TADOC trav (ms)",
                "G-TADOC trav (ms)",
                "trav speedup",
            ],
            rows,
            title=f"Figure 10 ({platform.key}): per-phase speedups",
        )
        summary = (
            f"Geometric means on {platform.key}: initialization {geometric_mean(init_speedups):.1f}x, "
            f"traversal {geometric_mean(traversal_speedups):.1f}x "
            f"(paper averages: 9.5x and 64.1x)"
        )
        sections.append(table + "\n\n" + summary)
    return "\n\n".join(sections)


def test_fig10_phase_speedups(benchmark, runner) -> None:
    report = benchmark.pedantic(_build_report, args=(runner,), rounds=1, iterations=1)
    save_report("fig10_phases", report)
    print("\n" + report)
