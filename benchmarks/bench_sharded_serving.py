"""Sharded serving — a fingerprint-routed shard pool vs. one service.

One serving core caps resident device sessions at a single device's
budget (`ServiceConfig.max_sessions`): a multi-corpus workload larger
than that budget thrashes the session LRU, rebuilding initialization
state on nearly every query.  The shard pool
(:mod:`repro.serve.sharding`) spreads corpora across N shards by
rendezvous-hashed fingerprint, each shard its own serving core with its
own session budget — so the same workload keeps every corpus resident
without any shard exceeding one device's budget.

This benchmark builds a Table II-style multi-corpus trace (every
dataset analogue, round-robin interleaved, repeats and per-query knobs
as in the serving traces) and replays it three ways: serially with
per-query ``run()`` semantics (the paper's full per-query cost), through
a single 8-thread service whose session LRU only holds 2 corpora, and
through a 3-shard pool whose shards each hold 2.  It asserts the
sharded replay returns bit-identical results to the serial baseline,
launches no more kernels per query than the single service, and never
lets a shard exceed its configured ``max_sessions``.
"""

from __future__ import annotations

from repro.bench.tables import format_table, save_report
from repro.compression.compressor import compress_corpus
from repro.data.generators import generate_dataset, list_datasets
from repro.serve import (
    ServiceConfig,
    TraceConfig,
    replay_trace,
    replay_trace_sharded,
    synthesize_trace,
)

REQUESTS_PER_CORPUS = 12
NUM_THREADS = 8
NUM_SHARDS = 3
MAX_SESSIONS_PER_DEVICE = 2


def _build_report(scale: float) -> str:
    corpora = [
        compress_corpus(generate_dataset(dataset, scale=scale))
        for dataset in list_datasets()
    ]
    # One sub-trace per corpus, interleaved round-robin: the serving mix
    # a pool fronting many tenants actually sees.
    sub_traces = [
        synthesize_trace(
            compressed.file_names,
            TraceConfig(num_requests=REQUESTS_PER_CORPUS, seed=17 + index,
                        max_subset_files=3),
        )
        for index, compressed in enumerate(corpora)
    ]
    trace = [
        (index, sub_traces[index][position])
        for position in range(REQUESTS_PER_CORPUS)
        for index in range(len(corpora))
    ]

    device_config = ServiceConfig(
        max_sessions=MAX_SESSIONS_PER_DEVICE, coalesce_window=0.002
    )
    single = replay_trace(
        corpora,
        trace,
        num_threads=NUM_THREADS,
        service_config=device_config,
        serial_baseline=False,
    )
    sharded = replay_trace_sharded(
        corpora,
        trace,
        num_shards=NUM_SHARDS,
        replicas=2,
        num_threads=NUM_THREADS,
        service_config=device_config,
    )
    stats = sharded.stats

    assert sharded.results_match, "sharded served results diverged from the serial baseline"
    assert stats.kernel_launches <= single.stats.kernel_launches, (
        "the shard pool must not launch more kernels than the single service "
        f"({stats.kernel_launches} vs {single.stats.kernel_launches})"
    )
    assert sharded.stats.kernel_launches < sharded.serial_launches, (
        "sharded serving must launch strictly fewer kernels than serial runs"
    )
    for index, resident in enumerate(stats.resident_sessions):
        assert resident <= MAX_SESSIONS_PER_DEVICE, (
            f"shard {index} holds {resident} sessions, over its budget of "
            f"{MAX_SESSIONS_PER_DEVICE}"
        )

    overview = format_table(
        ["replay", "launches/query", "micro-batches", "mean batch", "session evictions"],
        [
            [
                "serial per-query",
                f"{sharded.serial_launches_per_query:7.2f}",
                "-",
                "-",
                "-",
            ],
            [
                f"one service ({MAX_SESSIONS_PER_DEVICE}-session device)",
                f"{single.stats.kernel_launches / single.num_requests:7.2f}",
                f"{single.stats.micro_batches:4d}",
                f"{single.stats.mean_batch_size:5.2f}",
                f"{single.stats.session_cache.evictions:4d}",
            ],
            [
                f"{NUM_SHARDS}-shard pool (same budget/shard)",
                f"{sharded.served_launches_per_query:7.2f}",
                f"{stats.micro_batches:4d}",
                f"{stats.mean_batch_size:5.2f}",
                f"{sum(shard.session_cache.evictions for shard in stats.shards):4d}",
            ],
        ],
        title=(
            f"Sharded serving: {len(corpora)} Table II corpora, "
            f"{len(trace)} requests, {NUM_THREADS} worker threads"
        ),
    )
    shard_rows = [
        [
            f"shard {index}",
            f"{stats.routed_queries[index]:4d}",
            f"{stats.resident_sessions[index]}/{MAX_SESSIONS_PER_DEVICE}",
            f"{shard.kernel_launches:5d}",
            f"{shard.result_cache.hit_rate * 100:5.1f}%",
        ]
        for index, shard in enumerate(stats.shards)
    ]
    placement = format_table(
        ["shard", "queries", "sessions", "launches", "result-cache hits"],
        shard_rows,
        title=(
            f"Placement: {stats.placements} routed queries, "
            f"{stats.replica_promotions} promotions, "
            f"{stats.network_seconds * 1000:.2f} ms modelled network"
        ),
    )
    summary = (
        "Every corpus stays resident on its owning shard, so the pool "
        "serves the multi-corpus mix without the session thrash the "
        "single device's LRU suffers — results stay bit-identical to "
        "serial per-query execution, launches per query do not regress, "
        "and no shard exceeds its session budget."
    )
    return overview + "\n\n" + placement + "\n\n" + summary


def test_sharded_serving(benchmark, bench_scale) -> None:
    report = benchmark.pedantic(_build_report, args=(bench_scale,), rounds=1, iterations=1)
    save_report("sharded_serving", report)
    print("\n" + report)
