"""Sharded serving — a fingerprint-routed shard pool vs. one service.

One serving core caps resident device sessions at a single device's
budget (`ServiceConfig.max_sessions`): a multi-corpus workload larger
than that budget thrashes the session LRU, rebuilding initialization
state on nearly every query.  The shard pool
(:mod:`repro.serve.sharding`) spreads corpora across N shards by
rendezvous-hashed fingerprint, each shard its own serving core with its
own session budget — so the same workload keeps every corpus resident
without any shard exceeding one device's budget.

This benchmark builds a Table II-style multi-corpus trace (every
dataset analogue, round-robin interleaved, repeats and per-query knobs
as in the serving traces) and replays it three ways: serially with
per-query ``run()`` semantics (the paper's full per-query cost), through
a single 8-thread service whose session LRU only holds 2 corpora, and
through a 3-shard pool whose shards each hold 2.  It asserts the
sharded replay returns bit-identical results to the serial baseline,
launches no more kernels per query than the single service, and never
lets a shard exceed its configured ``max_sessions``.

Two transport scenarios ride on top: the same trace through a
**process-transport** pool (each shard's serving core in a spawned
worker process, corpora shipped over framed pipes) must also match the
serial baseline bit for bit, with its *actual* serialized wire traffic
priced under the cluster spec next to the modelled placement numbers;
and a **kill-one-shard** run hard-kills a live worker mid-trace and
asserts the pool answers every remaining request identically to serial
— zero wrong answers, the crash visible only in the failure counters.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analytics.base import Task, results_equal
from repro.api.query import Query
from repro.bench.tables import format_table, save_report
from repro.compression.compressor import compress_corpus
from repro.data.generators import generate_dataset, list_datasets
from repro.serve import (
    AnalyticsService,
    ServiceConfig,
    ShardedAnalyticsService,
    ShardedServiceConfig,
    TraceConfig,
    replay_trace,
    replay_trace_sharded,
    synthesize_trace,
)

REQUESTS_PER_CORPUS = 12
NUM_THREADS = 8
NUM_SHARDS = 3
MAX_SESSIONS_PER_DEVICE = 2
#: Transport measurements merge into the serving perf trajectory so the
#: CI artifact tracks wire traffic next to the kernel-mode numbers.
REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_serving.json"


def _build_report(scale: float) -> str:
    corpora = [
        compress_corpus(generate_dataset(dataset, scale=scale))
        for dataset in list_datasets()
    ]
    # One sub-trace per corpus, interleaved round-robin: the serving mix
    # a pool fronting many tenants actually sees.
    sub_traces = [
        synthesize_trace(
            compressed.file_names,
            TraceConfig(num_requests=REQUESTS_PER_CORPUS, seed=17 + index,
                        max_subset_files=3),
        )
        for index, compressed in enumerate(corpora)
    ]
    trace = [
        (index, sub_traces[index][position])
        for position in range(REQUESTS_PER_CORPUS)
        for index in range(len(corpora))
    ]

    device_config = ServiceConfig(
        max_sessions=MAX_SESSIONS_PER_DEVICE, coalesce_window=0.002
    )
    single = replay_trace(
        corpora,
        trace,
        num_threads=NUM_THREADS,
        service_config=device_config,
        serial_baseline=False,
    )
    sharded = replay_trace_sharded(
        corpora,
        trace,
        num_shards=NUM_SHARDS,
        replicas=2,
        num_threads=NUM_THREADS,
        service_config=device_config,
    )
    stats = sharded.stats

    assert sharded.results_match, "sharded served results diverged from the serial baseline"
    assert stats.kernel_launches <= single.stats.kernel_launches, (
        "the shard pool must not launch more kernels than the single service "
        f"({stats.kernel_launches} vs {single.stats.kernel_launches})"
    )
    assert sharded.stats.kernel_launches < sharded.serial_launches, (
        "sharded serving must launch strictly fewer kernels than serial runs"
    )
    for index, resident in enumerate(stats.resident_sessions):
        assert resident <= MAX_SESSIONS_PER_DEVICE, (
            f"shard {index} holds {resident} sessions, over its budget of "
            f"{MAX_SESSIONS_PER_DEVICE}"
        )

    overview = format_table(
        ["replay", "launches/query", "micro-batches", "mean batch", "session evictions"],
        [
            [
                "serial per-query",
                f"{sharded.serial_launches_per_query:7.2f}",
                "-",
                "-",
                "-",
            ],
            [
                f"one service ({MAX_SESSIONS_PER_DEVICE}-session device)",
                f"{single.stats.kernel_launches / single.num_requests:7.2f}",
                f"{single.stats.micro_batches:4d}",
                f"{single.stats.mean_batch_size:5.2f}",
                f"{single.stats.session_cache.evictions:4d}",
            ],
            [
                f"{NUM_SHARDS}-shard pool (same budget/shard)",
                f"{sharded.served_launches_per_query:7.2f}",
                f"{stats.micro_batches:4d}",
                f"{stats.mean_batch_size:5.2f}",
                f"{sum(shard.session_cache.evictions for shard in stats.shards):4d}",
            ],
        ],
        title=(
            f"Sharded serving: {len(corpora)} Table II corpora, "
            f"{len(trace)} requests, {NUM_THREADS} worker threads"
        ),
    )
    shard_rows = [
        [
            f"shard {index}",
            f"{stats.routed_queries[index]:4d}",
            f"{stats.resident_sessions[index]}/{MAX_SESSIONS_PER_DEVICE}",
            f"{shard.kernel_launches:5d}",
            f"{shard.result_cache.hit_rate * 100:5.1f}%",
        ]
        for index, shard in enumerate(stats.shards)
    ]
    placement = format_table(
        ["shard", "queries", "sessions", "launches", "result-cache hits"],
        shard_rows,
        title=(
            f"Placement: {stats.placements} routed queries, "
            f"{stats.replica_promotions} promotions, "
            f"{stats.network_seconds * 1000:.2f} ms modelled network"
        ),
    )
    transports, transport_trajectory = _transport_comparison(
        corpora, trace, device_config, threaded_sharded=sharded
    )
    fault, fault_trajectory = _kill_one_shard_scenario(corpora, device_config)
    _merge_trajectory(
        {"transports": transport_trajectory, "kill_one_shard": fault_trajectory}
    )

    summary = (
        "Every corpus stays resident on its owning shard, so the pool "
        "serves the multi-corpus mix without the session thrash the "
        "single device's LRU suffers — results stay bit-identical to "
        "serial per-query execution (in-process and process transports "
        "alike, and through a mid-trace worker kill), launches per "
        "query do not regress, and no shard exceeds its session budget."
    )
    return "\n\n".join([overview, placement, transports, fault, summary])


def _merge_trajectory(measurements: dict) -> None:
    """Fold this benchmark's measurements into ``BENCH_serving.json``.

    The kernel-mode benchmark owns the file; this one only updates its
    own key, so either can run (and CI can upload) independently.
    """
    trajectory = {}
    if BENCH_JSON.exists():
        try:
            trajectory = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            trajectory = {}
    trajectory["sharded_serving"] = measurements
    BENCH_JSON.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")


def _transport_comparison(corpora, trace, device_config, *, threaded_sharded):
    """The same trace through a process-transport pool, wire traffic priced."""
    process = replay_trace_sharded(
        corpora,
        trace,
        num_shards=NUM_SHARDS,
        replicas=2,
        num_threads=NUM_THREADS,
        service_config=device_config,
        transport="process",
    )
    assert process.transport == "process"
    assert process.results_match, (
        "process-transport served results diverged from the serial baseline"
    )
    assert process.stats.wire_messages > 0 and process.stats.wire_bytes > 0

    def row(label, report):
        stats = report.stats
        return [
            label,
            f"{report.elapsed_seconds:6.3f} s",
            f"{stats.wire_messages:6.0f}",
            f"{stats.wire_bytes / 1024:8.1f}",
            f"{stats.wire_seconds * 1000:7.3f}",
            f"{stats.network_seconds * 1000:7.3f}",
        ]

    table = format_table(
        ["transport", "wall-clock", "wire msgs", "wire KiB", "wire ms", "placement ms"],
        [
            row("inprocess (threads)", threaded_sharded),
            row("process (spawned workers)", process),
        ],
        title=(
            "Transports: identical answers; only the process pool pays "
            "real serialization, priced under the same cluster spec"
        ),
    )

    def measurements(report):
        stats = report.stats
        return {
            "elapsed_seconds": report.elapsed_seconds,
            "wire_messages": stats.wire_messages,
            "wire_bytes": stats.wire_bytes,
            "wire_seconds": stats.wire_seconds,
            "network_seconds": stats.network_seconds,
            "kernel_launches": stats.kernel_launches,
            "results_match": bool(report.results_match),
        }

    return table, {
        "num_shards": NUM_SHARDS,
        "num_requests": len(trace),
        "inprocess": measurements(threaded_sharded),
        "process": measurements(process),
    }


#: Per-corpus probes for the crash scenario — cheap, deterministic, and
#: covering distinct result shapes.
FAULT_PROBES = (
    Query(task=Task.WORD_COUNT, top_k=10),
    Query(task=Task.SORT, top_k=8),
    Query(task=Task.SEQUENCE_COUNT, sequence_length=3, top_k=5),
)


def _kill_one_shard_scenario(corpora, device_config):
    """Hard-kill a live worker mid-trace; every answer must stay right."""
    serial = [AnalyticsService(compressed) for compressed in corpora]
    expected = [
        [service.submit(query).result for query in FAULT_PROBES]
        for service in serial
    ]
    service = ShardedAnalyticsService(
        service_config=device_config,
        sharded_config=ShardedServiceConfig(
            num_shards=NUM_SHARDS, transport="process"
        ),
    )
    wrong = served = 0
    try:
        # Warm every corpus onto its owning worker first, so the kill
        # lands on a shard with real resident state.
        for index, compressed in enumerate(corpora):
            outcome = service.submit(FAULT_PROBES[0], source=compressed)
            served += 1
            wrong += not results_equal(
                FAULT_PROBES[0].task, outcome.result, expected[index][0]
            )
        victim = service._shards[service.shard_for(corpora[0])]
        victim.transport.kill()
        for index, compressed in enumerate(corpora):
            for probe, want in zip(FAULT_PROBES, expected[index]):
                outcome = service.submit(probe, source=compressed)
                served += 1
                wrong += not results_equal(probe.task, outcome.result, want)
        stats = service.stats()
    finally:
        service.close()

    assert wrong == 0, f"{wrong} wrong answers after a worker kill"
    assert stats.shard_failures >= 1, "the kill was never observed as a failure"
    assert stats.replaced_shards == stats.shard_failures
    line = (
        f"Kill-one-shard: worker of corpus 0 hard-killed after warmup; "
        f"{served} requests served, {wrong} wrong answers, "
        f"{stats.shard_failures} shard failure(s), "
        f"{stats.replaced_shards} replacement shard(s) spawned."
    )
    return line, {
        "requests_served": served,
        "wrong_answers": wrong,
        "shard_failures": stats.shard_failures,
        "replaced_shards": stats.replaced_shards,
    }


def test_sharded_serving(benchmark, bench_scale) -> None:
    report = benchmark.pedantic(_build_report, args=(bench_scale,), rounds=1, iterations=1)
    save_report("sharded_serving", report)
    print("\n" + report)
