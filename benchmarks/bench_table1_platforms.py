"""Table I — platform configuration.

Table I in the paper lists the four evaluation platforms (three GPU
servers and the 10-node EC2 cluster).  This benchmark prints the
configuration table the rest of the suite uses, together with the
derived throughput numbers the cost models are built on (the paper
quotes the Pascal GPU/CPU peak-performance ratio of ~185x and memory
bandwidth ratio of ~8.3x; both are reproduced from the specs).
"""

from __future__ import annotations

from repro.bench.tables import format_table, save_report
from repro.perf.platforms import list_platforms


def _build_report() -> str:
    platforms = list_platforms()
    config_rows = [
        [
            platform.key,
            platform.gpu.name if platform.gpu else "NULL",
            platform.gpu.memory_type if platform.gpu else "DDR3",
            platform.cpu.name,
            platform.os_name,
            platform.compiler,
        ]
        for platform in platforms
    ]
    config_table = format_table(
        ["Platform", "GPU", "GPU Memory", "CPU", "OS", "Compiler"],
        config_rows,
        title="Table I: platform configuration",
    )

    ratio_rows = []
    for platform in platforms:
        if platform.gpu is None:
            continue
        compute_ratio = platform.gpu.peak_gops / platform.cpu.peak_gops
        bandwidth_ratio = (
            platform.gpu.memory_bandwidth_gb_s / platform.cpu.memory_bandwidth_gb_s
        )
        ratio_rows.append(
            [
                platform.key,
                f"{platform.gpu.peak_gops:,.0f} Gop/s",
                f"{platform.cpu.peak_gops:,.0f} Gop/s",
                f"{compute_ratio:.1f}x",
                f"{bandwidth_ratio:.1f}x",
            ]
        )
    ratio_table = format_table(
        ["Platform", "GPU peak", "CPU peak", "compute ratio", "bandwidth ratio"],
        ratio_rows,
        title="Derived GPU/CPU ratios (paper quotes ~185x compute, ~8.3x bandwidth on Pascal)",
    )
    return config_table + "\n\n" + ratio_table


def test_table1_platforms(benchmark) -> None:
    report = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    save_report("table1_platforms", report)
    print("\n" + report)
