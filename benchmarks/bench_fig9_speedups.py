"""Figure 9 — G-TADOC speedups over TADOC.

Figure 9 plots, for each GPU platform (Pascal, Volta, Turing), the
speedup of G-TADOC over the TADOC baseline for all six analytics tasks
on the five datasets.  Dataset C's baseline is TADOC on the 10-node
cluster, the others use the sequential CPU TADOC — exactly as in the
paper's methodology.

The report prints one sub-table per platform (mirroring Figures 9a-9c)
with the modelled times and speedups, which is the series a plotting
script would consume.
"""

from __future__ import annotations

from repro.analytics.base import Task
from repro.bench.aggregate import geometric_mean
from repro.bench.experiment import ExperimentRunner
from repro.bench.tables import format_table, save_report
from repro.data.generators import list_datasets
from repro.perf.platforms import list_platforms


def _platform_report(runner: ExperimentRunner, platform) -> str:
    rows = []
    speedups = []
    for dataset in list_datasets():
        for task in Task.all():
            row = runner.speedup_row(dataset, task, platform)
            speedups.append(row.speedup_total)
            rows.append(
                [
                    dataset,
                    task.value,
                    row.baseline,
                    f"{row.tadoc.total * 1000:10.2f}",
                    f"{row.gtadoc.total * 1000:10.2f}",
                    f"{row.speedup_total:8.1f}x",
                ]
            )
    table = format_table(
        ["dataset", "task", "baseline", "TADOC (ms)", "G-TADOC (ms)", "speedup"],
        rows,
        title=f"Figure 9 ({platform.key}): G-TADOC speedup over TADOC",
    )
    return table + f"\n\nGeometric-mean speedup on {platform.key}: {geometric_mean(speedups):.1f}x"


def _build_report(runner: ExperimentRunner) -> str:
    sections = [
        _platform_report(runner, platform) for platform in list_platforms(gpu_only=True)
    ]
    return "\n\n".join(sections)


def test_fig9_speedups(benchmark, runner) -> None:
    report = benchmark.pedantic(_build_report, args=(runner,), rounds=1, iterations=1)
    save_report("fig9_speedups", report)
    print("\n" + report)
