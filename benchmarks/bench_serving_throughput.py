"""Serving throughput — coalesced concurrent serving vs. serial per-query runs.

TADOC's compressed structures are built once and meant to serve many
queries; the serving layer (:mod:`repro.serve`) turns that into a
concurrent front end: a bounded session LRU keyed by corpus
fingerprint, coalescing of compatible in-flight queries into
``run_batch`` micro-batches, and a ``Query``-keyed result cache.

This benchmark replays the same synthetic mixed-task request trace two
ways on every Table II dataset analogue — through an 8-thread
:class:`~repro.serve.AnalyticsService` and serially with per-query
``run()`` semantics (a fresh session per query, the paper's full
per-query cost) — and asserts that serving launches strictly fewer
kernels per query while producing bit-identical results.
"""

from __future__ import annotations

from repro.bench.tables import format_table, save_report
from repro.compression.compressor import compress_corpus
from repro.data.generators import generate_dataset, list_datasets
from repro.serve import ServiceConfig, TraceConfig, replay_trace, synthesize_trace

NUM_REQUESTS = 48
NUM_THREADS = 8


def _build_report(scale: float) -> str:
    rows = []
    for dataset in list_datasets():
        compressed = compress_corpus(generate_dataset(dataset, scale=scale))
        trace = synthesize_trace(
            compressed.file_names, TraceConfig(num_requests=NUM_REQUESTS, seed=17)
        )
        report = replay_trace(
            compressed,
            trace,
            num_threads=NUM_THREADS,
            service_config=ServiceConfig(coalesce_window=0.002),
        )
        stats = report.stats
        assert report.results_match, f"served results diverged from serial on dataset {dataset}"
        assert stats.kernel_launches < report.serial_launches, (
            f"serving must launch strictly fewer kernels than serial runs on {dataset}"
        )
        assert report.served_launches_per_query < report.serial_launches_per_query, (
            f"serving must launch fewer kernels per query than serial runs on {dataset}"
        )
        rows.append(
            [
                dataset,
                f"{report.serial_launches_per_query:7.2f}",
                f"{report.served_launches_per_query:7.2f}",
                f"{report.launch_reduction * 100:5.1f}%",
                f"{stats.result_cache.hit_rate * 100:5.1f}%",
                f"{stats.mean_batch_size:5.2f}",
                f"{stats.coalesced_queries:4d}",
            ]
        )
    table = format_table(
        [
            "dataset",
            "serial launches/q",
            "served launches/q",
            "launch cut",
            "cache hit rate",
            "mean batch",
            "coalesced",
        ],
        rows,
        title=(
            f"Serving throughput: {NUM_THREADS}-thread coalesced service vs "
            f"serial per-query runs ({NUM_REQUESTS} mixed requests)"
        ),
    )
    summary = (
        "Served results are bit-identical to serial per-query execution; the "
        "session LRU, micro-batch coalescing and the Query-keyed result "
        "cache together cut kernel launches per query on every dataset."
    )
    return table + "\n\n" + summary


def test_serving_throughput(benchmark, bench_scale) -> None:
    report = benchmark.pedantic(_build_report, args=(bench_scale,), rounds=1, iterations=1)
    save_report("serving_throughput", report)
    print("\n" + report)
