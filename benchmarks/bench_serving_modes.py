"""Serving wall-clock — vectorized kernels and fused micro-batches.

The simulated kernels execute in one of two modes
(:attr:`~repro.core.session.GTadocConfig.kernel_mode`): the seed's
interpreted ``"scalar"`` path, which calls a Python callback per
simulated thread, and the ``"vector"`` path, which executes the same
kernels as numpy bulk operations over session-cached flattened
layouts.  Both produce bit-identical results *and* bit-identical
simulated launch/op counts — the only thing that changes is host
wall-clock.

This benchmark replays the same synthetic mixed-task request trace
through the serving layer once per kernel mode and once with
micro-batch fusion disabled.  Each replay makes one untimed warmup
pass (standard steady-state serving methodology: the session's
layout/weight caches are part of the serving design, and a long-lived
service is warm for all but its first requests) followed by one timed
pass, asserting that

* results and simulated kernel launches are identical across modes,
* vector mode beats scalar wall-clock on the cross-dataset aggregate
  (individual datasets are reported but not gated — tiny grammars can
  sit near the numpy fixed-overhead floor), and
* fused micro-batches launch strictly fewer kernels per query than
  the plain coalesced batching of the same trace.

Measurements are written to ``BENCH_serving.json`` at the repository
root (one entry per dataset plus the aggregate) so successive anchors
can track the serving perf curve.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.api.outcome import RunOutcome
from repro.bench.tables import format_table, save_report
from repro.compression.compressor import compress_corpus
from repro.core.session import GTadocConfig
from repro.data.generators import generate_dataset
from repro.serve import AnalyticsService, ServiceConfig, TraceConfig, synthesize_trace

#: All five Table II dataset analogues.
DATASETS = ("A", "B", "C", "D", "E")
NUM_REQUESTS = 48
#: Repo root — ``BENCH_serving.json`` lives next to README.md.
REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_serving.json"


def _replay(
    compressed, trace, *, kernel_mode: str, fuse_batches: bool = True
) -> Tuple[List[RunOutcome], "ServiceStats", float]:
    """Drive the trace through one fresh service; return outcomes/stats/seconds.

    The result cache is disabled and the coalescing window zeroed so
    every request executes deterministically and the measured seconds
    reflect kernel execution, not cache hits or window sleeps.  The
    trace is replayed twice — one untimed warmup pass, one timed pass —
    so the seconds measure the warm steady state of a long-lived
    service rather than first-request initialization.
    """
    service = AnalyticsService(
        compressed,
        engine_config=GTadocConfig(kernel_mode=kernel_mode),
        service_config=ServiceConfig(
            cache_results=False, coalesce_window=0.0, fuse_batches=fuse_batches
        ),
    )
    service.run_batch(trace)  # warmup: populate session layout/weight caches
    started = time.perf_counter()
    outcomes = service.run_batch(trace)
    elapsed = time.perf_counter() - started
    return outcomes, service.stats(), elapsed


def _build_report(scale: float) -> str:
    rows = []
    trajectory: Dict[str, object] = {
        "benchmark": "bench_serving_modes",
        "scale": scale,
        "num_requests": NUM_REQUESTS,
        "warmup_passes": 1,
        "datasets": {},
    }
    total_scalar = 0.0
    total_vector = 0.0
    for dataset in DATASETS:
        compressed = compress_corpus(generate_dataset(dataset, scale=scale))
        trace = synthesize_trace(
            compressed.file_names, TraceConfig(num_requests=NUM_REQUESTS, seed=17)
        )

        scalar_outcomes, scalar_stats, scalar_seconds = _replay(
            compressed, trace, kernel_mode="scalar"
        )
        vector_outcomes, vector_stats, vector_seconds = _replay(
            compressed, trace, kernel_mode="vector"
        )
        _, unfused_stats, _ = _replay(
            compressed, trace, kernel_mode="vector", fuse_batches=False
        )

        results_match = all(
            s.result == v.result for s, v in zip(scalar_outcomes, vector_outcomes)
        )
        assert results_match, f"vector results diverged from scalar on dataset {dataset}"
        assert scalar_stats.kernel_launches == vector_stats.kernel_launches, (
            f"kernel modes must charge identical simulated launches on {dataset}"
        )
        assert vector_stats.kernel_launches < unfused_stats.kernel_launches, (
            f"fused micro-batches must launch strictly fewer kernels on {dataset}"
        )
        speedup = scalar_seconds / vector_seconds if vector_seconds > 0 else float("inf")
        total_scalar += scalar_seconds
        total_vector += vector_seconds

        trajectory["datasets"][dataset] = {
            "scalar": {
                "elapsed_seconds": scalar_seconds,
                "kernel_launches": scalar_stats.kernel_launches,
                "launches_per_query": scalar_stats.launches_per_query,
            },
            "vector": {
                "elapsed_seconds": vector_seconds,
                "kernel_launches": vector_stats.kernel_launches,
                "launches_per_query": vector_stats.launches_per_query,
            },
            "unfused_vector": {
                "kernel_launches": unfused_stats.kernel_launches,
                "launches_per_query": unfused_stats.launches_per_query,
            },
            "wall_clock_speedup_vs_scalar": speedup,
            "fused_launch_reduction": 1.0
            - vector_stats.kernel_launches / unfused_stats.kernel_launches,
            "results_match": results_match,
        }
        rows.append(
            [
                dataset,
                f"{scalar_seconds:7.3f}s",
                f"{vector_seconds:7.3f}s",
                f"{speedup:6.1f}x",
                f"{unfused_stats.launches_per_query:7.2f}",
                f"{vector_stats.launches_per_query:7.2f}",
            ]
        )

    aggregate_speedup = total_scalar / total_vector if total_vector > 0 else float("inf")
    assert aggregate_speedup > 1.0, (
        "vector mode must beat scalar wall-clock on the aggregate "
        f"(scalar {total_scalar:.3f}s vs vector {total_vector:.3f}s)"
    )
    trajectory["aggregate"] = {
        "scalar_seconds": total_scalar,
        "vector_seconds": total_vector,
        "wall_clock_speedup_vs_scalar": aggregate_speedup,
    }
    rows.append(
        [
            "TOTAL",
            f"{total_scalar:7.3f}s",
            f"{total_vector:7.3f}s",
            f"{aggregate_speedup:6.1f}x",
            "",
            "",
        ]
    )

    BENCH_JSON.write_text(json.dumps(trajectory, indent=2) + "\n")
    table = format_table(
        [
            "dataset",
            "scalar wall",
            "vector wall",
            "speedup",
            "coalesced launches/q",
            "fused launches/q",
        ],
        rows,
        title=(
            f"Warm serving trace ({NUM_REQUESTS} mixed requests): scalar vs "
            "vector kernels, coalesced vs fused micro-batches"
        ),
    )
    summary = (
        "Vector mode replays the trace with bit-identical results and "
        "identical simulated launch counts at a fraction of the scalar "
        f"wall-clock; trajectories written to {BENCH_JSON.name}."
    )
    return table + "\n\n" + summary


def test_serving_modes(benchmark, bench_scale) -> None:
    report = benchmark.pedantic(_build_report, args=(bench_scale,), rounds=1, iterations=1)
    save_report("serving_modes", report)
    print("\n" + report)
