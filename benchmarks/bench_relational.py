"""Relational analytics on compressed data — launches and wall-clock.

The relational plan family executes SELECT-style queries (filter /
group-by / aggregate over per-file rows) directly on the grammar:
rule-level parse states are built bottom-up once per schema and
memoized in the device session, so a *warm* relational query costs only
two marginal kernel launches (filter + aggregate).  The
decompress-then-scan comparator (the ``gpu_uncompressed`` backend)
pays four launches on every query: tokenize, parse rows, filter,
aggregate.

This benchmark builds an orders-style corpus (one delimited record per
file), runs a small relational query mix on the G-TADOC engine in both
kernel modes and on the uncompressed GPU baseline, and asserts

* every backend pair answers bit-identically (scalar vs vector modes
  additionally match on simulated launch and op counts),
* a warm relational query launches strictly fewer kernels than the
  cold query that built the parse states, and
* the warm compressed-domain query launches strictly fewer kernels
  than the decompress-then-scan baseline.

Measurements are written to ``BENCH_relational.json`` at the
repository root so successive anchors can track the trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List

from repro.api import Query, open_backend
from repro.bench.tables import format_table, save_report
from repro.compression.compressor import compress_corpus
from repro.core.session import GTadocConfig
from repro.data.corpus import Corpus
from repro.relational.spec import (
    Aggregate,
    Condition,
    FieldSpec,
    RelationalQuery,
    RowSchema,
)

NUM_ROWS = 240
#: Repo root — ``BENCH_relational.json`` lives next to README.md.
REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_relational.json"

REGIONS = ("east", "west", "north", "south")
STATUSES = ("open", "shipped", "closed")


def _build_corpus() -> Corpus:
    """One delimited order record per file, with plenty of shared phrasing."""
    texts = {}
    for index in range(NUM_ROWS):
        region = REGIONS[index % len(REGIONS)]
        status = STATUSES[index % len(STATUSES)]
        quantity = (index * 7) % 23 + 1
        price = float((index * 13) % 97) + 0.5
        texts[f"order_{index:04d}.txt"] = (
            f"customer_{index % 17} , {region} , {status} , {quantity} , {price}"
        )
    return Corpus.from_texts(texts, name="relational-bench")


def _schema() -> RowSchema:
    return RowSchema(
        fields=(
            FieldSpec("customer", "str", column=0),
            FieldSpec("region", "str", column=1),
            FieldSpec("status", "str", column=2),
            FieldSpec("quantity", "int", column=3),
            FieldSpec("price", "float", column=4),
        ),
        delimiter=",",
    )


def _query_mix(schema: RowSchema) -> List[Query]:
    specs = (
        RelationalQuery(
            schema=schema,
            group_by="region",
            aggregates=(Aggregate("count"), Aggregate("sum", "quantity")),
            order_by="count",
        ),
        RelationalQuery(
            schema=schema,
            predicate=(Condition("status", "eq", "shipped"),),
            group_by="region",
            aggregates=(Aggregate("count"), Aggregate("avg", "price")),
        ),
        RelationalQuery(
            schema=schema,
            predicate=(Condition("quantity", "ge", 12),),
            group_by="status",
            aggregates=(Aggregate("count"), Aggregate("max", "price")),
        ),
    )
    return [Query(task="relational", extras={"relational": spec}) for spec in specs]


def _run_mode(compressed, queries: List[Query], kernel_mode: str):
    """Run the mix on one persistent G-TADOC backend; return per-query data."""
    backend = open_backend(
        "gtadoc", compressed, config=GTadocConfig(kernel_mode=kernel_mode)
    )
    started = time.perf_counter()
    outcomes = [backend.run(query) for query in queries]
    elapsed = time.perf_counter() - started
    return outcomes, elapsed


def _build_report(_scale: float) -> str:
    compressed = compress_corpus(_build_corpus())
    queries = _query_mix(_schema())

    scalar, scalar_seconds = _run_mode(compressed, queries, "scalar")
    vector, vector_seconds = _run_mode(compressed, queries, "vector")
    baseline_backend = open_backend("gpu_uncompressed", compressed)
    baseline = [baseline_backend.run(query) for query in queries]

    for position, (s, v, b) in enumerate(zip(scalar, vector, baseline)):
        assert s.result == v.result == b.result, f"query {position}: results diverge"
        assert s.kernel_launches == v.kernel_launches, (
            f"query {position}: scalar launched {s.kernel_launches}, "
            f"vector {v.kernel_launches}"
        )
        assert abs(s.ops - v.ops) < 1e-6, f"query {position}: modelled ops diverge"

    cold_launches = scalar[0].kernel_launches
    warm_launches = [outcome.kernel_launches for outcome in scalar[1:]]
    baseline_launches = [outcome.kernel_launches for outcome in baseline]
    assert all(warm < cold_launches for warm in warm_launches), (
        f"warm queries ({warm_launches}) must launch fewer kernels than the "
        f"cold query ({cold_launches}) that built the parse states"
    )
    assert all(
        warm < base for warm, base in zip(warm_launches, baseline_launches[1:])
    ), (
        f"warm compressed-domain queries ({warm_launches}) must beat the "
        f"decompress-then-scan baseline ({baseline_launches})"
    )

    rows = []
    for position, (s, b) in enumerate(zip(scalar, baseline)):
        phase = "cold" if position == 0 else "warm"
        rows.append(
            [
                f"q{position} ({phase})",
                s.kernel_launches,
                b.kernel_launches,
                f"{s.ops:12.0f}",
                f"{b.ops:12.0f}",
                len(s.result),
            ]
        )

    trajectory = {
        "num_rows": NUM_ROWS,
        "queries": len(queries),
        "cold_launches": cold_launches,
        "warm_launches": warm_launches,
        "baseline_launches": baseline_launches,
        "scalar_seconds": scalar_seconds,
        "vector_seconds": vector_seconds,
        "per_query": [
            {
                "gtadoc_launches": s.kernel_launches,
                "baseline_launches": b.kernel_launches,
                "gtadoc_ops": s.ops,
                "baseline_ops": b.ops,
                "groups": len(s.result),
            }
            for s, b in zip(scalar, baseline)
        ],
    }
    BENCH_JSON.write_text(json.dumps(trajectory, indent=2) + "\n")

    table = format_table(
        [
            "query",
            "G-TADOC launches",
            "decompress+scan launches",
            "G-TADOC ops",
            "baseline ops",
            "groups",
        ],
        rows,
        title=(
            f"Relational queries over {NUM_ROWS} compressed rows: "
            "grammar-domain vs decompress-then-scan"
        ),
    )
    summary = (
        "Scalar and vector kernel modes answer bit-identically with identical "
        "launch/op counts; warm relational queries reuse the memoized parse "
        f"states and launch {warm_launches[0]} kernels vs the baseline's "
        f"{baseline_launches[1]}; trajectory written to {BENCH_JSON.name}."
    )
    return table + "\n\n" + summary


def test_relational_bench(benchmark, bench_scale) -> None:
    report = benchmark.pedantic(_build_report, args=(bench_scale,), rounds=1, iterations=1)
    save_report("relational", report)
    print("\n" + report)
