"""Batch amortization — initialization charged once across the task suite.

The paper's Figure 3 splits a run into an initialization phase and a
graph-traversal phase, and TADOC's whole premise is that compressed
data structures are built once and reused across many analytics
queries.  ``GTadoc.run_batch`` applies that to the serving path: one
batch over the six CompressDirect tasks pays data-structure
preparation, the light-weight scans, local-table construction, rule
weights and head/tail buffers a single time, while each task only adds
its marginal traversal kernels.

This benchmark records, for every Table II dataset analogue, the total
simulated kernel launches and compute ops of batched vs. per-task
execution, plus the init-phase share, and asserts that batching strictly
reduces both while producing bit-identical per-task results.
"""

from __future__ import annotations

from repro.bench.experiment import ExperimentRunner
from repro.bench.tables import format_table, save_report
from repro.data.generators import list_datasets


def _build_report(runner: ExperimentRunner) -> str:
    rows = []
    for dataset in list_datasets():
        stats = runner.batch_amortization(dataset)
        assert stats.results_match, f"batched results diverged on dataset {dataset}"
        assert stats.batch_launches < stats.sequential_launches, (
            f"batching must reduce kernel launches on dataset {dataset}"
        )
        assert stats.batch_ops < stats.sequential_ops, (
            f"batching must reduce simulated compute ops on dataset {dataset}"
        )
        assert stats.batch_init_launches < stats.sequential_init_launches, (
            f"batching must run the init phase once on dataset {dataset}"
        )
        rows.append(
            [
                dataset,
                f"{stats.sequential_launches:6d}",
                f"{stats.batch_launches:6d}",
                f"{stats.launch_reduction * 100:5.1f}%",
                f"{stats.sequential_ops:12.0f}",
                f"{stats.batch_ops:12.0f}",
                f"{stats.ops_reduction * 100:5.1f}%",
                f"{stats.sequential_init_launches:4d}",
                f"{stats.batch_init_launches:4d}",
            ]
        )
    table = format_table(
        [
            "dataset",
            "seq launches",
            "batch launches",
            "launch cut",
            "seq ops",
            "batch ops",
            "ops cut",
            "seq init",
            "batch init",
        ],
        rows,
        title="Batch amortization: one run_batch vs per-task runs (all six tasks)",
    )
    summary = (
        "Per-task results are bit-identical to fresh single-task runs; the "
        "Figure-3 initialization phase runs once per batch instead of once "
        "per task."
    )
    return table + "\n\n" + summary


def test_batch_amortization(benchmark, runner) -> None:
    report = benchmark.pedantic(_build_report, args=(runner,), rounds=1, iterations=1)
    save_report("batch_amortization", report)
    print("\n" + report)
