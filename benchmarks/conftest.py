"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
functional engine runs are cached inside a session-scoped
:class:`~repro.bench.experiment.ExperimentRunner`, so the per-benchmark
work is mostly pricing and formatting; reports are written to
``benchmarks/results/`` and printed (run pytest with ``-s`` to see them
inline).

The dataset analogue scale can be adjusted with the
``REPRO_BENCH_SCALE`` environment variable (default ``0.15``); larger
scales produce bigger grammars and slower, slightly smoother numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.experiment import ExperimentConfig, ExperimentRunner

DEFAULT_SCALE = 0.15


def _bench_scale() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))
    except ValueError:
        return DEFAULT_SCALE


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide experiment runner with cached functional runs."""
    return ExperimentRunner(ExperimentConfig(dataset_scale=_bench_scale()))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return _bench_scale()
