"""Async serving — event-driven coalescing vs. the threaded service.

The thread-based serving front end caps concurrency (and therefore
coalescing opportunity) at its worker-thread count and sleeps through
its coalescing windows; the asyncio front end
(:mod:`repro.serve.aio`) holds every request of a burst in flight as a
coroutine and closes its windows by event — the moment a micro-batch
fills — so batches run close to full.

This benchmark replays the same synthetic mixed-task request trace on
every Table II dataset analogue three ways: through an 8-thread
:class:`~repro.serve.AnalyticsService`, through an
:class:`~repro.serve.AsyncAnalyticsService` with the whole trace in
flight, and serially with per-query ``run()`` semantics (a fresh
session per query, the paper's full per-query cost).  It asserts that
the async front end produces bit-identical results, launches strictly
fewer kernels than serial execution, and coalesces at least as well as
the threaded service (mean micro-batch size) on every dataset.
"""

from __future__ import annotations

from repro.bench.tables import format_table, save_report
from repro.compression.compressor import compress_corpus
from repro.data.generators import generate_dataset, list_datasets
from repro.serve import (
    ServiceConfig,
    TraceConfig,
    replay_trace,
    replay_trace_async,
    synthesize_trace,
)

NUM_REQUESTS = 48
NUM_THREADS = 8


def _build_report(scale: float) -> str:
    rows = []
    for dataset in list_datasets():
        compressed = compress_corpus(generate_dataset(dataset, scale=scale))
        trace = synthesize_trace(
            compressed.file_names, TraceConfig(num_requests=NUM_REQUESTS, seed=17)
        )
        config = ServiceConfig(coalesce_window=0.002)
        threaded = replay_trace(
            compressed,
            trace,
            num_threads=NUM_THREADS,
            service_config=config,
            serial_baseline=False,
        )
        report = replay_trace_async(
            compressed,
            trace,
            concurrency=NUM_REQUESTS,
            service_config=config,
        )
        assert report.results_match, f"async served results diverged from serial on {dataset}"
        assert report.stats.kernel_launches < report.serial_launches, (
            f"async serving must launch strictly fewer kernels than serial runs on {dataset}"
        )
        assert report.stats.mean_batch_size >= threaded.stats.mean_batch_size, (
            f"async coalescing must be at least as good as threaded on {dataset}"
        )
        rows.append(
            [
                dataset,
                f"{report.serial_launches_per_query:7.2f}",
                f"{report.served_launches_per_query:7.2f}",
                f"{report.launch_reduction * 100:5.1f}%",
                f"{threaded.stats.mean_batch_size:5.2f}",
                f"{report.stats.mean_batch_size:5.2f}",
                f"{report.stats.micro_batches:4d}",
            ]
        )
    table = format_table(
        [
            "dataset",
            "serial launches/q",
            "async launches/q",
            "launch cut",
            "mean batch (threads)",
            "mean batch (async)",
            "batches",
        ],
        rows,
        title=(
            f"Async serving: event-driven coalescing ({NUM_REQUESTS} in-flight requests) "
            f"vs {NUM_THREADS}-thread service vs serial per-query runs"
        ),
    )
    summary = (
        "The asyncio front end holds the whole burst in flight, so its "
        "event-driven windows fill micro-batches the threaded service "
        "cannot: coalescing is at least as good on every dataset, results "
        "stay bit-identical to serial per-query execution, and kernel "
        "launches per query drop accordingly."
    )
    return table + "\n\n" + summary


def test_async_serving(benchmark, bench_scale) -> None:
    report = benchmark.pedantic(_build_report, args=(bench_scale,), rounds=1, iterations=1)
    save_report("async_serving", report)
    print("\n" + report)
