"""§VI-C — top-down vs bottom-up traversal (term vector on datasets A and B).

The paper's example: for term vector, the bottom-up traversal wins on
the many-file dataset A (1.56 s vs 14.04 s) while the top-down
traversal wins on the 4-file dataset B (0.11 s vs 0.43 s), because the
top-down direction has to carry file information with every propagated
weight.  This benchmark forces both directions on both datasets, prints
the modelled times, and reports which direction the adaptive strategy
selector would have picked.
"""

from __future__ import annotations

from repro.analytics.base import Task
from repro.bench.experiment import ExperimentRunner
from repro.bench.tables import format_table, save_report
from repro.core.strategy import TraversalStrategy, TraversalStrategySelector
from repro.perf.cost_model import CpuCostModel, GpuCostModel
from repro.perf.extrapolation import extrapolate_gpu_record
from repro.perf.platforms import VOLTA


def _forced_time(runner: ExperimentRunner, key: str, strategy: TraversalStrategy) -> float:
    run = runner.gtadoc_run(key, Task.TERM_VECTOR, traversal=strategy)
    factor = runner.bundle(key).extrapolation_factor
    gpu_model = GpuCostModel(VOLTA.gpu)
    host_model = CpuCostModel(VOLTA.cpu)
    return gpu_model.time_seconds(
        extrapolate_gpu_record(run.init_record, factor), host_model
    ) + gpu_model.time_seconds(extrapolate_gpu_record(run.traversal_record, factor), host_model)


def _build_report(runner: ExperimentRunner) -> str:
    rows = []
    for key in ("A", "B"):
        top_down = _forced_time(runner, key, TraversalStrategy.TOP_DOWN)
        bottom_up = _forced_time(runner, key, TraversalStrategy.BOTTOM_UP)
        bundle = runner.bundle(key)
        runner.gtadoc_run(key, Task.TERM_VECTOR)  # ensure the engine (and layout) exists
        selector = TraversalStrategySelector(runner.gtadoc_engine(key).layout)
        decision = selector.select(Task.TERM_VECTOR)
        best = "top_down" if top_down <= bottom_up else "bottom_up"
        rows.append(
            [
                key,
                f"{bundle.spec.num_files}",
                f"{top_down * 1000:10.2f}",
                f"{bottom_up * 1000:10.2f}",
                best,
                decision.strategy.value,
                "yes" if decision.strategy.value == best else "no",
            ]
        )
    table = format_table(
        [
            "dataset",
            "files",
            "top-down (ms)",
            "bottom-up (ms)",
            "faster",
            "selector picks",
            "selector correct",
        ],
        rows,
        title="§VI-C: term vector, forced top-down vs bottom-up (Volta)",
    )
    note = (
        "Paper: dataset A (many files) favours bottom-up (1.56 s vs 14.04 s); "
        "dataset B (4 files) favours top-down (0.11 s vs 0.43 s)."
    )
    return table + "\n\n" + note


def test_traversal_strategy_crossover(benchmark, runner) -> None:
    report = benchmark.pedantic(_build_report, args=(runner,), rounds=1, iterations=1)
    save_report("traversal_strategies", report)
    print("\n" + report)
