"""§VI-E — G-TADOC vs GPU-accelerated uncompressed analytics.

The paper implements the six tasks directly on uncompressed data with
efficient GPU kernels and reports that G-TADOC is still about 2x
faster on average, because it operates on the (much smaller) grammar
and reuses results of repeated rules.  This benchmark prices both
engines on the Volta platform across all datasets and tasks.
"""

from __future__ import annotations

from repro.analytics.base import Task
from repro.bench.aggregate import geometric_mean
from repro.bench.experiment import ExperimentRunner
from repro.bench.tables import format_table, save_report
from repro.data.generators import list_datasets
from repro.perf.platforms import VOLTA


def _build_report(runner: ExperimentRunner) -> str:
    rows = []
    ratios = []
    for dataset in list_datasets():
        for task in Task.all():
            gtadoc = runner.gtadoc_times(dataset, task, VOLTA).total
            uncompressed = runner.gpu_uncompressed_times(dataset, task, VOLTA).total
            ratio = uncompressed / gtadoc if gtadoc > 0 else float("inf")
            ratios.append(ratio)
            rows.append(
                [
                    dataset,
                    task.value,
                    f"{uncompressed * 1000:10.2f}",
                    f"{gtadoc * 1000:10.2f}",
                    f"{ratio:6.2f}x",
                ]
            )
    table = format_table(
        ["dataset", "task", "GPU uncompressed (ms)", "G-TADOC (ms)", "G-TADOC advantage"],
        rows,
        title="§VI-E: G-TADOC vs GPU-accelerated uncompressed analytics (Volta)",
    )
    summary = (
        f"Geometric-mean advantage: {geometric_mean(ratios):.2f}x "
        "(paper reports an average of about 2x)"
    )
    return table + "\n\n" + summary


def test_gpu_uncompressed_comparison(benchmark, runner) -> None:
    report = benchmark.pedantic(_build_report, args=(runner,), rounds=1, iterations=1)
    save_report("gpu_uncompressed", report)
    print("\n" + report)
