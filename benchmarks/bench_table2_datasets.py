"""Table II — dataset statistics.

Table II reports, for each of the five corpora, its uncompressed size,
file count, number of Sequitur rules and vocabulary size.  The paper's
corpora are replaced by structural analogues (see DESIGN.md), so this
benchmark reports the analogue's measured statistics side by side with
the paper-scale numbers preserved as metadata, plus the extrapolation
factor the other benchmarks use to price work at paper scale.
"""

from __future__ import annotations

from repro.bench.experiment import ExperimentRunner
from repro.bench.tables import format_table, save_report
from repro.data.generators import list_datasets


def _build_report(runner: ExperimentRunner) -> str:
    rows = []
    for key in list_datasets():
        bundle = runner.bundle(key)
        stats = bundle.compressed.statistics()
        spec = bundle.spec
        rows.append(
            [
                key,
                spec.paper_size,
                f"{spec.paper_files:,}",
                f"{spec.paper_rules:,}",
                f"{spec.paper_vocabulary:,}",
                f"{stats.original_tokens:,}",
                f"{stats.num_files:,}",
                f"{stats.num_rules:,}",
                f"{stats.vocabulary_size:,}",
                f"{stats.compression_ratio:.2f}",
                f"{bundle.extrapolation_factor:,.0f}x",
            ]
        )
    return format_table(
        [
            "Dataset",
            "paper size",
            "paper files",
            "paper rules",
            "paper vocab",
            "analogue tokens",
            "files",
            "rules",
            "vocab",
            "ratio",
            "extrapolation",
        ],
        rows,
        title="Table II: datasets (paper scale vs synthetic analogue)",
    )


def test_table2_datasets(benchmark, runner) -> None:
    report = benchmark.pedantic(_build_report, args=(runner,), rounds=1, iterations=1)
    save_report("table2_datasets", report)
    print("\n" + report)
