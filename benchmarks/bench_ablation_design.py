"""Ablations of the design choices called out in §IV (DESIGN.md experiment index).

Three comparisons quantify why G-TADOC's design decisions matter:

1. **Fine-grained thread-level scheduling vs vertical partitioning**
   (Figure 4): the vertical design re-scans every rule reachable from
   several partitions; its redundancy factor multiplies the traversal
   work.
2. **Self-managed memory pool vs naive worst-case allocation**: sizing
   every rule's local table with the light-weight bound pass instead of
   reserving a vocabulary-sized table per rule.
3. **Head/tail sequence buffers vs expansion-based counting**: counting
   sequences on the grammar (with head/tail buffers) versus scanning
   the fully expanded token stream on the same GPU.
"""

from __future__ import annotations

from repro.analytics.base import Task
from repro.bench.experiment import ExperimentRunner
from repro.bench.tables import format_table, save_report
from repro.core.scheduler import VerticalPartitioningScheduler
from repro.perf.cost_model import CpuCostModel, GpuCostModel
from repro.perf.extrapolation import extrapolate_gpu_record
from repro.perf.platforms import VOLTA

ABLATION_DATASET = "B"


def _scheduling_ablation(runner: ExperimentRunner) -> list:
    run = runner.gtadoc_run(ABLATION_DATASET, Task.WORD_COUNT)
    layout = runner.gtadoc_engine(ABLATION_DATASET).layout
    factor = runner.bundle(ABLATION_DATASET).extrapolation_factor
    gpu_model = GpuCostModel(VOLTA.gpu)
    host_model = CpuCostModel(VOLTA.cpu)
    fine_grained = gpu_model.time_seconds(
        extrapolate_gpu_record(run.traversal_record, factor), host_model
    )
    vertical = VerticalPartitioningScheduler(layout, num_partitions=1024)
    redundancy = vertical.redundancy_factor()
    vertical_time = fine_grained * redundancy
    return [
        [
            "scheduling (word count)",
            f"fine-grained: {fine_grained * 1000:.2f} ms",
            f"vertical partitioning: {vertical_time * 1000:.2f} ms",
            f"{redundancy:.2f}x redundant rule scans",
        ]
    ]


def _memory_pool_ablation(runner: ExperimentRunner) -> list:
    # The memory pool is exercised by the bottom-up traversal (local tables
    # are carved out of it after the bound pass).
    from repro.core.strategy import TraversalStrategy

    run = runner.gtadoc_run(ABLATION_DATASET, Task.WORD_COUNT, TraversalStrategy.BOTTOM_UP)
    layout = runner.gtadoc_engine(ABLATION_DATASET).layout
    pool_bytes = max(1, run.memory_pool_bytes)
    naive_bytes = layout.num_rules * layout.vocabulary_size * 16
    return [
        [
            "memory sizing (word count)",
            f"bound-pass pool: {pool_bytes / 1e6:.2f} MB",
            f"worst-case per-rule tables: {naive_bytes / 1e6:.2f} MB",
            f"{naive_bytes / pool_bytes:.1f}x smaller",
        ]
    ]


def _sequence_support_ablation(runner: ExperimentRunner) -> list:
    factor = runner.bundle(ABLATION_DATASET).extrapolation_factor
    gpu_model = GpuCostModel(VOLTA.gpu)
    host_model = CpuCostModel(VOLTA.cpu)
    run = runner.gtadoc_run(ABLATION_DATASET, Task.SEQUENCE_COUNT)
    with_buffers = gpu_model.time_seconds(
        extrapolate_gpu_record(run.traversal_record, factor), host_model
    )
    expansion = runner.gpu_uncompressed_run(ABLATION_DATASET, Task.SEQUENCE_COUNT)
    without_buffers = gpu_model.time_seconds(
        extrapolate_gpu_record(expansion.record, factor)
    )
    return [
        [
            "sequence support (sequence count)",
            f"head/tail buffers: {with_buffers * 1000:.2f} ms",
            f"expansion-based scan: {without_buffers * 1000:.2f} ms",
            f"{without_buffers / with_buffers:.2f}x faster with buffers",
        ]
    ]


def _build_report(runner: ExperimentRunner) -> str:
    rows = (
        _scheduling_ablation(runner)
        + _memory_pool_ablation(runner)
        + _sequence_support_ablation(runner)
    )
    return format_table(
        ["design choice", "G-TADOC design", "ablated alternative", "benefit"],
        rows,
        title=f"Design ablations on dataset {ABLATION_DATASET} (Volta)",
    )


def test_ablation_design_choices(benchmark, runner) -> None:
    report = benchmark.pedantic(_build_report, args=(runner,), rounds=1, iterations=1)
    save_report("ablation_design", report)
    print("\n" + report)
