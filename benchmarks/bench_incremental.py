"""Incremental maintenance — warm appends vs. recompress-and-rebuild.

Mutable corpora turn compression into a maintained artifact: a live
ingest appends a few fresh documents (here ≤5% of the corpus's tokens)
and the warm :class:`~repro.core.engine.GTadoc` session delta-updates
its cached device state for the touched grammar rules only, instead of
recompressing the corpus and rebuilding a session from scratch.

This benchmark performs that comparison end to end on each dataset
analogue.  The incremental side is timed from the mutation call
through a full all-task batch on the pre-existing warm engine (the
batch's records include the delta-construction kernels, so the
incremental cost is charged honestly).  The cold side recompresses the
mutated token streams from scratch and runs the same batch on a brand
new engine.  Both sides must be bit-identical per task, and the
incremental side must cost **strictly fewer kernel launches AND less
wall-clock** — the headline claim of the live-corpora design.

Measurements are written to ``BENCH_incremental.json`` at the
repository root so successive anchors can track the maintenance-cost
curve.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Dict, List

from repro.analytics.base import Task, results_equal
from repro.bench.tables import format_table, save_report
from repro.compression.compressor import TadocCompressor
from repro.core.engine import GTadoc
from repro.data.corpus import Corpus
from repro.data.generators import generate_dataset

DATASETS = ("A", "B", "D")
#: Fraction of the corpus's tokens a warm append may add (the live-ingest
#: regime the delta path is designed for).
APPEND_FRACTION = 0.05

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_incremental.json"


def _ingest_documents(seed: int, token_budget: int) -> Dict[str, List[str]]:
    """Fresh-vocabulary live documents totalling at most ``token_budget``.

    Live ingest carries structurally fresh content (new identifiers, new
    timestamps) — the case where extending the online grammar leaves
    every existing rule intact and the session delta path engages.
    Same-vocabulary churn would restructure existing rules and fall back
    to a rebuild, which is the cold path this benchmark compares against.
    """
    rng = random.Random(seed)
    vocabulary = [f"ingest{seed}t{j}" for j in range(12)]
    documents: Dict[str, List[str]] = {}
    remaining = token_budget
    index = 0
    while remaining > 8:
        length = min(remaining, rng.randint(8, 40))
        documents[f"live-{seed}-{index}"] = [rng.choice(vocabulary) for _ in range(length)]
        remaining -= length
        index += 1
    return documents


def _build_report(scale: float) -> str:
    rows = []
    trajectory = {}
    for dataset in DATASETS:
        corpus = generate_dataset(dataset, scale=scale)
        streams: Dict[str, List[str]] = {doc.name: list(doc.tokens) for doc in corpus}
        live = TadocCompressor().compress(corpus)
        engine = GTadoc(live)
        engine.run_batch()  # untimed warmup: a long-lived session is warm

        budget = max(32, int(live.original_tokens * APPEND_FRACTION))
        ingest = _ingest_documents(seed=7, token_budget=budget)
        assert sum(len(tokens) for tokens in ingest.values()) <= budget
        streams.update(ingest)

        started = time.perf_counter()
        live.append_files(ingest)
        mode = engine.session.sync_with_corpus()
        warm_batch = engine.run_batch()
        warm_seconds = time.perf_counter() - started
        warm_launches = warm_batch.total_kernel_launches
        assert mode == "delta", (
            f"fresh-vocabulary append must take the delta path on {dataset}, got {mode!r}"
        )

        started = time.perf_counter()
        scratch = TadocCompressor().compress(Corpus.from_token_streams(streams))
        cold_engine = GTadoc(scratch)
        cold_batch = cold_engine.run_batch()
        cold_seconds = time.perf_counter() - started
        cold_launches = cold_batch.total_kernel_launches

        assert live.fingerprint() == scratch.fingerprint(), dataset
        for task in Task.all():
            assert results_equal(
                task, warm_batch.results[task].result, cold_batch.results[task].result
            ), (dataset, task)
        assert warm_launches < cold_launches, (
            f"warm append must launch strictly fewer kernels than "
            f"recompress+rebuild on {dataset} ({warm_launches} vs {cold_launches})"
        )
        assert warm_seconds < cold_seconds, (
            f"warm append must take less wall-clock than recompress+rebuild "
            f"on {dataset} ({warm_seconds:.4f}s vs {cold_seconds:.4f}s)"
        )

        trajectory[dataset] = {
            "appended_tokens": sum(len(tokens) for tokens in ingest.values()),
            "corpus_tokens": live.original_tokens,
            "sync_mode": mode,
            "warm_kernel_launches": warm_launches,
            "cold_kernel_launches": cold_launches,
            "launch_cut": 1.0 - warm_launches / cold_launches,
            "warm_seconds": warm_seconds,
            "cold_seconds": cold_seconds,
            "wall_clock_speedup": cold_seconds / warm_seconds,
        }
        rows.append(
            [
                dataset,
                f"{trajectory[dataset]['appended_tokens']:6d}",
                f"{warm_launches:6d}",
                f"{cold_launches:6d}",
                f"{trajectory[dataset]['launch_cut'] * 100:5.1f}%",
                f"{warm_seconds * 1e3:8.1f}",
                f"{cold_seconds * 1e3:8.1f}",
                f"{trajectory[dataset]['wall_clock_speedup']:5.2f}x",
            ]
        )

    BENCH_JSON.write_text(json.dumps(trajectory, indent=2) + "\n")
    table = format_table(
        [
            "dataset",
            "tokens+",
            "warm launches",
            "cold launches",
            "launch cut",
            "warm ms",
            "cold ms",
            "speedup",
        ],
        rows,
        title=(
            f"Incremental maintenance: warm ≤{APPEND_FRACTION:.0%}-token append "
            "(delta session sync) vs recompress + cold rebuild, all-task batch"
        ),
    )
    summary = (
        "Every warm append took the session delta path, stayed bit-identical "
        "to scratch recompression (fingerprint and all task results), and "
        "cost strictly fewer kernel launches and less wall-clock than the "
        f"cold path; trajectory written to {BENCH_JSON.name}."
    )
    return table + "\n\n" + summary


def test_incremental_maintenance(benchmark, bench_scale) -> None:
    report = benchmark.pedantic(_build_report, args=(bench_scale,), rounds=1, iterations=1)
    save_report("incremental_maintenance", report)
    print("\n" + report)
